"""Synopsis-driven query optimisation: a toy cost-based join planner.

The paper: "Techniques for fast approximate answers can also be used
in a more traditional role within the query optimizer to estimate plan
costs, again with very fast response time."  This example builds a
three-relation star query and lets a toy System-R-style planner pick a
join order using only synopsis estimates -- selectivities from concise
samples, join sizes from hot lists -- then compares the chosen plan's
estimated and true intermediate-result sizes.

Run:  python examples/query_optimizer.py
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.core import ConciseSample
from repro.estimators import join_size_from_hotlists
from repro.hotlist import CountingHotList
from repro.stats.frequency import FrequencyTable
from repro.streams import zipf_stream

ROWS = 150_000
FOOTPRINT = 600


def _exact_join(left: np.ndarray, right: np.ndarray) -> float:
    right_table = FrequencyTable(right)
    return float(
        sum(
            count * right_table.count(value)
            for value, count in FrequencyTable(left).items()
        )
    )


def main() -> None:
    # Three relations joining on a shared key with different skews:
    # orders (very skewed), clicks (skewed), shipments (mild).
    columns = {
        "orders": zipf_stream(ROWS, 4_000, 1.5, seed=1),
        "clicks": zipf_stream(2 * ROWS, 4_000, 1.2, seed=2),
        "shipments": zipf_stream(ROWS // 2, 4_000, 0.8, seed=3),
    }

    # Build one concise sample + one hot list per join column.
    hotlists, samples = {}, {}
    for index, (name, column) in enumerate(columns.items()):
        hotlist = CountingHotList(FOOTPRINT, seed=10 + index)
        hotlist.insert_array(column)
        hotlists[name] = hotlist
        sample = ConciseSample(FOOTPRINT, seed=20 + index)
        sample.insert_array(column)
        samples[name] = sample

    def estimated_join(left: str, right: str) -> float:
        return join_size_from_hotlists(
            hotlists[left].report(FOOTPRINT // 2),
            hotlists[right].report(FOOTPRINT // 2),
            len(columns[left]),
            len(columns[right]),
            float(len(np.unique(columns[left]))),
            float(len(np.unique(columns[right]))),
        )

    print("pairwise join-size estimates vs truth:")
    for left, right in [("orders", "clicks"), ("orders", "shipments"),
                        ("clicks", "shipments")]:
        estimate = estimated_join(left, right)
        truth = _exact_join(columns[left], columns[right])
        print(
            f"  {left:>9} |x| {right:<10} est {estimate:>14,.0f}"
            f"   true {truth:>14,.0f}"
            f"   err {abs(estimate - truth) / truth:.1%}"
        )

    # Toy planner: pick the join order minimising the estimated size
    # of the first (and dominating) intermediate result.
    print("\njoin-order plans (cost = estimated first intermediate):")
    plans = []
    for order in permutations(columns):
        first_cost = estimated_join(order[0], order[1])
        plans.append((first_cost, order))
    plans.sort(key=lambda plan: plan[0])
    for cost, order in plans:
        print(f"  {' -> '.join(order):<34} est cost {cost:>14,.0f}")
    best = plans[0][1]
    true_best = min(
        permutations(columns),
        key=lambda order: _exact_join(
            columns[order[0]], columns[order[1]]
        ),
    )
    print(
        f"\nplanner chose {' -> '.join(best)}; "
        f"exact-cost optimum is {' -> '.join(true_best)}."
    )

    # The samples also provide the single-table selectivities a real
    # planner needs, with confidence intervals, in microseconds.
    from repro.estimators import Predicate, estimate_selectivity

    predicate = Predicate(high=100)
    print("\nselectivity of key <= 100 per relation (synopsis vs exact):")
    for name, column in columns.items():
        estimate = estimate_selectivity(
            samples[name].sample_points(), predicate
        )
        truth = float((column <= 100).mean())
        print(
            f"  {name:<10} {estimate.selectivity:.3f} "
            f"[{estimate.interval.low:.3f}, {estimate.interval.high:.3f}]"
            f"  exact {truth:.3f}"
        )


if __name__ == "__main__":
    main()
