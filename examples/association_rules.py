"""Association rules from incremental k-itemset hot lists.

Paper Section 1.2: hot lists "can be maintained on k-itemsets for any
specified k, and used to produce association rules [AS94, BMUT97]".
This example streams market baskets with planted frequent itemsets
through pair- and item-level hot lists (each a bounded-footprint
counting sample) and derives rules -- no candidate-generation passes
over base data, unlike Apriori.

Run:  python examples/association_rules.py
"""

from __future__ import annotations

from repro.itemsets import (
    BasketGenerator,
    ItemsetHotList,
    derive_rules,
)

BASKETS = 100_000
CATALOGUE = 2_000
FOOTPRINT = 800

PLANTED = [
    ((101, 202), 0.12),       # classic "bread -> butter"
    ((101, 202, 303), 0.08),  # and the three-way extension
    ((404, 505), 0.08),
]


def main() -> None:
    generator = BasketGenerator(
        CATALOGUE, planted=PLANTED, basket_size_mean=3.0, skew=0.9,
        seed=21,
    )
    items = ItemsetHotList(1, FOOTPRINT, seed=1)
    pairs = ItemsetHotList(2, FOOTPRINT, seed=2)
    triples = ItemsetHotList(3, FOOTPRINT, seed=3)
    for basket in generator.baskets(BASKETS):
        items.observe(basket)
        pairs.observe(basket)
        triples.observe(basket)

    print(
        f"{BASKETS:,} baskets over {CATALOGUE:,} items; footprint "
        f"{FOOTPRINT} words per hot list "
        f"({pairs.itemsets_observed:,} pair occurrences observed).\n"
    )

    print("hot pairs (planted supports: 101+202 @ 0.12, 404+505 @ 0.08):")
    for itemset, count in pairs.report_itemsets(8):
        print(
            f"  {itemset}: support "
            f"{count / pairs.baskets_observed:.3f}"
        )

    print("\nhot triples (planted: 101+202+303 @ 0.05):")
    for itemset, count in triples.report_itemsets(5):
        print(
            f"  {itemset}: support "
            f"{count / triples.baskets_observed:.3f}"
        )

    print("\nassociation rules (min support 3%, min confidence 30%):")
    rules = derive_rules(
        pairs, items, top_k=40, min_support=0.03, min_confidence=0.3
    )
    for rule in rules[:10]:
        print(f"  {rule}")

    pair_rules = derive_rules(
        triples, pairs, top_k=20, min_support=0.02, min_confidence=0.3
    )
    print("\npair -> item rules from hot triples:")
    for rule in pair_rules[:5]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
