"""Counting samples under churn: hot lists that survive deletions.

Concise samples cannot be maintained under deletions (Section 4.1
explains why); counting samples can.  This example simulates a
telecommunications-style monitoring stream -- the paper notes an early
version of the algorithm ran in real-time fraud detection -- where
calls are both opened (inserts) and closed (deletes), and the set of
hot endpoints shifts mid-stream.  The counting-sample hot list tracks
the live distribution throughout.

Run:  python examples/deletion_workload.py
"""

from __future__ import annotations

import numpy as np

from repro.hotlist import CountingHotList, evaluate_hotlist
from repro.stats.frequency import FrequencyTable
from repro.streams import insert_delete_stream, zipf_stream
from repro.streams.operations import Insert

ENDPOINTS = 10_000
EVENTS = 120_000
FOOTPRINT = 300
K = 15


def main() -> None:
    # Phase 1: endpoints 1.. dominate.  Phase 2: the distribution
    # shifts -- a new block of endpoints becomes hot (relabelled by
    # +5000), while old calls keep closing.
    phase1 = zipf_stream(EVENTS // 2, ENDPOINTS // 2, 1.4, seed=1)
    phase2 = (
        zipf_stream(EVENTS // 2, ENDPOINTS // 2, 1.4, seed=2)
        + ENDPOINTS // 2
    )
    values = np.concatenate([phase1, phase2])
    operations = insert_delete_stream(values, delete_fraction=0.35, seed=3)
    print(
        f"{len(operations):,} call events "
        f"({sum(isinstance(op, Insert) for op in operations):,} opens, "
        f"{sum(not isinstance(op, Insert) for op in operations):,} closes)"
        f" over {ENDPOINTS:,} endpoints; footprint {FOOTPRINT} words.\n"
    )

    reporter = CountingHotList(FOOTPRINT, seed=4)
    live = FrequencyTable()
    checkpoints = {
        len(operations) // 3: "one third (old regime)",
        2 * len(operations) // 3: "two thirds (post-shift)",
        len(operations): "end of stream",
    }

    for index, operation in enumerate(operations, start=1):
        if isinstance(operation, Insert):
            reporter.insert(operation.value)
            live.insert(operation.value)
        else:
            reporter.delete(operation.value)
            live.delete(operation.value)
        if index in checkpoints:
            answer = reporter.report(K)
            evaluation = evaluate_hotlist(answer, live, K)
            hot_block = (
                "new"
                if answer.values()
                and answer.values()[0] > ENDPOINTS // 2
                else "old"
            )
            print(f"checkpoint: {checkpoints[index]}")
            print(
                f"  live rows {live.total:,}; threshold "
                f"{reporter.sample.threshold:,.0f}; reported "
                f"{evaluation.reported}; hits {evaluation.true_positives}"
                f"/{K}; mean count error "
                f"{evaluation.mean_count_error:.2%}; hottest endpoint "
                f"from the {hot_block} block"
            )

    counters = reporter.counters
    print(
        f"\nTotals: {counters.inserts:,} inserts, {counters.deletes:,} "
        f"deletes, {counters.threshold_raises} threshold raises, "
        f"{counters.flips_per_insert():.4f} coin flips per insert -- and "
        f"the footprint never left its bound "
        f"({reporter.footprint} <= {FOOTPRINT})."
    )


if __name__ == "__main__":
    main()
