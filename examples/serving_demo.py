"""Serving demo: the warehouse behind a socket, snapshot isolation live.

Starts an :class:`~repro.serving.server.AQPServer` on a loopback port,
then drives it with two concurrent clients: a writer streaming skewed
sales batches and a reader whose session is pinned to a snapshot.  The
reader's pinned answers stay frozen while the writer ingests; a live
query from the same session sees the stream move.  Finishes with the
server's own stats endpoint and a graceful drain.

Run:  python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio

from repro.core import ConciseSample
from repro.engine import (
    ApproximateAnswerEngine,
    CountQuery,
    DataWarehouse,
    HotListQuery,
)
from repro.hotlist import CountingHotList
from repro.serving import AQPClient, AQPServer
from repro.streams import zipf_stream

ROWS = 200_000  # total inserts streamed by the writer
DOMAIN = 5_000  # potential distinct values D
SKEW = 1.25  # zipf parameter
BATCHES = 5  # writer batches (the first seeds the snapshot)
FOOTPRINT = 1_000  # memory words per synopsis


def build_server() -> AQPServer:
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item"])
    engine = ApproximateAnswerEngine(warehouse)
    engine.register_sample("sales", "item", ConciseSample(FOOTPRINT, seed=1))
    engine.register_hotlist(
        "sales", "item", CountingHotList(footprint_bound=FOOTPRINT, seed=2)
    )
    return AQPServer(warehouse, engine)


async def demo() -> None:
    server = build_server()
    host, port = await server.start()
    print(f"server listening on {host}:{port}")

    writer = await AQPClient.connect(host, port)
    reader = await AQPClient.connect(host, port)
    await writer.hello()
    await reader.hello()

    batch = ROWS // BATCHES
    stream = zipf_stream(ROWS, DOMAIN, SKEW, seed=42)
    batches = [
        [int(value) for value in stream[index * batch:(index + 1) * batch]]
        for index in range(BATCHES)
    ]

    # Seed one batch, then pin the reader's session to this instant.
    await writer.ingest("sales", {"item": batches[0]})
    epochs = await reader.snapshot()
    print(f"reader pinned at epochs {epochs}")

    count = CountQuery("sales", "item")
    hot = HotListQuery("sales", "item", k=3)
    pinned_before = await reader.query(count)
    print(f"pinned count before writes: {pinned_before.answer:,.0f}")

    # Stream the rest while the pinned reader re-asks every batch.
    for index in range(1, BATCHES):
        acked, pinned = await asyncio.gather(
            writer.ingest("sales", {"item": batches[index]}),
            reader.query(count),
        )
        assert pinned.answer == pinned_before.answer
        print(
            f"batch {index}: writer acked {acked:,} rows, "
            f"pinned count still {pinned.answer:,.0f}"
        )

    live = await reader.query(count, mode="live")
    print(f"live count after {ROWS:,} rows: {live.answer:,.0f}")
    top = await reader.query(hot, mode="live")
    entries = ", ".join(
        f"{entry.value}~{entry.estimated_count:,.0f}"
        for entry in top.answer.entries
    )
    print(f"live top-{hot.k} hot list: {entries}")

    stats = await writer.stats()
    print(
        f"server stats: {stats['sessions']} session(s), "
        f"{stats['relations']['sales']:,} rows in sales"
    )

    await writer.bye()
    await reader.bye()
    await server.shutdown()
    print("server drained and stopped")


def main() -> None:
    asyncio.run(demo())


if __name__ == "__main__":
    main()
