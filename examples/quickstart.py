"""Quickstart: concise samples vs traditional samples in 60 seconds.

Builds the paper's three sample types over the same skewed insert
stream with the same memory footprint, and shows (a) the sample-size
advantage of concise samples, (b) the update-cost ledger, and (c) an
approximate hot list from each.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ConciseSample,
    CountingSample,
    ReservoirSample,
)
from repro.hotlist import (
    ConciseHotList,
    CountingHotList,
    FullHistogramHotList,
    TraditionalHotList,
)
from repro.streams import zipf_stream

N = 500_000  # warehouse inserts (the paper's experimental scale)
DOMAIN = 5_000  # potential distinct values D
SKEW = 1.5  # zipf parameter
FOOTPRINT = 1_000  # memory words per synopsis


def main() -> None:
    stream = zipf_stream(N, DOMAIN, SKEW, seed=42)
    print(f"Stream: {N:,} inserts, Zipf({SKEW}) over [1, {DOMAIN}]\n")

    # ------------------------------------------------------------------
    # 1. Sample-size at equal footprint
    # ------------------------------------------------------------------
    traditional = ReservoirSample(FOOTPRINT, seed=1)
    concise = ConciseSample(FOOTPRINT, seed=2)
    counting = CountingSample(FOOTPRINT, seed=3)
    for sample in (traditional, concise, counting):
        sample.insert_array(stream)

    print(f"{'synopsis':<22}{'footprint':>10}{'sample-size':>13}"
          f"{'flips/ins':>11}{'lookups/ins':>13}")
    rows = [
        ("traditional sample", traditional.footprint,
         traditional.sample_size, traditional.counters),
        ("concise sample", concise.footprint,
         concise.sample_size, concise.counters),
        ("counting sample", counting.footprint,
         f"(counts {counting.total_count})", counting.counters),
    ]
    for name, footprint, size, counters in rows:
        print(f"{name:<22}{footprint:>10}{str(size):>13}"
              f"{counters.flips_per_insert():>11.4f}"
              f"{counters.lookups_per_insert():>13.4f}")
    gain = concise.sample_size / FOOTPRINT
    print(f"\nConcise sample holds {gain:.1f}x more sample points than a"
          f" traditional sample of the same footprint.\n")

    # ------------------------------------------------------------------
    # 2. Approximate hot lists (top-10 most frequent values)
    # ------------------------------------------------------------------
    exact = FullHistogramHotList(FOOTPRINT)
    reporters = {
        "exact (full histogram)": exact,
        "counting samples": CountingHotList(FOOTPRINT, seed=4),
        "concise samples": ConciseHotList(FOOTPRINT, seed=5),
        "traditional samples": TraditionalHotList(FOOTPRINT, seed=6),
    }
    for reporter in reporters.values():
        reporter.insert_array(stream)

    k = 10
    truth = dict(
        (entry.value, entry.estimated_count)
        for entry in exact.report(k)
    )
    print(f"Top-{k} hot list (value: estimated count | exact count):")
    for name, reporter in reporters.items():
        answer = reporter.report(k)
        cells = ", ".join(
            f"{entry.value}:{entry.estimated_count:,.0f}"
            for entry in list(answer)[:5]
        )
        print(f"  {name:<24} {cells} ...")
    print(f"\nExact top-5 counts: "
          + ", ".join(f"{v}:{c:,.0f}" for v, c in list(truth.items())[:5]))


if __name__ == "__main__":
    main()
