"""Top-selling items over a stream of sales transactions.

The paper's motivating hot-list example (Section 1.2): "the top
selling items in a database of sales transactions".  A synthetic
retail stream is fed through the four hot-list algorithms at equal
footprint; the script reports which truly-best-selling products each
algorithm found and how accurate the count estimates were.

Run:  python examples/hotlist_sales.py
"""

from __future__ import annotations

from repro.hotlist import (
    ConciseHotList,
    CountingHotList,
    FullHistogramHotList,
    TraditionalHotList,
    evaluate_hotlist,
)
from repro.stats.frequency import FrequencyTable
from repro.streams import SalesGenerator

TRANSACTIONS = 300_000
CATALOGUE = 20_000
FOOTPRINT = 400  # enough for ~200 (product, count) pairs
K = 25


def main() -> None:
    generator = SalesGenerator(
        catalogue_size=CATALOGUE, skew=1.3, stores=50, seed=7
    )
    products = generator.product_stream(TRANSACTIONS)
    truth = FrequencyTable(products)
    print(
        f"{TRANSACTIONS:,} transactions over a {CATALOGUE:,}-product "
        f"catalogue; footprint {FOOTPRINT} words per synopsis; top-{K}.\n"
    )

    reporters = {
        "counting samples": CountingHotList(FOOTPRINT, seed=1),
        "concise samples": ConciseHotList(FOOTPRINT, seed=2),
        "traditional samples": TraditionalHotList(FOOTPRINT, seed=3),
        "full histogram (exact)": FullHistogramHotList(FOOTPRINT),
    }
    for reporter in reporters.values():
        reporter.insert_array(products)

    print(f"{'algorithm':<26}{'reported':>9}{'hits':>6}{'misses':>8}"
          f"{'false+':>8}{'mean err':>10}{'max err':>9}")
    for name, reporter in reporters.items():
        evaluation = evaluate_hotlist(reporter.report(K), truth, K)
        print(
            f"{name:<26}{evaluation.reported:>9}"
            f"{evaluation.true_positives:>6}"
            f"{evaluation.false_negatives:>8}"
            f"{evaluation.false_positives:>8}"
            f"{evaluation.mean_count_error:>10.2%}"
            f"{evaluation.max_count_error:>9.2%}"
        )

    # Revenue-flavoured follow-up: the counting-sample hot list feeds a
    # best-sellers board with price metadata.
    counting = reporters["counting samples"]
    print("\nBest-sellers board (counting samples):")
    print(f"{'rank':<6}{'product':>8}{'est. units':>12}"
          f"{'true units':>12}{'unit price':>12}")
    for rank, entry in enumerate(counting.report(10), start=1):
        print(
            f"{rank:<6}{entry.value:>8}"
            f"{entry.estimated_count:>12,.0f}"
            f"{truth.count(entry.value):>12,}"
            f"{generator.price_of(entry.value):>12.2f}"
        )

    exact = reporters["full histogram (exact)"]
    print(
        f"\nCost asymmetry: the exact baseline performed "
        f"{exact.counters.disk_accesses:,} simulated disk accesses; the "
        f"sampling synopses performed none."
    )


if __name__ == "__main__":
    main()
