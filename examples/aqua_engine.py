"""An approximate answer engine over a data warehouse (paper Figure 2).

Loads a sales relation into a warehouse whose load stream is observed
by an approximate answer engine maintaining a concise sample, a
counting-sample hot list, and a distinct-count sketch under a total
memory budget.  Queries are answered from the synopses alone -- zero
base-data accesses -- with confidence intervals; each answer is then
compared against the exact (full-scan) result and its disk cost.

Run:  python examples/aqua_engine.py
"""

from __future__ import annotations

from repro.core import ConciseSample
from repro.engine import (
    ApproximateAnswerEngine,
    AverageQuery,
    CountQuery,
    DataWarehouse,
    DistinctCountQuery,
    HotListQuery,
    SumQuery,
)
from repro.estimators import Predicate
from repro.hotlist import CountingHotList
from repro.streams import SalesGenerator
from repro.synopses import FlajoletMartinSketch

ROWS = 200_000
BUDGET_WORDS = 4_096


def main() -> None:
    warehouse = DataWarehouse()
    warehouse.create_relation(
        "sales", ["product_id", "store_id", "quantity"]
    )
    engine = ApproximateAnswerEngine(warehouse, budget_words=BUDGET_WORDS)
    engine.register_sample(
        "sales", "product_id", ConciseSample(2000, seed=1)
    )
    engine.register_hotlist(
        "sales", "product_id", CountingHotList(1500, seed=2)
    )
    engine.register_distinct(
        "sales", "product_id", FlajoletMartinSketch(256, seed=3)
    )
    print(
        f"Engine budget {BUDGET_WORDS} words; reserved "
        f"{engine.registry.reserved_total()} words across "
        f"{len(engine.registry)} synopses.\n"
    )

    generator = SalesGenerator(catalogue_size=8000, skew=1.25, seed=4)
    warehouse.load(
        "sales",
        (
            {
                "product_id": record.product_id,
                "store_id": record.store_id,
                "quantity": record.quantity,
            }
            for record in generator.records(ROWS)
        ),
    )
    print(f"Loaded {ROWS:,} rows; engine observed the load stream.\n")

    queries = [
        ("rows with product_id <= 100",
         CountQuery("sales", "product_id", Predicate(high=100))),
        ("sum of product_id",
         SumQuery("sales", "product_id")),
        ("average product_id",
         AverageQuery("sales", "product_id")),
        ("distinct products sold",
         DistinctCountQuery("sales", "product_id")),
    ]
    for label, query in queries:
        approximate = engine.answer(query)
        exact = engine.answer(query, exact=True)
        interval = approximate.interval
        ci = (
            f" [{interval.low:,.0f}, {interval.high:,.0f}]"
            if interval
            else ""
        )
        print(f"{label}:")
        print(f"  approx: {approximate.answer:,.1f}{ci}  "
              f"(0 disk accesses, via {approximate.method})")
        print(f"  exact : {exact.answer:,.1f}  "
              f"({exact.disk_accesses:,} disk accesses)\n")

    hotlist = engine.answer(HotListQuery("sales", "product_id", k=5))
    exact_hotlist = engine.answer(
        HotListQuery("sales", "product_id", k=5), exact=True
    )
    print("top-5 products (approx vs exact):")
    exact_counts = exact_hotlist.answer.as_dict()
    for entry in hotlist.answer:
        print(
            f"  product {entry.value}: ~{entry.estimated_count:,.0f}"
            f"  (exact {exact_counts.get(entry.value, 0):,.0f})"
        )

    total_disk = warehouse.counters.disk_accesses
    print(
        f"\nAll approximate answers together cost 0 disk accesses; the "
        f"five exact answers cost {total_disk:,}."
    )


if __name__ == "__main__":
    main()
