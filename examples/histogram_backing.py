"""Concise samples as backing samples for histograms ([GMP97b] link).

Section 2 of the paper points out that "a concise sample could be used
as a backing sample, for more sample points for the same footprint" in
the histogram-maintenance framework of [GMP97b].  This example builds
equi-depth and Compressed histograms from (a) a traditional reservoir
backing sample and (b) a concise backing sample of the same footprint,
then compares range-selectivity errors against exact answers.

Run:  python examples/histogram_backing.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ConciseSample, ReservoirSample
from repro.streams import zipf_stream
from repro.synopses import CompressedHistogram, EquiDepthHistogram

N = 400_000
DOMAIN = 20_000
SKEW = 1.3
FOOTPRINT = 600
BUCKETS = 40


def relative_error(estimate: float, truth: float) -> float:
    if truth == 0:
        return abs(estimate)
    return abs(estimate - truth) / truth


def main() -> None:
    stream = zipf_stream(N, DOMAIN, SKEW, seed=11)

    traditional = ReservoirSample(FOOTPRINT, seed=1)
    concise = ConciseSample(FOOTPRINT, seed=2)
    traditional.insert_array(stream)
    concise.insert_array(stream)
    print(
        f"Backing samples at footprint {FOOTPRINT}: traditional holds "
        f"{traditional.sample_size} points, concise holds "
        f"{concise.sample_size} points.\n"
    )

    ranges = [(1, 10), (1, 100), (50, 500), (1000, 5000), (1, DOMAIN)]
    backings = {
        "traditional": traditional.as_array(),
        "concise": concise.sample_points(),
    }

    for histogram_kind, builder in (
        ("equi-depth", EquiDepthHistogram.from_sample),
        ("Compressed", CompressedHistogram.from_sample),
    ):
        print(f"{histogram_kind} histogram ({BUCKETS} buckets), range "
              f"selectivity errors:")
        print(f"{'range':<16}{'exact':>10}"
              + "".join(f"{name:>14}" for name in backings))
        errors = {name: [] for name in backings}
        for low, high in ranges:
            truth = float(
                np.count_nonzero((stream >= low) & (stream <= high))
            )
            row = f"[{low}, {high}]".ljust(16) + f"{truth:>10,.0f}"
            for name, points in backings.items():
                histogram = builder(points, BUCKETS, N)
                estimate = histogram.estimate_range(low, high)
                error = relative_error(estimate, truth)
                errors[name].append(error)
                row += f"{error:>13.2%} "
            print(row)
        means = {
            name: float(np.mean(values)) for name, values in errors.items()
        }
        print(
            "  mean error: "
            + ", ".join(f"{name} {error:.2%}" for name, error in means.items())
            + "\n"
        )


if __name__ == "__main__":
    main()
