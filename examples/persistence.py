"""Checkpoint and recovery of synopses (paper footnote 2).

"For persistence and recovery, combinations of snapshots and/or logs
can be stored on disk."  This example runs a warehouse load stream
with an attached operation log, checkpoints the synopses mid-stream,
simulates a crash, and recovers each synopsis as *snapshot + replay of
the log suffix* -- then verifies the recovered hot list answers match
a never-crashed run.

Run:  python examples/persistence.py
"""

from __future__ import annotations

from repro.core import CountingSample
from repro.engine import DataWarehouse, OperationLog
from repro.engine.snapshots import loads as load_snapshot
from repro.engine.snapshots import dumps as dump_snapshot
from repro.hotlist import CountingHotList
from repro.streams import zipf_stream

N = 200_000
DOMAIN = 5_000
FOOTPRINT = 500
CHECKPOINT_AT = 120_000


def main() -> None:
    stream = zipf_stream(N, DOMAIN, 1.25, seed=9)

    # ------------------------------------------------------------------
    # Reference run: never crashes.
    # ------------------------------------------------------------------
    reference = CountingSample(FOOTPRINT, seed=1)
    reference.insert_array(stream)

    # ------------------------------------------------------------------
    # Crash-recovery run: warehouse + operation log + checkpoint.
    # ------------------------------------------------------------------
    warehouse = DataWarehouse()
    warehouse.create_relation("events", ["value"])
    log = OperationLog()
    warehouse.add_observer(log.observe)
    live = CountingSample(FOOTPRINT, seed=1)
    warehouse.add_observer(
        lambda name, row, is_insert: live.insert(int(row[0]))
    )

    for value in stream[:CHECKPOINT_AT].tolist():
        warehouse.insert("events", (value,))
    checkpoint_sequence = log.next_sequence
    checkpoint_payload = dump_snapshot(live)
    print(
        f"checkpoint at {checkpoint_sequence:,} events: snapshot is "
        f"{len(checkpoint_payload):,} bytes "
        f"(footprint {live.footprint} words, threshold "
        f"{live.threshold:,.0f})"
    )
    # Old log entries can be garbage-collected after the checkpoint.
    dropped = log.truncate_before(checkpoint_sequence)
    print(f"log truncated: {dropped:,} pre-checkpoint entries dropped")

    # Keep loading, then crash (the in-memory synopsis vanishes).
    for value in stream[CHECKPOINT_AT:].tolist():
        warehouse.insert("events", (value,))
    del live
    print(f"crash after {log.next_sequence:,} events; "
          f"{len(log):,} entries in the log suffix")

    # Recovery: restore the snapshot, replay the suffix.
    recovered = load_snapshot(checkpoint_payload, seed=2)
    applied = log.replay_since(checkpoint_sequence, "events", 0, recovered)
    print(f"recovered: replayed {applied:,} logged events\n")

    # ------------------------------------------------------------------
    # Verification.  Recovery is *statistically* equivalent, not
    # bitwise: the replayed suffix makes fresh (equally valid) coin
    # choices, so the recovered sample is a different draw from the
    # same distribution (Theorem 5 holds for both).  What must agree
    # is the answer quality: both hot lists report the same head.
    # ------------------------------------------------------------------
    recovered.check_invariants()
    reference_reporter = CountingHotList(FOOTPRINT, seed=4)
    reference_reporter.sample = reference
    recovered_reporter = CountingHotList(FOOTPRINT, seed=5)
    recovered_reporter.sample = recovered

    reference_top = reference_reporter.report(10).values()
    recovered_top = recovered_reporter.report(10).values()
    overlap = len(set(reference_top) & set(recovered_top))
    print(
        f"top-10 agreement between recovered and never-crashed run: "
        f"{overlap}/10"
    )
    print(
        f"thresholds: reference {reference.threshold:,.0f}, "
        f"recovered {recovered.threshold:,.0f}"
    )

    print("\ntop-10 from the recovered synopsis:")
    for entry in recovered_reporter.report(10):
        print(f"  value {entry.value}: ~{entry.estimated_count:,.0f}")


if __name__ == "__main__":
    main()
