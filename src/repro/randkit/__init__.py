"""Seeded randomness utilities with cost instrumentation.

The paper reports update-time overheads in two abstract units -- *coin
flips* and *lookups* per insert (Tables 1 and 2).  Everything stochastic
in this library draws its randomness through :class:`~repro.randkit.rng.ReproRandom`
so that (a) every experiment is reproducible from an integer seed, and
(b) the number of coin flips performed by an algorithm is counted with
the same accounting the paper uses: one flip per geometric skip draw
(Vitter's Algorithm-X technique), not one flip per stream element.
"""

from repro.randkit.coins import (
    Coin,
    CostCounters,
    EvictionSkipper,
    GeometricSkipper,
)
from repro.randkit.rng import ReproRandom, numpy_generator, spawn_seeds
from repro.randkit.vectorized import VectorCoins

__all__ = [
    "Coin",
    "CostCounters",
    "EvictionSkipper",
    "GeometricSkipper",
    "ReproRandom",
    "VectorCoins",
    "numpy_generator",
    "spawn_seeds",
]
