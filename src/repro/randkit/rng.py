"""Seeded random number generation.

:class:`ReproRandom` is a thin wrapper over :class:`random.Random` that
adds the distributions the sampling algorithms need (geometric skip
lengths, biased coins) while keeping a single, explicit seed per
algorithm instance.  Using the stdlib Mersenne Twister rather than numpy
keeps single-draw latency low on the per-insert hot path; bulk stream
generation uses numpy generators obtained through
:func:`numpy_generator` (or :meth:`ReproRandom.numpy_generator`), the
sanctioned -- and reprolint-enforced (RL001) -- constructors for array
randomness outside this package.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator

import numpy as np

__all__ = ["ReproRandom", "numpy_generator", "spawn_seeds"]

# Draws below this admission probability use the closed-form geometric
# inversion; above it, direct simulation is cheaper and exact.
_GEOMETRIC_INVERSION_MIN_P = 1e-12


class ReproRandom:
    """A seeded random source for sampling algorithms.

    Parameters
    ----------
    seed:
        Any hashable seed accepted by :class:`random.Random`.  ``None``
        seeds from the OS entropy pool (not reproducible; tests and
        benchmarks always pass explicit seeds).
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int | None:
        """The seed this generator was constructed with."""
        return self._seed

    def uniform(self) -> float:
        """A uniform draw in ``[0, 1)``."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """A uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def bernoulli(self, probability: float) -> bool:
        """One biased coin flip: ``True`` with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def geometric_skip(self, probability: float) -> int:
        """Number of failures before the first success.

        Returns ``i`` with probability ``(1 - p)^i * p`` -- exactly the
        skip-length distribution of Vitter's Algorithm X: how many
        stream elements may be skipped before the next one that must be
        processed.  ``probability`` must be in ``(0, 1]``.
        """
        if probability >= 1.0:
            return 0
        if probability < _GEOMETRIC_INVERSION_MIN_P:
            raise ValueError(
                f"admission probability {probability} is too small to invert"
            )
        u = 1.0 - self._random.random()  # u in (0, 1]
        # Inverse-CDF: smallest i such that 1 - (1-p)^(i+1) >= 1 - u.
        return int(math.log(u) / math.log1p(-probability))

    def shuffled(self, items: list) -> list:
        """A new list with the items in uniform random order."""
        shuffled = list(items)
        self._random.shuffle(shuffled)
        return shuffled

    def choice_index(self, n: int) -> int:
        """A uniform index in ``[0, n)``."""
        return self._random.randrange(n)

    def fork(self) -> "ReproRandom":
        """A new generator seeded from this one's stream.

        Forked generators are independent for practical purposes and
        keep experiment drivers reproducible when sub-components need
        their own randomness.
        """
        return ReproRandom(self._random.getrandbits(63))

    def numpy_generator(self) -> np.random.Generator:
        """A seeded :class:`numpy.random.Generator` forked off this stream.

        The batch/vectorized paths draw whole arrays at a time; this is
        how they obtain their generator without reaching for raw
        ``np.random`` (reprolint RL001).  Consumes exactly one
        ``getrandbits(63)`` draw, like :meth:`fork`.
        """
        return np.random.default_rng(self._random.getrandbits(63))


def spawn_seeds(master_seed: int, count: int) -> list[int]:
    """Derive ``count`` reproducible child seeds from one master seed.

    Experiment drivers use this to run *t* independent trials of a
    stochastic algorithm from a single recorded seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    source = random.Random(master_seed)
    return [source.getrandbits(63) for _ in range(count)]


def numpy_generator(seed: int) -> np.random.Generator:
    """The sanctioned constructor for bulk numpy randomness.

    Identical to ``np.random.default_rng(seed)`` -- but the seed is
    *required*, so every array-at-a-time consumer (stream generators,
    offline construction, workload synthesis) is reproducible from its
    recorded seed.  Code outside :mod:`repro.randkit` must obtain numpy
    generators here (or from :meth:`ReproRandom.numpy_generator`);
    reprolint rule RL001 enforces this.
    """
    if seed is None:  # defensive: None would silently seed from the OS
        raise ValueError("numpy_generator requires an explicit seed")
    return np.random.default_rng(seed)


def seed_stream(master_seed: int) -> Iterator[int]:
    """An endless, reproducible stream of child seeds."""
    source = random.Random(master_seed)
    while True:
        yield source.getrandbits(63)
