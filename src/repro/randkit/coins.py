"""Instrumented coins and skip counters.

The paper's cost model (Section 3.3) measures algorithm work in *coin
flips* and *lookups*: "the number of instructions executed by the
algorithm is directly proportional to the number of coin flips and
lookups, and is dominated by these two factors."  A "coin flip" is one
random draw -- and, crucially, the algorithms use Vitter's Algorithm-X
trick of drawing a geometric skip length instead of flipping one coin
per stream element, so one *draw* covers a whole run of skipped
elements and is counted as a single flip.

:class:`CostCounters` is the ledger; :class:`GeometricSkipper` and
:class:`EvictionSkipper` are the two skip-based processes used by the
maintenance algorithms.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.randkit.rng import ReproRandom

__all__ = ["Coin", "CostCounters", "EvictionSkipper", "GeometricSkipper"]


@dataclass
class CostCounters:
    """Abstract work counters in the paper's cost model.

    Attributes
    ----------
    flips:
        Random draws performed (one per geometric skip draw or
        individual biased coin flip).
    lookups:
        Hash-table probes into the synopsis.
    threshold_raises:
        Times the entry threshold was raised to shrink the footprint.
    inserts:
        Stream elements offered to the synopsis (denominator for the
        per-insert rates reported in Tables 1 and 2).
    deletes:
        Delete operations offered to the synopsis.
    disk_accesses:
        Simulated base-data accesses (zero for the incremental
        algorithms; nonzero for the offline and full-histogram
        baselines).
    """

    flips: int = 0
    lookups: int = 0
    threshold_raises: int = 0
    inserts: int = 0
    deletes: int = 0
    disk_accesses: int = 0

    def flips_per_insert(self) -> float:
        """Average coin flips per stream insert (Table 1 / 2 metric)."""
        return self.flips / self.inserts if self.inserts else 0.0

    def lookups_per_insert(self) -> float:
        """Average lookups per stream insert (Table 1 / 2 metric)."""
        return self.lookups / self.inserts if self.inserts else 0.0

    def snapshot(self) -> "CostCounters":
        """An independent copy of the current counter values."""
        return CostCounters(
            flips=self.flips,
            lookups=self.lookups,
            threshold_raises=self.threshold_raises,
            inserts=self.inserts,
            deletes=self.deletes,
            disk_accesses=self.disk_accesses,
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.flips = 0
        self.lookups = 0
        self.threshold_raises = 0
        self.inserts = 0
        self.deletes = 0
        self.disk_accesses = 0

    def __sub__(self, other: "CostCounters") -> "CostCounters":
        return CostCounters(
            flips=self.flips - other.flips,
            lookups=self.lookups - other.lookups,
            threshold_raises=self.threshold_raises - other.threshold_raises,
            inserts=self.inserts - other.inserts,
            deletes=self.deletes - other.deletes,
            disk_accesses=self.disk_accesses - other.disk_accesses,
        )

    def to_dict(self) -> dict[str, int]:
        """The counter values as a JSON-able dict (snapshot payload)."""
        return {
            "flips": self.flips,
            "lookups": self.lookups,
            "threshold_raises": self.threshold_raises,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "disk_accesses": self.disk_accesses,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, int]) -> "CostCounters":
        """Rebuild a ledger from :meth:`to_dict` output."""
        return cls(
            flips=int(payload["flips"]),
            lookups=int(payload["lookups"]),
            threshold_raises=int(payload["threshold_raises"]),
            inserts=int(payload["inserts"]),
            deletes=int(payload["deletes"]),
            disk_accesses=int(payload["disk_accesses"]),
        )


@dataclass
class Coin:
    """A biased coin whose flips are charged to a counter ledger.

    Used where the algorithm genuinely flips one coin per event (for
    example the first, ``tau/tau'``-biased flip per value when a
    counting sample raises its threshold).
    """

    rng: ReproRandom
    counters: CostCounters = field(default_factory=CostCounters)

    def flip(self, probability: float) -> bool:
        """Flip once; ``True`` with the given probability."""
        self.counters.flips += 1
        return self.rng.bernoulli(probability)


class GeometricSkipper:
    """Skip-based admission with success probability ``1/threshold``.

    Instead of flipping a ``1/tau`` coin per stream element, draw how
    many elements to skip until the next admitted one (probability of
    skipping exactly *i* elements is ``(1 - 1/tau)^i * (1/tau)``).  Each
    draw is one counted flip.  When ``tau == 1`` every element is
    admitted deterministically and no randomness is consumed, matching
    the paper's observation that the start-up phase costs lookups but
    no flips.
    """

    def __init__(
        self,
        rng: ReproRandom,
        counters: CostCounters,
        threshold: float = 1.0,
    ) -> None:
        if threshold < 1.0:
            raise ValueError("threshold must be at least 1")
        self._rng = rng
        self._counters = counters
        self._threshold = threshold
        self._remaining_skips = 0
        if threshold > 1.0:
            self._draw()

    @property
    def threshold(self) -> float:
        """Current entry threshold tau (admission probability 1/tau)."""
        return self._threshold

    def _draw(self) -> None:
        self._counters.flips += 1
        self._remaining_skips = self._rng.geometric_skip(1.0 / self._threshold)

    def offer(self) -> bool:
        """Present one stream element; return ``True`` if it is admitted."""
        if self._threshold <= 1.0:
            return True
        if self._remaining_skips > 0:
            self._remaining_skips -= 1
            return False
        self._draw()
        return True

    def next_admission_within(self, available: int) -> int | None:
        """Jump ahead through a block of ``available`` elements.

        Returns the 0-based offset of the next admitted element within
        the block, or ``None`` if the whole block is skipped.  This is
        the bulk counterpart of :meth:`offer` -- offering each element
        individually yields the same admission positions.
        """
        if available <= 0:
            return None
        if self._threshold <= 1.0:
            return 0
        if self._remaining_skips >= available:
            self._remaining_skips -= available
            return None
        offset = self._remaining_skips
        self._draw()
        return offset

    def raise_threshold(self, new_threshold: float) -> None:
        """Move to a stricter threshold.

        The geometric distribution is memoryless, so discarding the
        pending skip count and redrawing under the new admission
        probability preserves correctness.
        """
        if new_threshold < self._threshold:
            raise ValueError("threshold can only be raised")
        if new_threshold == self._threshold:
            return
        self._threshold = new_threshold
        self._draw()


class EvictionSkipper:
    """Skip-based eviction sweep over a run of sample points.

    When the threshold is raised from ``tau`` to ``tau'``, each of the
    current sample points is independently evicted with probability
    ``1 - tau/tau'``.  Sweeping the points with geometric skips costs
    one flip per *evicted* point (plus one terminal overshoot draw)
    instead of one per point -- the paper's "similar approach when
    evicting".

    Usage: construct with the eviction probability, then repeatedly
    call :meth:`evictions_within` with run lengths (for example, the
    count of each ``(value, count)`` pair); it returns how many points
    of that run are evicted.
    """

    def __init__(
        self,
        rng: ReproRandom,
        counters: CostCounters,
        eviction_probability: float,
    ) -> None:
        if not 0.0 <= eviction_probability <= 1.0:
            raise ValueError("eviction probability must be in [0, 1]")
        self._rng = rng
        self._counters = counters
        self._probability = eviction_probability
        self._gap_to_next_eviction = self._draw_gap()

    def _draw_gap(self) -> int:
        """Surviving points before the next evicted one (may be inf)."""
        if self._probability <= 0.0:
            return -1  # sentinel: nothing is ever evicted
        if self._probability >= 1.0:
            return 0
        self._counters.flips += 1
        return self._rng.geometric_skip(self._probability)

    def evictions_within(self, run_length: int) -> int:
        """Sweep a run of ``run_length`` points; return evictions in it."""
        if run_length < 0:
            raise ValueError("run length must be non-negative")
        if self._gap_to_next_eviction < 0:  # eviction probability zero
            return 0
        evicted = 0
        remaining = run_length
        while self._gap_to_next_eviction < remaining:
            remaining -= self._gap_to_next_eviction + 1
            evicted += 1
            self._gap_to_next_eviction = self._draw_gap()
            if self._gap_to_next_eviction < 0:
                return evicted
        self._gap_to_next_eviction -= remaining
        return evicted
