"""Vectorized coin machinery for the batch-ingestion paths.

The per-element maintenance algorithms draw one geometric skip at a
time through :class:`~repro.randkit.coins.GeometricSkipper`; the batch
paths instead draw whole arrays of admission coins, geometric tail
lengths, and binomial survivor counts in single numpy calls.  The
flip ledger keeps the paper's skip-based accounting (Section 3.3): a
vectorized draw is charged what the equivalent skip-based scalar
process would have cost, so Tables 1/2-style per-insert rates remain
comparable between the per-element and batch paths.
"""

from __future__ import annotations

import numpy as np

from repro.randkit.coins import CostCounters

__all__ = ["VectorCoins"]


class VectorCoins:
    """Array-at-a-time randomness charged to a cost ledger.

    Parameters
    ----------
    rng:
        A seeded :class:`numpy.random.Generator`; callers derive its
        seed from their :class:`~repro.randkit.rng.ReproRandom` stream
        so experiments stay reproducible end to end.
    counters:
        The cost ledger flips are charged to.
    """

    def __init__(
        self, rng: np.random.Generator, counters: CostCounters
    ) -> None:
        self._rng = rng
        self._counters = counters

    def admission_mask(self, probability: float, size: int) -> np.ndarray:
        """Admission coins for a block of ``size`` stream elements.

        Returns a boolean mask of admitted positions.  Charged like the
        skip-based scalar sweep: one flip per admitted element plus the
        terminal overshoot draw, not one per element.
        """
        if probability >= 1.0:
            return np.ones(size, dtype=bool)
        if probability <= 0.0:
            return np.zeros(size, dtype=bool)
        mask = self._rng.random(size) < probability
        self._counters.flips += int(np.count_nonzero(mask)) + 1
        return mask

    def admission_survivors(
        self, probability: float, occurrences: np.ndarray
    ) -> np.ndarray:
        """Surviving tail counts for absent values offered in bulk.

        ``occurrences[i]`` is how many times absent value ``i`` appears
        in the chunk; each value pays a geometric admission delay of
        failures-before-first-success at heads probability ``p``
        (distributed ``(1 - p)^k * p`` over ``k >= 0``), and the entry
        returned is ``occurrences[i] - delay`` -- non-positive means
        never admitted.  Charged like the scalar
        :class:`~repro.randkit.coins.GeometricSkipper` sweep over the
        same absent-value event sequence: one flip per *admitted*
        value plus the terminal overshoot draw.
        """
        occurrences = np.asarray(occurrences, dtype=np.int64)
        if occurrences.size == 0:
            return occurrences.copy()
        if probability >= 1.0:
            return occurrences.copy()
        # numpy's geometric counts the number of trials (>= 1).
        delays = (
            self._rng.geometric(probability, occurrences.size).astype(
                np.int64
            )
            - 1
        )
        surviving = occurrences - delays
        self._counters.flips += int(np.count_nonzero(surviving > 0)) + 1
        return surviving

    def binomial_survivors(
        self, counts: np.ndarray, keep_probability: float
    ) -> np.ndarray:
        """Per-run binomial survivor counts for an eviction sweep.

        Each of the ``counts[i]`` points of run ``i`` survives
        independently with ``keep_probability`` (Theorem 2's subsample
        operation).  Charged like :class:`EvictionSkipper`: one flip per
        evicted point plus the terminal overshoot draw.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size == 0:
            return np.zeros(0, dtype=np.int64)
        if keep_probability >= 1.0:
            return counts.copy()
        if keep_probability <= 0.0:
            self._counters.flips += int(counts.sum()) + 1
            return np.zeros_like(counts)
        survivors = self._rng.binomial(counts, keep_probability).astype(
            np.int64
        )
        self._counters.flips += int((counts - survivors).sum()) + 1
        return survivors

    def uniforms(self, size: int) -> np.ndarray:
        """``size`` uniform draws in ``[0, 1)``, one flip each.

        Used where the scalar algorithm genuinely flips one coin per
        item (the counting sample's per-value eviction tails).
        """
        self._counters.flips += size
        return self._rng.random(size)
