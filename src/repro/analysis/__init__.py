"""reprolint: project-specific AST invariant checks.

The paper's correctness arguments lean on properties the type system
cannot see: every coin flip must flow through the :mod:`repro.randkit`
ledger (else Table 1/2 cost accounting and the Theorem-2 uniformity
induction silently break), synopsis mutation must respect the
threshold/eviction protocol, and snapshots must round-trip their whole
field set.  This package machine-checks those invariants as eight
rules, RL001 through RL008, over the source tree.

Run it as ``python -m repro.analysis src/``; see
``docs/static_analysis.md`` for the rule catalogue and the paper
invariant each rule protects.  Individual findings are waived with a
``# reprolint: disable=RLxxx`` comment on the offending line; there is
deliberately no file- or rule-wide escape hatch.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules import ALL_RULES, rule_catalogue
from repro.analysis.runner import analyze_paths, analyze_source

__all__ = [
    "ALL_RULES",
    "Finding",
    "SourceModule",
    "analyze_paths",
    "analyze_source",
    "rule_catalogue",
]
