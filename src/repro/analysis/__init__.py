"""reprolint: project-specific AST invariant checks.

The paper's correctness arguments lean on properties the type system
cannot see: every coin flip must flow through the :mod:`repro.randkit`
ledger (else Table 1/2 cost accounting and the Theorem-2 uniformity
induction silently break), synopsis mutation must respect the
threshold/eviction protocol, and snapshots must round-trip their whole
field set.  This package machine-checks those invariants in two
passes: per-file rules RL001 through RL012 over each module's AST,
then project rules RL013 through RL015 over a whole-tree
:class:`~repro.analysis.project.ProjectModel` (import graph with
``__init__`` re-export resolution, class hierarchies, and a
conservative self-attribute mutation index), so cross-module
invariants -- cache invalidation completeness, the metric-name
registry, hierarchy-wide snapshot parity -- are enforced too.

Run it as ``python -m repro.analysis src/``; see
``docs/static_analysis.md`` for the rule catalogue and the paper
invariant each rule protects.  Individual findings are waived with a
``# reprolint: disable=RLxxx`` comment on the offending line; there is
deliberately no file- or rule-wide escape hatch.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, sarif_report
from repro.analysis.module import SourceModule
from repro.analysis.project import (
    AnalysisCache,
    ModuleSummary,
    ProjectModel,
    summarize_module,
)
from repro.analysis.rules import ALL_PROJECT_RULES, ALL_RULES, rule_catalogue
from repro.analysis.runner import analyze_paths, analyze_source, default_root

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "AnalysisCache",
    "Finding",
    "ModuleSummary",
    "ProjectModel",
    "SourceModule",
    "analyze_paths",
    "analyze_source",
    "default_root",
    "rule_catalogue",
    "sarif_report",
    "summarize_module",
]
