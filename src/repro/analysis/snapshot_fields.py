"""Field extraction shared by the snapshot rules (RL007 and RL015).

These helpers answer, statically, what a ``to_dict`` emits and what a
``from_dict`` consumes.  They live outside the rules package because
both the per-file rule and the project-model summariser need them,
and the rules package must stay importable from the model builder.
"""

from __future__ import annotations

import ast

__all__ = ["consumed_keys", "emitted_keys", "payload_parameter"]


def emitted_keys(function: ast.FunctionDef) -> set[str] | None:
    """String keys of every dict literal returned by ``to_dict``.

    Returns ``None`` when no return statement is a dict literal (the
    method builds its payload dynamically; nothing to check).
    """
    keys: set[str] = set()
    saw_literal = False
    for node in ast.walk(function):
        if not isinstance(node, ast.Return) or not isinstance(
            node.value, ast.Dict
        ):
            continue
        saw_literal = True
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.add(key.value)
    return keys if saw_literal else None


def payload_parameter(function: ast.FunctionDef) -> str | None:
    """The parameter holding the snapshot dict (first after self/cls)."""
    positional = [*function.args.posonlyargs, *function.args.args]
    names = [arg.arg for arg in positional]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names[0] if names else None


def consumed_keys(
    function: ast.FunctionDef, payload: str
) -> tuple[set[str], set[str]]:
    """Keys read off the payload: (required via ``[...]``, via ``.get``)."""
    required: set[str] = set()
    optional: set[str] = set()
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == payload
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            required.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == payload
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            optional.add(node.args[0].value)
    return required, optional
