"""Collect files, run every applicable rule, filter suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.base import Rule

__all__ = ["analyze_paths", "analyze_source", "collect_files"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def analyze_source(
    module: SourceModule,
    rules: Iterable[Rule] = ALL_RULES,
) -> list[Finding]:
    """Run every applicable rule over one parsed module."""
    findings: set[Finding] = set()
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.is_suppressed(finding.line, finding.rule):
                findings.add(finding)
    return sorted(findings)


def analyze_paths(
    paths: Sequence[Path],
    rules: Iterable[Rule] = ALL_RULES,
) -> Iterator[Finding]:
    """Analyze every ``.py`` file under ``paths``.

    Unparseable files yield an ``RL000`` finding rather than aborting
    the run, so one syntax error does not hide the rest of the report.
    """
    rule_list = list(rules)
    root = Path.cwd()
    for path in collect_files(paths):
        try:
            module = SourceModule.load(path, root)
        except SyntaxError as error:
            yield Finding(
                path=str(path),
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
                rule="RL000",
                message=f"file does not parse: {error.msg}",
            )
            continue
        yield from analyze_source(module, rule_list)
