"""Collect files, run both rule passes, filter suppressions.

The analysis is two-pass.  Pass one parses each file and runs the
per-file rules; it also extracts a JSON-able :class:`ModuleSummary`
and (optionally) caches both keyed by content hash, so unchanged files
are never re-parsed on incremental runs.  Pass two assembles every
summary -- cached or fresh -- into a :class:`ProjectModel` and runs
the cross-module rules over it.  Project findings are therefore always
computed over the *whole* tree even when most files hit the cache.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.project import (
    AnalysisCache,
    ModuleSummary,
    ProjectModel,
    content_hash,
    summarize_module,
)
from repro.analysis.rules import ALL_PROJECT_RULES, ALL_RULES
from repro.analysis.rules.base import ProjectRule, Rule

__all__ = [
    "analyze_paths",
    "analyze_source",
    "collect_files",
    "default_root",
]

#: Directory names never descended into.  ``reprolint_fixtures`` holds
#: deliberately-violating trees for the CI self-check; they lint only
#: when passed as an explicit path.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "node_modules", "reprolint_fixtures"}
)


def default_root(paths: Sequence[Path]) -> Path:
    """The deepest common parent of ``paths``.

    Each scanned path anchors at its *parent* directory, so the scanned
    entry itself stays a visible path component -- ``tests/`` scanned
    alone still yields parts starting with ``tests`` and keeps its
    rule exemptions.  This pins
    :func:`repro.analysis.module.module_parts` fallback scoping to the
    scanned tree rather than the invocation cwd, so
    ``python -m repro.analysis /abs/path/src`` reports the same
    findings from any working directory.
    """
    anchors = [path.resolve().parent for path in paths]
    if not anchors:
        return Path.cwd()
    common = anchors[0]
    for anchor in anchors[1:]:
        while not anchor.is_relative_to(common):
            common = common.parent
    return common


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                relative = candidate.relative_to(path)
                if not _SKIP_DIRS.intersection(relative.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def analyze_source(
    module: SourceModule,
    rules: Iterable[Rule] = ALL_RULES,
) -> list[Finding]:
    """Run every applicable per-file rule over one parsed module."""
    findings: set[Finding] = set()
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.is_suppressed(finding.line, finding.rule):
                findings.add(finding)
    return sorted(findings)


def _syntax_error_finding(path: Path, error: SyntaxError) -> Finding:
    return Finding(
        path=str(path),
        line=error.lineno or 1,
        column=(error.offset or 1) - 1,
        rule="RL000",
        message=f"file does not parse: {error.msg}",
    )


def analyze_paths(
    paths: Sequence[Path],
    rules: Iterable[Rule] | None = None,
    *,
    root: Path | None = None,
    project_rules: Iterable[ProjectRule] | None = None,
    cache_path: Path | None = None,
) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths``, both passes.

    Unparseable files produce an ``RL000`` finding rather than
    aborting the run, so one syntax error does not hide the rest of
    the report.  ``root`` defaults to the common parent of ``paths``;
    ``cache_path`` names a JSON content-hash cache that lets
    incremental runs skip parsing unchanged files.
    """
    rule_list = list(rules) if rules is not None else list(ALL_RULES)
    project_rule_list = (
        list(project_rules)
        if project_rules is not None
        else list(ALL_PROJECT_RULES)
    )
    if root is None:
        root = default_root(paths)
    cache = AnalysisCache(cache_path) if cache_path is not None else None

    findings: set[Finding] = set()
    summaries: list[ModuleSummary] = []
    files = collect_files(paths)
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            findings.add(
                Finding(
                    path=str(path),
                    line=1,
                    column=0,
                    rule="RL000",
                    message=f"file cannot be read: {error}",
                )
            )
            continue
        digest = content_hash(source)
        if cache is not None:
            cached = cache.lookup(str(path), digest)
            if cached is not None:
                cached_findings, cached_summary = cached
                findings.update(cached_findings)
                if cached_summary is not None:
                    summaries.append(cached_summary)
                continue
        try:
            module = SourceModule(path, source, root)
        except SyntaxError as error:
            error_finding = _syntax_error_finding(path, error)
            findings.add(error_finding)
            if cache is not None:
                cache.store(str(path), digest, [error_finding], None)
            continue
        file_findings = analyze_source(module, rule_list)
        findings.update(file_findings)
        summary = summarize_module(module)
        summaries.append(summary)
        if cache is not None:
            cache.store(str(path), digest, file_findings, summary)

    # Pass two: project rules over the full model (cached summaries
    # included), suppression-filtered through the summary tables.
    model = ProjectModel(summaries, root=root)
    by_path = {summary.path: summary for summary in summaries}
    for rule in project_rule_list:
        for finding in rule.check_project(model):
            summary_for_path = by_path.get(finding.path)
            if summary_for_path is not None and summary_for_path.is_suppressed(
                finding.line, finding.rule
            ):
                continue
            findings.add(finding)

    if cache is not None:
        cache.prune({str(path) for path in files})
        cache.save()
    return sorted(findings)
