"""Command-line entry point: ``python -m repro.analysis src/``.

Exit status 0 means zero findings; 1 means findings were reported;
2 means usage error.  ``--json`` emits a machine-readable report for
CI annotation tooling; ``--sarif`` emits SARIF 2.1.0 for GitHub code
scanning; ``--cache`` names a content-hash cache file so incremental
runs skip re-parsing unchanged files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import sarif_report
from repro.analysis.rules import rule_catalogue
from repro.analysis.runner import analyze_paths

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: AST invariant checks for the synopsis engine "
            "(per-file rules RL001-RL012 plus project rules "
            "RL013-RL015; see docs/static_analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (e.g. src/)",
    )
    output = parser.add_mutually_exclusive_group()
    output.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text lines",
    )
    output.add_argument(
        "--sarif",
        action="store_true",
        help="emit findings as SARIF 2.1.0 (GitHub code scanning)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help=(
            "scoping root for module paths (default: the common "
            "parent of the scanned paths)"
        ),
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "JSON content-hash cache file; unchanged files skip "
            "parsing and per-file rules on later runs"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for entry in rule_catalogue():
            print(f"{entry['code']}  {entry['title']}  [{entry['scope']}]")
            print(f"       {entry['rationale']}")
        return 0

    if not options.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: at least one path is required (try: src/)",
            file=sys.stderr,
        )
        return 2

    missing = [path for path in options.paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    findings = analyze_paths(
        options.paths,
        root=options.root,
        cache_path=options.cache,
    )
    if options.json:
        print(
            json.dumps(
                [finding.to_json() for finding in findings], indent=2
            )
        )
    elif options.sarif:
        print(json.dumps(sarif_report(findings, rule_catalogue()), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        count = len(findings)
        noun = "finding" if count == 1 else "findings"
        print(f"reprolint: {count} {noun}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
