"""The finding record every rule emits, and its report renderers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = ["Finding", "sarif_report"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Orders by location so reports are stable regardless of the order
    rules ran in.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """The one-line human-readable form."""
        text = f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_json(self) -> dict[str, Any]:
        """The JSON-able form used by ``--json`` / CI."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }


def sarif_report(
    findings: Sequence[Finding],
    catalogue: Iterable[dict[str, str]] = (),
) -> dict[str, Any]:
    """Render findings as a SARIF 2.1.0 log (GitHub code scanning).

    ``catalogue`` is the ``rule_catalogue()`` listing; rules appear in
    the driver metadata so annotations carry titles and rationales.
    SARIF columns are 1-based where findings store 0-based offsets.
    """
    rules = [
        {
            "id": entry["code"],
            "name": entry["title"] or entry["code"],
            "shortDescription": {"text": entry["title"] or entry["code"]},
            "fullDescription": {"text": entry["rationale"]},
        }
        for entry in catalogue
    ]
    results = []
    for finding in findings:
        text = finding.message
        if finding.hint:
            text += f" (fix: {finding.hint})"
        results.append(
            {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": text},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "ROOTPATH",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.column + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
