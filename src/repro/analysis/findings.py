"""The finding record every rule emits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Orders by location so reports are stable regardless of the order
    rules ran in.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """The one-line human-readable form."""
        text = f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_json(self) -> dict[str, Any]:
        """The JSON-able form used by ``--json`` / CI."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }
