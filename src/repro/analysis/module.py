"""A parsed source module plus its suppression table.

Suppressions are per-line comments of the form::

    risky_call()  # reprolint: disable=RL001
    other_call()  # reprolint: disable=RL003,RL008

A finding is waived when the comment sits on the exact line the
finding is reported at, with one ergonomic extension: inside a
multi-line ``def`` / ``class`` signature (decorators through the line
before the first body statement) a suppression on *any* header line
covers the whole header.  Rules anchor signature findings at the
decorator or ``def`` line while the natural place to write the
comment is the ``def`` line or the closing parenthesis -- without the
extension those waivers silently fail to match.  There is
intentionally no ``disable=all`` and no file-level switch: every
waiver names the rule it silences, so a suppression is a reviewable,
grep-able artefact rather than a blanket opt-out.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

__all__ = ["SourceModule", "module_parts"]

_SUPPRESSION = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)"
)
_RULE_ID = re.compile(r"^RL\d{3}$")


def module_parts(path: Path, root: Path) -> tuple[str, ...]:
    """Dotted-module parts used for rule scoping.

    Paths inside a ``repro`` package directory are identified from the
    last ``repro`` component (``src/repro/core/concise.py`` ->
    ``("repro", "core", "concise")``), so fixture trees that mirror the
    package layout scope identically to the real tree.  Anything else
    is taken relative to the scan root.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        last = len(parts) - 1 - parts[::-1].index("repro")
        return tuple(parts[last:])
    # Resolve before relativizing so a relative scan path (``.`` from
    # inside the tree) scopes identically to an absolute one -- the
    # fallback must not depend on how the path was spelled.
    resolved = path.with_suffix("").resolve()
    try:
        relative = resolved.relative_to(root.resolve())
    except ValueError:
        return tuple(resolved.parts)
    return tuple(relative.parts)


class SourceModule:
    """One file under analysis: source text, AST, and suppressions."""

    def __init__(self, path: Path, source: str, root: Path) -> None:
        self.path = path
        self.source = source
        self.parts = module_parts(path, root)
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = _collect_suppressions(source)
        _extend_signature_suppressions(self.tree, self.suppressions)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceModule":
        """Read and parse a file (raises ``SyntaxError`` on bad source)."""
        return cls(path, path.read_text(encoding="utf-8"), root)

    def subpackage(self) -> str:
        """The first package level below ``repro`` ('' at top level)."""
        if len(self.parts) >= 2 and self.parts[0] == "repro":
            return self.parts[1]
        return ""

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is waived on ``line``."""
        return rule in self.suppressions.get(line, frozenset())


def _collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number to the rule ids waived on that line."""
    table: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION.search(token.string)
            if match is None:
                continue
            codes = frozenset(
                code.strip()
                for code in match.group(1).split(",")
                if _RULE_ID.match(code.strip())
            )
            if codes:
                line = token.start[0]
                table[line] = table.get(line, frozenset()) | codes
    except tokenize.TokenError:
        # Unterminated constructs: ast.parse will report the real error.
        pass
    return table


def _extend_signature_suppressions(
    tree: ast.Module, table: dict[int, frozenset[str]]
) -> None:
    """Spread header-line suppressions across multi-line signatures.

    For every function/class whose header (first decorator through the
    line before the first body statement) spans more than one line,
    the union of codes waived anywhere in the header is applied to
    every header line.  A comment on the ``def`` line then covers a
    finding reported at the decorator line and vice versa; body lines
    keep exact-line semantics.
    """
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.body:
            continue
        start = node.lineno
        if node.decorator_list:
            start = min(start, node.decorator_list[0].lineno)
        end = node.body[0].lineno - 1
        if end <= start:
            continue
        codes: frozenset[str] = frozenset()
        for line in range(start, end + 1):
            codes |= table.get(line, frozenset())
        if not codes:
            continue
        for line in range(start, end + 1):
            table[line] = table.get(line, frozenset()) | codes
