"""The project model: whole-tree facts for cross-module rules.

Per-file rules see one AST at a time, but the invariants PR 6 bolted
onto the hot path are *class-hierarchy* properties spread over several
modules: every mutator of a memoized ``columnar_view()``'s backing
store must reset the memo, every mutator reachable from the engine's
public API must bump its cache epoch, and snapshot field parity must
hold across inherited ``__init__``/``to_dict``/``from_dict`` splits.

This module builds a :class:`ProjectModel` over every collected file:

* a per-module :class:`ModuleSummary` (imports, classes, metric call
  sites, ``repro_``-prefixed string literals, suppression table);
* per-class :class:`ClassSummary` and per-method
  :class:`MethodSummary` records with a conservative dataflow over
  ``self``-attribute reads/writes -- including writes through local
  aliases (``counts = self._counts; counts[v] = 1``) and through
  mutator-method calls (``self._rows.update(...)``);
* an import-graph symbol resolver that follows ``__init__.py``
  re-exports and aliased imports (with cycle guards) so base classes
  resolve across modules.

Every summary is JSON-serialisable, which is what makes the
content-hash :class:`AnalysisCache` work: an unchanged file is never
re-parsed -- its cached summary still participates in the project
pass, so incremental runs stay whole-program sound.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.snapshot_fields import (
    consumed_keys,
    emitted_keys,
    payload_parameter,
)

__all__ = [
    "AnalysisCache",
    "ClassSummary",
    "ImportBinding",
    "MethodSummary",
    "MetricCall",
    "ModuleSummary",
    "ProjectModel",
    "ReproLiteral",
    "content_hash",
    "summarize_module",
]

#: Method names that mutate their receiver in place.  Used to treat
#: ``self._rows.update(...)`` (or the same call through a local alias)
#: as a write to ``_rows``.
MUTATOR_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "put",
        "register",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "unregister",
        "update",
    }
)

#: External base classes known to define no instance attributes.  A
#: hierarchy ending in one of these still counts as fully resolved;
#: any other unresolvable base makes attribute-existence checks bail
#: out conservatively.
ATTRLESS_EXTERNAL_BASES = frozenset(
    {
        "ABC",
        "BaseException",
        "Exception",
        "Generic",
        "KeyError",
        "Protocol",
        "RuntimeError",
        "TypeError",
        "ValueError",
        "object",
    }
)

_REPRO_LITERAL = re.compile(r"repro_[A-Za-z0-9_]+")


def content_hash(source: str) -> str:
    """The cache key for one file's content."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Summary records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ImportBinding:
    """One name bound by an import statement.

    ``from M import n as a`` gives ``(module=M, name=n, bound=a)``;
    ``import M as a`` gives ``(module=M, name=None, bound=a)``.
    ``level`` is the relative-import level (0 for absolute).
    """

    module: str
    name: str | None
    bound: str
    level: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "name": self.name,
            "bound": self.bound,
            "level": self.level,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ImportBinding":
        return cls(
            module=payload["module"],
            name=payload["name"],
            bound=payload["bound"],
            level=int(payload.get("level", 0)),
        )


@dataclass(frozen=True)
class MetricCall:
    """One ``counter()`` / ``gauge()`` / ``histogram()`` call site."""

    kind: str
    name: str | None
    is_fstring: bool
    line: int
    column: int

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "is_fstring": self.is_fstring,
            "line": self.line,
            "column": self.column,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "MetricCall":
        return cls(
            kind=payload["kind"],
            name=payload["name"],
            is_fstring=bool(payload["is_fstring"]),
            line=int(payload["line"]),
            column=int(payload["column"]),
        )


@dataclass(frozen=True)
class ReproLiteral:
    """One ``repro_``-prefixed string constant."""

    value: str
    line: int
    column: int

    def to_json(self) -> dict[str, Any]:
        return {"value": self.value, "line": self.line, "column": self.column}

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ReproLiteral":
        return cls(
            value=payload["value"],
            line=int(payload["line"]),
            column=int(payload["column"]),
        )


@dataclass
class MethodSummary:
    """Conservative dataflow facts for one method body."""

    name: str
    line: int
    column: int
    kind: str = "instance"  # instance | classmethod | staticmethod | property
    reads: set[str] = field(default_factory=set)
    writes: dict[str, int] = field(default_factory=dict)
    calls: set[str] = field(default_factory=set)
    #: Dict-literal keys returned by ``to_dict`` (None: dynamic payload).
    emitted: list[str] | None = None
    #: Payload keys a ``from_dict`` requires / reads optionally.
    required: list[str] | None = None
    optional: list[str] | None = None
    has_payload_parameter: bool = True

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "column": self.column,
            "kind": self.kind,
            "reads": sorted(self.reads),
            "writes": dict(sorted(self.writes.items())),
            "calls": sorted(self.calls),
            "emitted": self.emitted,
            "required": self.required,
            "optional": self.optional,
            "has_payload_parameter": self.has_payload_parameter,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "MethodSummary":
        return cls(
            name=payload["name"],
            line=int(payload["line"]),
            column=int(payload["column"]),
            kind=payload["kind"],
            reads=set(payload["reads"]),
            writes={k: int(v) for k, v in payload["writes"].items()},
            calls=set(payload["calls"]),
            emitted=payload["emitted"],
            required=payload["required"],
            optional=payload["optional"],
            has_payload_parameter=bool(
                payload.get("has_payload_parameter", True)
            ),
        )


@dataclass
class ClassSummary:
    """One class definition plus its resolved-later hierarchy links."""

    name: str
    line: int
    column: int
    bases: list[str] = field(default_factory=list)
    decorators: list[str] = field(default_factory=list)
    class_assigns: set[str] = field(default_factory=set)
    snapshot_kind: str | None = None
    methods: dict[str, MethodSummary] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "column": self.column,
            "bases": list(self.bases),
            "decorators": list(self.decorators),
            "class_assigns": sorted(self.class_assigns),
            "snapshot_kind": self.snapshot_kind,
            "methods": {
                name: method.to_json()
                for name, method in self.methods.items()
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ClassSummary":
        return cls(
            name=payload["name"],
            line=int(payload["line"]),
            column=int(payload["column"]),
            bases=list(payload["bases"]),
            decorators=list(payload["decorators"]),
            class_assigns=set(payload["class_assigns"]),
            snapshot_kind=payload["snapshot_kind"],
            methods={
                name: MethodSummary.from_json(method)
                for name, method in payload["methods"].items()
            },
        )


@dataclass
class ModuleSummary:
    """Everything the project pass needs to know about one file."""

    path: str
    parts: tuple[str, ...]
    sha256: str
    imports: list[ImportBinding] = field(default_factory=list)
    classes: list[ClassSummary] = field(default_factory=list)
    metric_calls: list[MetricCall] = field(default_factory=list)
    repro_literals: list[ReproLiteral] = field(default_factory=list)
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def module_name(self) -> str:
        """Dotted module name (``__init__`` maps to its package)."""
        parts = self.parts
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    @property
    def package(self) -> str:
        """Dotted package containing this module."""
        name = self.module_name
        if self.parts and self.parts[-1] == "__init__":
            return name
        return name.rpartition(".")[0]

    def in_repro(self) -> bool:
        """Whether the module scopes inside the ``repro`` package."""
        return bool(self.parts) and self.parts[0] == "repro"

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, frozenset())

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "parts": list(self.parts),
            "sha256": self.sha256,
            "imports": [imp.to_json() for imp in self.imports],
            "classes": [cls.to_json() for cls in self.classes],
            "metric_calls": [call.to_json() for call in self.metric_calls],
            "literals": [lit.to_json() for lit in self.repro_literals],
            "suppressions": {
                str(line): sorted(codes)
                for line, codes in self.suppressions.items()
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ModuleSummary":
        return cls(
            path=payload["path"],
            parts=tuple(payload["parts"]),
            sha256=payload["sha256"],
            imports=[
                ImportBinding.from_json(imp) for imp in payload["imports"]
            ],
            classes=[
                ClassSummary.from_json(entry)
                for entry in payload["classes"]
            ],
            metric_calls=[
                MetricCall.from_json(call)
                for call in payload["metric_calls"]
            ],
            repro_literals=[
                ReproLiteral.from_json(lit)
                for lit in payload["literals"]
            ],
            suppressions={
                int(line): frozenset(codes)
                for line, codes in payload["suppressions"].items()
            },
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


class _MethodScanner(ast.NodeVisitor):
    """Collect self-attribute reads/writes/calls from one method body.

    Writes are recorded for direct assignments (``self.x = ...``,
    ``self.x += ...``, ``del self.x``), subscript stores through a
    self attribute (``self.x[k] = v``), mutator-method calls on a
    self attribute (``self.x.update(...)``, ``self.x[k].append(...)``)
    and all three through a local alias previously bound with
    ``alias = self.x``.  Aliases are invalidated on rebinding.
    """

    def __init__(self, self_name: str) -> None:
        self.self_name = self_name
        self.reads: set[str] = set()
        self.writes: dict[str, int] = {}
        self.calls: set[str] = set()
        self._aliases: dict[str, str] = {}

    def _write(self, attr: str, node: ast.AST) -> None:
        self.writes.setdefault(attr, getattr(node, "lineno", 0))

    def _self_attr(self, node: ast.expr) -> str | None:
        """The attribute name if ``node`` is ``self.<attr>``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self.self_name
        ):
            return node.attr
        return None

    def _receiver_attr(self, node: ast.expr) -> str | None:
        """The self attribute ultimately receiving a mutation.

        Peels subscripts so ``self.x[k]`` and ``alias[k]`` resolve to
        the underlying attribute.
        """
        while isinstance(node, ast.Subscript):
            node = node.value
        attr = self._self_attr(node)
        if attr is not None:
            return attr
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id)
        return None

    # -- expressions ---------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if attr is not None:
            if isinstance(node.ctx, ast.Load):
                self.reads.add(attr)
            else:  # Store or Del
                self._write(attr, node)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not isinstance(node.ctx, ast.Load):
            receiver = self._receiver_attr(node)
            if receiver is not None:
                self._write(receiver, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == self.self_name
            ):
                self.calls.add(func.attr)
            elif func.attr in MUTATOR_METHOD_NAMES:
                receiver = self._receiver_attr(func.value)
                if receiver is not None:
                    self._write(receiver, node)
        self.generic_visit(node)

    # -- statements (alias bookkeeping) --------------------------------

    def _unbind_targets(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._aliases.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._unbind_targets(element)
        elif isinstance(target, ast.Starred):
            self._unbind_targets(target.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        value_attr = self._self_attr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if value_attr is not None:
                    self._aliases[target.id] = value_attr
                else:
                    self._aliases.pop(target.id, None)
            else:
                self._unbind_targets(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            value_attr = (
                self._self_attr(node.value) if node.value else None
            )
            if value_attr is not None:
                self._aliases[node.target.id] = value_attr
            else:
                self._aliases.pop(node.target.id, None)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``alias += [...]`` mutates the aliased object in place.
        if isinstance(node.target, ast.Name):
            aliased = self._aliases.get(node.target.id)
            if aliased is not None:
                self._write(aliased, node)
        self.generic_visit(node)


def _method_kind(function: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    for decorator in function.decorator_list:
        name = None
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name == "staticmethod":
            return "staticmethod"
        if name == "classmethod":
            return "classmethod"
        if name == "property" or name == "cached_property":
            return "property"
    return "instance"


def _summarize_method(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> MethodSummary:
    kind = _method_kind(function)
    summary = MethodSummary(
        name=function.name,
        line=function.lineno,
        column=function.col_offset,
        kind=kind,
    )
    if kind in ("instance", "property"):
        positional = [
            *function.args.posonlyargs,
            *function.args.args,
        ]
        self_name = positional[0].arg if positional else "self"
        scanner = _MethodScanner(self_name)
        for stmt in function.body:
            scanner.visit(stmt)
        summary.reads = scanner.reads
        summary.writes = scanner.writes
        summary.calls = scanner.calls
    if isinstance(function, ast.FunctionDef):
        if function.name == "to_dict":
            keys = emitted_keys(function)
            summary.emitted = sorted(keys) if keys is not None else None
        elif function.name == "from_dict":
            payload = payload_parameter(function)
            if payload is None:
                summary.has_payload_parameter = False
                summary.required, summary.optional = [], []
            else:
                required, optional = consumed_keys(function, payload)
                summary.required = sorted(required)
                summary.optional = sorted(optional)
    return summary


def _base_expression(node: ast.expr) -> str | None:
    """Render a base-class expression to a dotted string.

    ``Generic[T]`` unwraps to ``Generic``; expressions not rooted at a
    name (calls, subscript factories) return ``None`` and mark the
    hierarchy unresolved.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _summarize_class(cls: ast.ClassDef) -> ClassSummary:
    summary = ClassSummary(
        name=cls.name, line=cls.lineno, column=cls.col_offset
    )
    for base in cls.bases:
        rendered = _base_expression(base)
        summary.bases.append(rendered if rendered is not None else "?")
    for decorator in cls.decorator_list:
        rendered = _base_expression(decorator)
        if rendered is not None:
            summary.decorators.append(rendered)
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.methods[stmt.name] = _summarize_method(stmt)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    summary.class_assigns.add(target.id)
                    if target.id == "SNAPSHOT_KIND" and isinstance(
                        stmt.value, ast.Constant
                    ):
                        summary.snapshot_kind = str(stmt.value.value)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            summary.class_assigns.add(stmt.target.id)
            if stmt.target.id == "SNAPSHOT_KIND" and isinstance(
                stmt.value, ast.Constant
            ):
                summary.snapshot_kind = str(stmt.value.value)
    return summary


_METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})


def summarize_module(module: SourceModule) -> ModuleSummary:
    """Extract the project-pass summary from one parsed module."""
    summary = ModuleSummary(
        path=str(module.path),
        parts=module.parts,
        sha256=content_hash(module.source),
        suppressions=dict(module.suppressions),
    )
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports.append(
                    ImportBinding(
                        module=alias.name,
                        name=None,
                        bound=(
                            alias.asname
                            if alias.asname
                            else alias.name.split(".", 1)[0]
                        ),
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                summary.imports.append(
                    ImportBinding(
                        module=node.module or "",
                        name=alias.name,
                        bound=alias.asname or alias.name,
                        level=node.level,
                    )
                )
        elif isinstance(node, ast.Call):
            kind: str | None = None
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_KINDS
            ):
                kind = node.func.attr
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in _METRIC_KINDS
            ):
                kind = node.func.id
            if kind is not None and node.args:
                name_arg = node.args[0]
                if isinstance(name_arg, ast.Constant) and isinstance(
                    name_arg.value, str
                ):
                    summary.metric_calls.append(
                        MetricCall(
                            kind=kind,
                            name=name_arg.value,
                            is_fstring=False,
                            line=name_arg.lineno,
                            column=name_arg.col_offset,
                        )
                    )
                elif isinstance(name_arg, ast.JoinedStr):
                    summary.metric_calls.append(
                        MetricCall(
                            kind=kind,
                            name=None,
                            is_fstring=True,
                            line=name_arg.lineno,
                            column=name_arg.col_offset,
                        )
                    )
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if _REPRO_LITERAL.fullmatch(node.value):
                summary.repro_literals.append(
                    ReproLiteral(
                        value=node.value,
                        line=node.lineno,
                        column=node.col_offset,
                    )
                )
        elif isinstance(node, ast.ClassDef):
            summary.classes.append(_summarize_class(node))
    return summary


# ----------------------------------------------------------------------
# The project model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedMethod:
    """A method looked up through the class hierarchy."""

    summary: MethodSummary
    module: ModuleSummary
    owner: str  # qualified class key of the defining class


class ProjectModel:
    """Cross-module facts: symbols, hierarchy, call/mutation indexes."""

    def __init__(
        self,
        summaries: Sequence[ModuleSummary],
        root: Path | None = None,
    ) -> None:
        self.modules: dict[str, ModuleSummary] = {
            summary.path: summary for summary in summaries
        }
        self.by_name: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.by_name.setdefault(summary.module_name, summary)
        #: Qualified ``module.Class`` -> (class summary, module summary)
        self.classes: dict[str, tuple[ClassSummary, ModuleSummary]] = {}
        for summary in summaries:
            for cls in summary.classes:
                key = f"{summary.module_name}.{cls.name}"
                self.classes.setdefault(key, (cls, summary))
        self.root = root
        self.observability_doc = self._load_observability_doc(root)

    @staticmethod
    def _load_observability_doc(root: Path | None) -> str | None:
        """The metric catalogue RL014 validates names against.

        Looked up relative to the scan root so fixture trees can ship
        their own catalogue; absent docs disable the doc-drift check
        (fixtures without a ``docs/`` directory never fail it).
        """
        if root is None:
            return None
        for base in (root, *root.parents[:2]):
            candidate = base / "docs" / "observability.md"
            try:
                if candidate.is_file():
                    return candidate.read_text(encoding="utf-8")
            except OSError:  # pragma: no cover - unreadable docs
                return None
        return None

    # -- symbol resolution ---------------------------------------------

    def _resolve_relative(
        self, importer: ModuleSummary, module: str, level: int
    ) -> str:
        """Absolute dotted module for a relative import."""
        if level == 0:
            return module
        package_parts = importer.package.split(".") if importer.package else []
        # level=1 means the current package, each extra level one up.
        if level - 1 > 0:
            package_parts = package_parts[: -(level - 1)] or []
        prefix = ".".join(package_parts)
        if module:
            return f"{prefix}.{module}" if prefix else module
        return prefix

    def resolve_symbol(
        self, module_name: str, symbol: str, _seen: frozenset[str] = frozenset()
    ) -> tuple[str, str] | None:
        """Resolve ``symbol`` in ``module_name`` to a class or external.

        Returns ``("class", qualified_key)`` for a class defined in the
        project (following ``from X import Y [as Z]`` chains through
        ``__init__.py`` re-exports, with a cycle guard), ``("external",
        dotted)`` for a name imported from outside the project, or
        ``None`` when the name cannot be traced.
        """
        token = f"{module_name}:{symbol}"
        if token in _seen:
            return None
        _seen = _seen | {token}
        module = self.by_name.get(module_name)
        if module is None:
            return None
        key = f"{module_name}.{symbol}"
        if key in self.classes:
            return ("class", key)
        for binding in module.imports:
            if binding.bound != symbol or binding.name is None:
                continue
            target = self._resolve_relative(
                module, binding.module, binding.level
            )
            if target in self.by_name:
                resolved = self.resolve_symbol(
                    target, binding.name, _seen
                )
                if resolved is not None:
                    return resolved
                # Re-export chains may hop through a package that only
                # re-binds; treat a dead end inside the project as
                # unresolvable rather than external.
                return None
            return ("external", f"{target}.{binding.name}")
        return None

    def _resolve_base(
        self, module: ModuleSummary, base: str
    ) -> tuple[str, str] | None:
        """Resolve one base-class string from a class definition."""
        if base == "?":
            return None
        if "." not in base:
            resolved = self.resolve_symbol(module.module_name, base)
            if resolved is not None:
                return resolved
            if base in ATTRLESS_EXTERNAL_BASES:
                return ("external", base)
            return None
        head, _, rest = base.partition(".")
        for binding in module.imports:
            if binding.bound != head:
                continue
            if binding.name is None:
                target_module = binding.module
            else:
                target_module = (
                    self._resolve_relative(
                        module, binding.module, binding.level
                    )
                    + "."
                    + binding.name
                )
            dotted = f"{target_module}.{rest}"
            module_part, _, symbol = dotted.rpartition(".")
            if module_part in self.by_name:
                return self.resolve_symbol(module_part, symbol)
            return ("external", dotted)
        return None

    # -- hierarchy -----------------------------------------------------

    def ancestors(self, key: str) -> tuple[list[str], bool]:
        """Project-class ancestors of ``key`` (nearest first).

        The second element reports whether the *whole* hierarchy
        resolved: every base is either a project class (recursively
        resolved) or a known attribute-less external.  Rules that
        reason about the full attribute surface must bail out when it
        is ``False``.
        """
        ordered: list[str] = []
        resolved_fully = True
        seen: set[str] = {key}

        def visit(current: str) -> None:
            nonlocal resolved_fully
            entry = self.classes.get(current)
            if entry is None:
                return
            cls, module = entry
            for base in cls.bases:
                resolution = self._resolve_base(module, base)
                if resolution is None:
                    resolved_fully = False
                    continue
                tag, target = resolution
                if tag == "external":
                    if target.rpartition(".")[2] not in (
                        ATTRLESS_EXTERNAL_BASES
                    ):
                        resolved_fully = False
                    continue
                if target in seen:
                    # Inheritance cycles cannot happen in running code,
                    # but fixture trees may contain them; guard anyway.
                    resolved_fully = False
                    continue
                seen.add(target)
                ordered.append(target)
                visit(target)

        visit(key)
        return ordered, resolved_fully

    def resolved_methods(
        self, key: str
    ) -> tuple[dict[str, ResolvedMethod], bool]:
        """Method-resolution table for a class (own methods win)."""
        table: dict[str, ResolvedMethod] = {}
        entry = self.classes.get(key)
        if entry is None:
            return table, False
        ancestors, resolved_fully = self.ancestors(key)
        for current in (key, *ancestors):
            cls, module = self.classes[current]
            for name, method in cls.methods.items():
                table.setdefault(
                    name, ResolvedMethod(method, module, current)
                )
        return table, resolved_fully

    def attribute_surface(self, key: str) -> set[str]:
        """Every attribute name the hierarchy can place on an instance.

        The union of self-attribute writes across all methods
        (including inherited ``__init__``), class-level assignments
        (dataclass fields, ``ClassVar`` constants), and method /
        property names.
        """
        surface: set[str] = set()
        ancestors, _ = self.ancestors(key)
        for current in (key, *ancestors):
            cls, _module = self.classes[current]
            surface.update(cls.class_assigns)
            for name, method in cls.methods.items():
                surface.add(name)
                surface.update(method.writes)
        return surface

    @staticmethod
    def transitive(
        table: Mapping[str, ResolvedMethod],
        start: str,
        attribute: str,
        exclude: frozenset[str] = frozenset(),
    ) -> set[str]:
        """Fixpoint of a method-summary set over the self-call graph.

        ``attribute`` selects ``"reads"`` or ``"writes"``; calls into
        methods named in ``exclude`` are not followed (and the start
        method's own facts are always included).
        """
        gathered: set[str] = set()
        stack = [start]
        visited: set[str] = set()
        while stack:
            name = stack.pop()
            if name in visited:
                continue
            visited.add(name)
            resolved = table.get(name)
            if resolved is None:
                continue
            facts = getattr(resolved.summary, attribute)
            gathered.update(facts)
            for callee in resolved.summary.calls:
                if callee not in visited and callee not in exclude:
                    stack.append(callee)
        return gathered


# ----------------------------------------------------------------------
# The content-hash cache
# ----------------------------------------------------------------------


class AnalysisCache:
    """Per-file findings + summaries keyed by content hash.

    The cache makes incremental runs cheap without losing whole-program
    soundness: a hash hit skips parsing and per-file rules, but the
    cached :class:`ModuleSummary` still joins the project model, so
    cross-module rules always see the full tree.  Project-rule findings
    are deliberately *not* cached -- they depend on every other module
    and are cheap to recompute from summaries.
    """

    VERSION = 1

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            if payload.get("version") == self.VERSION:
                self._entries = payload.get("files", {})
        except (OSError, ValueError):
            self._entries = {}

    def lookup(
        self, path: str, digest: str
    ) -> tuple[list[Finding], ModuleSummary | None] | None:
        """Cached (findings, summary) for an unchanged file, else None."""
        entry = self._entries.get(path)
        if entry is None or entry.get("sha256") != digest:
            return None
        try:
            findings = [
                Finding(**finding) for finding in entry["findings"]
            ]
            summary_payload = entry["summary"]
            summary = (
                ModuleSummary.from_json(summary_payload)
                if summary_payload is not None
                else None
            )
        except (KeyError, TypeError, ValueError):
            return None
        return findings, summary

    def store(
        self,
        path: str,
        digest: str,
        findings: Sequence[Finding],
        summary: ModuleSummary | None,
    ) -> None:
        self._entries[path] = {
            "sha256": digest,
            "findings": [finding.to_json() for finding in findings],
            "summary": summary.to_json() if summary is not None else None,
        }
        self._dirty = True

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files no longer part of the scan."""
        stale = set(self._entries) - live_paths
        for path in stale:
            del self._entries[path]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"version": self.VERSION, "files": self._entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        self._dirty = False


def iter_project_findings(
    model: ProjectModel, rules: Sequence[Any]
) -> Iterator[Finding]:
    """Run every project rule over the model (no suppression filter)."""
    for rule in rules:
        yield from rule.check_project(model)
