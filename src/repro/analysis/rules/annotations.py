"""RL006: public API of the synopsis engine is fully type-annotated.

The mypy strict gate (``core/``, ``randkit/``, ``synopses/``) and the
RL003 float-evidence rule both feed on annotations; a public function
without them is a hole in every downstream check.  This rule enforces
the floor everywhere mypy runs in standard mode too: every public
function or method in ``core/``, ``engine/``, ``synopses/`` annotates
all parameters and its return type.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule

__all__ = ["PublicAnnotationsRule"]


def _is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return True  # dunders are API
    return not name.startswith("_")


class PublicAnnotationsRule(Rule):
    """RL006: unannotated public function in the engine layers."""

    code = "RL006"
    title = "public function missing type annotations"
    rationale = (
        "The strict-typing gate and annotation-driven rules (RL003) "
        "are only as strong as the annotations they read."
    )
    scope = ("core", "engine", "synopses")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        yield from self._check_body(module, module.tree.body, private=False)

    def _check_body(
        self,
        module: SourceModule,
        body: list[ast.stmt],
        private: bool,
    ) -> Iterator[Finding]:
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if not private and _is_public(statement.name):
                    yield from self._check_signature(module, statement)
                # Nested defs are implementation detail: do not recurse.
            elif isinstance(statement, ast.ClassDef):
                yield from self._check_body(
                    module,
                    statement.body,
                    private=private or not _is_public(statement.name),
                )

    def _check_signature(
        self,
        module: SourceModule,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        args = function.args
        missing: list[str] = []
        positional = [*args.posonlyargs, *args.args]
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if function.returns is None:
            missing.append("return type")
        if missing:
            yield self.finding(
                module,
                function,
                f"public `{function.name}` missing annotations: "
                + ", ".join(missing),
                "annotate every parameter and the return type",
            )
