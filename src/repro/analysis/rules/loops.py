"""RL012: per-row Python loops on the answer path.

Reporting and estimation are the latency-critical half of the paper's
Figure 1 loop -- an approximate answer is only "prompt" if the report
is computed in vectorized array passes, not one dict entry or one
``.tolist()`` element at a time.  The columnar kernels in
:mod:`repro.hotlist.kernels` and the samples' ``columnar_view()`` exist
precisely so cut-offs, scaling, and top-k selection run as whole-array
numpy ops; this rule keeps per-row fallbacks from creeping back in.

Two patterns are flagged, in the answer-path modules only
(``repro.hotlist``, ``repro.estimators``, and the engine's query
router ``repro.engine.engine``):

* iterating directly over ``<array>.tolist()`` in a ``for`` statement
  or comprehension -- materializing per-element Python objects just to
  loop over them;
* comprehensions accumulating over ``.items()`` / ``.values()`` /
  ``.pairs()`` dict walks -- the shape the columnar view replaces.

Plain ``for`` statements over ``.items()`` remain allowed: index
maintenance and serialization legitimately walk dicts row by row.
Tests and benchmarks are exempt (dict-path reference implementations
live there on purpose).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule

__all__ = ["AnswerPathLoopRule"]

#: Directory roots outside the ``repro`` package that the rule skips.
_EXEMPT_ROOTS = frozenset({"tests", "benchmarks"})

#: Dict-walk methods whose results a comprehension should not
#: accumulate over on the answer path.
_DICT_WALKS = frozenset({"items", "values", "pairs"})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _method_call(node: ast.expr, names: frozenset[str]) -> str | None:
    """The method name when ``node`` is a no-arg ``<recv>.<name>()``."""
    if not isinstance(node, ast.Call) or node.args or node.keywords:
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in names:
        return func.attr
    return None


class AnswerPathLoopRule(Rule):
    """RL012: per-row iteration where a columnar kernel belongs."""

    code = "RL012"
    title = "per-row loop on the answer path"
    rationale = (
        "Reporters and estimators answer queries; looping over "
        ".tolist() elements or dict walks makes answer latency scale "
        "per row.  Use the sample's columnar_view() and the "
        "hotlist.kernels array ops instead."
    )
    scope = ("hotlist", "estimators")

    def applies_to(self, module: SourceModule) -> bool:
        if _EXEMPT_ROOTS.intersection(module.parts):
            return False
        # The engine subpackage is routing/maintenance code except for
        # the query router and the shared answer routing it delegates
        # to, which are on the answer path.
        if module.parts in (
            ("repro", "engine", "engine"),
            ("repro", "engine", "answering"),
        ):
            return True
        return super().applies_to(module)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iterable(
                    module, node.iter, tolist_only=True
                )
            elif isinstance(node, _COMPREHENSIONS):
                for generator in node.generators:
                    yield from self._check_iterable(
                        module, generator.iter, tolist_only=False
                    )

    def _check_iterable(
        self,
        module: SourceModule,
        iterable: ast.expr,
        *,
        tolist_only: bool,
    ) -> Iterator[Finding]:
        if _method_call(iterable, frozenset({"tolist"})) is not None:
            yield self.finding(
                module,
                iterable,
                "iterating element-by-element over `.tolist()` on "
                "the answer path",
                "keep the data columnar: operate on the array itself "
                "(masks, partition, lexsort) or use "
                "hotlist.kernels",
            )
            return
        if tolist_only:
            return
        method = _method_call(iterable, _DICT_WALKS)
        if method is not None:
            yield self.finding(
                module,
                iterable,
                f"comprehension accumulates over `.{method}()` on "
                "the answer path",
                "use the sample's columnar_view() and vectorized "
                "kernels instead of walking the dict",
            )
