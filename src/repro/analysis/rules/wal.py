"""RL011: per-row WAL appends in a loop outside ``repro.persist``.

A ``wal.append(...)`` inside a loop pays one frame encode, one retried
write, and (at ``sync_every=1``) one fsync *per row* -- the exact
pattern the group-commit fast path exists to replace.  Callers that
ingest many records hand the whole batch to
:meth:`~repro.persist.wal.WriteAheadLog.append_many` (one buffer, one
write, one fsync point) or go through
:meth:`~repro.engine.warehouse.DataWarehouse.load_batch` under an
attached :class:`~repro.persist.recovery.RecoveryManager`, which emits
one columnar batch record.

``repro.persist`` itself is exempt (the WAL's own internals and
read-repair loops live there), as are tests and benchmarks (fault
sweeps and baseline timings loop over ``append`` on purpose).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule, dotted_name

__all__ = ["PerRowWalAppendRule"]

#: Directory roots outside the ``repro`` package that the rule skips.
_EXEMPT_ROOTS = frozenset({"tests", "benchmarks"})

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _is_wal_append(node: ast.Call) -> bool:
    """Whether a call is ``<...>.wal.append(...)`` or ``wal.append(...)``."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "append"):
        return False
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    tail = receiver.rsplit(".", 1)[-1]
    return tail in ("wal", "_wal")


class PerRowWalAppendRule(Rule):
    """RL011: ``wal.append`` called inside a loop."""

    code = "RL011"
    title = "per-row WAL append in a loop"
    rationale = (
        "A looped wal.append pays frame/write/fsync overhead per row; "
        "batch ingest goes through append_many (one buffer, one fsync "
        "point) or DataWarehouse.load_batch."
    )
    scope = None
    exclude = ("persist",)

    def applies_to(self, module: SourceModule) -> bool:
        # Matched as path components, not ``parts[0]``: fixture trees
        # and out-of-cwd invocations leave absolute parts, but never
        # place product code under ``tests``/``benchmarks``.
        if _EXEMPT_ROOTS.intersection(module.parts):
            return False
        return super().applies_to(module)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        hint = (
            "collect the records and call wal.append_many(records) "
            "once, or ingest via DataWarehouse.load_batch"
        )
        for loop in ast.walk(module.tree):
            if not isinstance(loop, _LOOPS):
                continue
            # Walking each loop's subtree double-visits calls in
            # nested loops; the runner dedupes identical findings.
            for node in ast.walk(loop):
                if isinstance(node, ast.Call) and _is_wal_append(node):
                    yield self.finding(
                        module,
                        node,
                        "`wal.append()` inside a loop appends one "
                        "record per iteration",
                        hint,
                    )
