"""RL015: snapshot parity across class hierarchies.

RL007 audits ``to_dict``/``from_dict`` pairs defined side by side in
one class.  The synopsis hierarchy does not stay that tidy: shared
state is assigned in an inherited ``__init__`` (``StreamSynopsis``
owns the ``CostCounters`` ledger every subclass snapshots), subclasses
override only one half of the pair, and ``SNAPSHOT_KIND`` tags route
restores through a registry.  Footnote-2 recovery diverges just as
silently when the mismatch spans two modules, so this rule re-runs the
parity check with the whole hierarchy resolved:

* ``SNAPSHOT_KIND`` values must be unique project-wide -- two classes
  claiming the same tag make snapshot routing ambiguous;
* when a class defines exactly one of ``to_dict``/``from_dict`` and
  inherits the other, the *resolved* pair must still agree on the
  field set (the same ignored/phantom analysis as RL007);
* a ``to_dict`` may only read attributes that some class in its fully
  resolved hierarchy can actually place on the instance -- inherited
  ``__init__`` assignments count, and the check stands down whenever a
  base class cannot be resolved.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ClassSummary, ModuleSummary, ProjectModel
from repro.analysis.rules.base import ProjectRule

__all__ = ["SnapshotHierarchyParityRule"]


class SnapshotHierarchyParityRule(ProjectRule):
    """RL015: hierarchy-resolved snapshot field/kind mismatch."""

    code = "RL015"
    title = "cross-class snapshot parity violation"
    rationale = (
        "Recovery routes snapshots by SNAPSHOT_KIND and restores them "
        "through inherited to_dict/from_dict halves; a mismatch that "
        "spans the hierarchy diverges just as silently as a same-file "
        "one."
    )
    scope = None

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        repro_classes = [
            (key, cls, module)
            for key, (cls, module) in sorted(model.classes.items())
            if module.in_repro()
        ]
        yield from self._check_kind_uniqueness(repro_classes)
        for key, cls, module in repro_classes:
            yield from self._check_split_pair(model, key, cls, module)
            yield from self._check_emitted_fields_exist(
                model, key, cls, module
            )

    # -- SNAPSHOT_KIND uniqueness --------------------------------------

    def _check_kind_uniqueness(
        self,
        repro_classes: list[tuple[str, ClassSummary, ModuleSummary]],
    ) -> Iterator[Finding]:
        first_claim: dict[str, tuple[str, str, int]] = {}
        claims = sorted(
            (
                (module.path, cls.line, cls, module)
                for _key, cls, module in repro_classes
                if cls.snapshot_kind is not None
            ),
        )
        for _path, _line, cls, module in claims:
            kind = cls.snapshot_kind
            assert kind is not None
            earlier = first_claim.setdefault(
                kind, (cls.name, module.path, cls.line)
            )
            if earlier[0] == cls.name and earlier[1] == module.path:
                continue
            yield self.project_finding(
                module,
                cls.line,
                cls.column,
                f"SNAPSHOT_KIND {kind!r} on `{cls.name}` is already "
                f"claimed by `{earlier[0]}` ({earlier[1]}:{earlier[2]})",
                "snapshot routing needs one kind tag per class; pick "
                "a distinct tag",
            )

    # -- split-pair parity ---------------------------------------------

    def _check_split_pair(
        self,
        model: ProjectModel,
        key: str,
        cls: ClassSummary,
        module: ModuleSummary,
    ) -> Iterator[Finding]:
        local_to = "to_dict" in cls.methods
        local_from = "from_dict" in cls.methods
        if local_to == local_from:
            # Both local is RL007's per-file territory; neither local
            # means the resolved pair is checked at the defining class.
            return
        table, _resolved = model.resolved_methods(key)
        to_dict = table.get("to_dict")
        from_dict = table.get("from_dict")
        if to_dict is None or from_dict is None:
            return
        emitted = to_dict.summary.emitted
        if emitted is None:
            return
        if not from_dict.summary.has_payload_parameter:
            return
        required = set(from_dict.summary.required or ())
        optional = set(from_dict.summary.optional or ())
        ignored = set(emitted) - required - optional
        phantom = required - set(emitted)
        to_owner = to_dict.owner.rpartition(".")[2]
        from_owner = from_dict.owner.rpartition(".")[2]
        if ignored:
            yield self.project_finding(
                to_dict.module,
                to_dict.summary.line,
                to_dict.summary.column,
                f"`{to_owner}.to_dict` (resolved for `{cls.name}`) "
                f"emits fields `{from_owner}.from_dict` never reads: "
                + ", ".join(sorted(ignored)),
                "consume them in from_dict or stop emitting them",
            )
        if phantom:
            yield self.project_finding(
                from_dict.module,
                from_dict.summary.line,
                from_dict.summary.column,
                f"`{from_owner}.from_dict` (resolved for `{cls.name}`) "
                f"requires fields `{to_owner}.to_dict` never emits: "
                + ", ".join(sorted(phantom)),
                "emit them in to_dict, or read them with "
                ".get(..., default) if they are legacy-optional",
            )

    # -- to_dict reads must exist on the hierarchy ---------------------

    def _check_emitted_fields_exist(
        self,
        model: ProjectModel,
        key: str,
        cls: ClassSummary,
        module: ModuleSummary,
    ) -> Iterator[Finding]:
        to_dict = cls.methods.get("to_dict")
        if to_dict is None or to_dict.emitted is None:
            return
        if to_dict.kind not in ("instance", "property"):
            return
        table, resolved_fully = model.resolved_methods(key)
        # Without an explicit __init__ anywhere in the hierarchy (or
        # with an unresolvable base) the attribute surface is unknown
        # -- dataclasses, ad-hoc fixtures, and mixins stand down.
        if not resolved_fully or "__init__" not in table:
            return
        surface = model.attribute_surface(key)
        missing = to_dict.reads - surface
        if missing:
            yield self.project_finding(
                module,
                to_dict.line,
                to_dict.column,
                f"`{cls.name}.to_dict` reads attributes no class in "
                "its hierarchy assigns: " + ", ".join(sorted(missing)),
                "snapshot only state the hierarchy actually carries "
                "(inherited __init__ assignments count)",
            )
