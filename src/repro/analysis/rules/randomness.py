"""RL001/RL002: all randomness flows through the randkit ledger.

The paper's cost model (Section 3.3) counts algorithm work in coin
flips, and Theorem 2's uniformity induction assumes every admission and
eviction coin is drawn from the algorithm's own seeded stream.  A raw
``random.random()`` or ``np.random.default_rng()`` call outside
:mod:`repro.randkit` is randomness the ledger never sees: costs go
unreported and experiments stop being reproducible from their recorded
seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule, dotted_name

__all__ = ["LedgerRequiredRule", "RawRandomnessRule"]

# Constructors whose second positional argument (or ``counters=``
# keyword) is the CostCounters ledger.
_LEDGER_CONSTRUCTORS = frozenset(
    {"Coin", "EvictionSkipper", "GeometricSkipper", "VectorCoins"}
)


class RawRandomnessRule(Rule):
    """RL001: no raw randomness outside ``repro.randkit``."""

    code = "RL001"
    title = "no raw randomness outside randkit"
    rationale = (
        "Theorem 2 uniformity and the Section 3.3 flip accounting only "
        "hold for draws charged to the randkit ledger."
    )
    scope = None
    exclude = ("randkit",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        random_aliases: set[str] = set()
        numpy_aliases: set[str] = set()
        os_aliases: set[str] = set()
        from_bindings: dict[str, str] = {}

        hint = (
            "use repro.randkit (ReproRandom, numpy_generator, "
            "VectorCoins) so draws are seeded and ledger-charged"
        )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        random_aliases.add(bound)
                        yield self.finding(
                            module, node,
                            "import of stdlib `random` outside randkit", hint,
                        )
                    elif alias.name == "numpy.random":
                        yield self.finding(
                            module, node,
                            "import of `numpy.random` outside randkit", hint,
                        )
                    elif alias.name in ("numpy", "np"):
                        numpy_aliases.add(bound)
                    elif alias.name == "os":
                        os_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module, node,
                        "import from stdlib `random` outside randkit", hint,
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        from_bindings[alias.asname or alias.name] = alias.name
                    yield self.finding(
                        module, node,
                        "import from `numpy.random` outside randkit", hint,
                    )
                elif node.module == "os":
                    for alias in node.names:
                        if alias.name == "urandom":
                            yield self.finding(
                                module, node,
                                "import of `os.urandom` outside randkit", hint,
                            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                chain = dotted_name(node)
                if chain is None:
                    continue
                head, _, rest = chain.partition(".")
                if head in random_aliases and rest:
                    yield self.finding(
                        module, node, f"raw stdlib randomness `{chain}`", hint
                    )
                elif (
                    head in numpy_aliases
                    and rest.split(".")[0] == "random"
                    and rest != "random"
                ):
                    yield self.finding(
                        module, node, f"raw numpy randomness `{chain}`", hint
                    )
                elif head in os_aliases and rest == "urandom":
                    yield self.finding(
                        module, node, "`os.urandom` is unseeded entropy", hint
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                target = from_bindings.get(node.func.id)
                if target == "default_rng" and not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "seedless `default_rng()` draws from OS entropy",
                        "pass an explicit seed derived from the experiment seed",
                    )


class LedgerRequiredRule(Rule):
    """RL002: skipper/coin constructions must carry a CostCounters ledger.

    ``GeometricSkipper``, ``EvictionSkipper``, ``VectorCoins`` and
    ``Coin`` all charge their flips to the ledger passed at
    construction.  A construction without one either fails at runtime
    or (``Coin``'s default factory) silently charges a private ledger
    nobody reads, under-reporting the Table 1/2 flip rates.
    """

    code = "RL002"
    title = "skipper/coin constructed without a ledger"
    rationale = (
        "Section 3.3 cost accounting: flips not charged to the shared "
        "CostCounters vanish from the per-insert rates."
    )
    scope = None
    exclude = ("randkit",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._constructor_name(node.func)
            if name is None:
                continue
            if any(keyword.arg == "counters" for keyword in node.keywords):
                continue
            if any(keyword.arg is None for keyword in node.keywords):
                continue  # **kwargs may carry counters; undecidable
            if any(isinstance(arg, ast.Starred) for arg in node.args):
                continue  # *args may carry counters; undecidable
            if len(node.args) >= 2:
                continue  # second positional argument is the ledger
            yield self.finding(
                module,
                node,
                f"`{name}` constructed without a CostCounters ledger",
                "pass the synopsis's counters as the second argument "
                "or as counters=",
            )

    @staticmethod
    def _constructor_name(func: ast.expr) -> str | None:
        if isinstance(func, ast.Name) and func.id in _LEDGER_CONSTRUCTORS:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in _LEDGER_CONSTRUCTORS:
            return func.attr
        return None
