"""RL003: no float equality in the estimator/statistics layers.

Estimates in this codebase are scaled counts (``n/m'`` times a sample
count, Section 5.1) and interval endpoints -- floating point through
and through.  An ``==``/``!=`` between floats silently encodes an
exact-representation assumption that breaks under scaling and
accumulation; accuracy comparisons must be tolerance-based.

Detection is evidence-based rather than type-inferred: an operand
counts as float when it is a float literal, a ``float(...)`` or
``math.*`` call, a true division, or a name/subscript/``.get`` whose
annotation in the enclosing function marks it (or its container's
values) as ``float``.  This leans on the RL006/mypy annotation gate:
the better annotated the tree, the sharper this rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule, dotted_name

__all__ = ["FloatEqualityRule"]

# Generic containers whose *last* type parameter is the element/value
# type an index or ``.get`` retrieves.
_CONTAINERS = frozenset(
    {
        "Counter",
        "Dict",
        "Iterable",
        "List",
        "Mapping",
        "MutableMapping",
        "Sequence",
        "defaultdict",
        "dict",
        "list",
        "tuple",
    }
)


def _is_float_annotation(annotation: ast.expr | None) -> bool:
    return isinstance(annotation, ast.Name) and annotation.id == "float"


def _is_float_container(annotation: ast.expr | None) -> bool:
    """``Mapping[K, float]``, ``list[float]``, ... (value type float)."""
    if not isinstance(annotation, ast.Subscript):
        return False
    base = annotation.value
    base_name = base.id if isinstance(base, ast.Name) else (
        base.attr if isinstance(base, ast.Attribute) else None
    )
    if base_name not in _CONTAINERS:
        return False
    inner = annotation.slice
    if isinstance(inner, ast.Tuple):
        return bool(inner.elts) and _is_float_annotation(inner.elts[-1])
    return _is_float_annotation(inner)


class _Scope:
    """Float evidence gathered from one function's annotations."""

    def __init__(self) -> None:
        self.float_names: set[str] = set()
        self.float_containers: set[str] = set()

    def note(self, name: str, annotation: ast.expr | None) -> None:
        if _is_float_annotation(annotation):
            self.float_names.add(name)
        elif _is_float_container(annotation):
            self.float_containers.add(name)


class FloatEqualityRule(Rule):
    """RL003: ``==``/``!=`` on float-typed operands."""

    code = "RL003"
    title = "float equality comparison"
    rationale = (
        "Estimates are scaled floats (Section 5.1); exact equality on "
        "them encodes a representation accident, not a property."
    )
    scope = ("estimators", "hotlist", "stats")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for function in ast.walk(module.tree):
            if not isinstance(
                function, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            scope = self._collect_scope(function)
            for node in ast.walk(function):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(
                    isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
                ):
                    continue
                operands = [node.left, *node.comparators]
                floaty = next(
                    (
                        operand
                        for operand in operands
                        if self._is_floaty(operand, scope)
                    ),
                    None,
                )
                if floaty is not None:
                    yield self.finding(
                        module,
                        node,
                        "float operand compared with ==/!=",
                        "compare with math.isclose(...) or an explicit "
                        "tolerance, or test truthiness for zero-checks",
                    )

    @staticmethod
    def _collect_scope(
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> _Scope:
        scope = _Scope()
        args = function.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ):
            scope.note(arg.arg, arg.annotation)
        for node in ast.walk(function):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                scope.note(node.target.id, node.annotation)
        return scope

    def _is_floaty(self, node: ast.expr, scope: _Scope) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._is_floaty(node.left, scope) or self._is_floaty(
                node.right, scope
            )
        if isinstance(node, ast.UnaryOp):
            return self._is_floaty(node.operand, scope)
        if isinstance(node, ast.Name):
            return node.id in scope.float_names
        if isinstance(node, ast.Subscript):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id in scope.float_containers
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "float":
                return True
            chain = dotted_name(func) if isinstance(func, ast.Attribute) else None
            if chain is not None and chain.startswith("math."):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and isinstance(func.value, ast.Name)
                and func.value.id in scope.float_containers
            ):
                return True
        return False
