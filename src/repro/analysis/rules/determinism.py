"""RL005: no wall-clock nondeterminism in the synopsis layers.

Synopsis behaviour must be a pure function of (stream, seed): that is
what makes the statistical-equivalence tests meaningful and lets a
snapshot + log replay reconstruct an identical synopsis (footnote 2).
``time``/``datetime`` reads inside :mod:`repro.core` or
:mod:`repro.synopses` would thread wall-clock state into that function.
Benchmarks and experiment drivers live outside the scope and may time
things freely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule

__all__ = ["WallClockRule"]

_CLOCK_MODULES = frozenset({"datetime", "time"})


class WallClockRule(Rule):
    """RL005: ``time``/``datetime`` imported in core/synopses."""

    code = "RL005"
    title = "wall-clock use in a deterministic layer"
    rationale = (
        "Synopsis state must be a function of (stream, seed) for "
        "snapshot/replay recovery and equivalence testing to hold."
    )
    scope = ("core", "synopses")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        hint = (
            "keep timing in benchmarks/ or experiments/; pass any "
            "needed timestamps in as explicit arguments"
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _CLOCK_MODULES:
                        yield self.finding(
                            module,
                            node,
                            f"import of `{alias.name}` in a "
                            "deterministic layer",
                            hint,
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _CLOCK_MODULES and node.level == 0:
                    yield self.finding(
                        module,
                        node,
                        f"import from `{node.module}` in a "
                        "deterministic layer",
                        hint,
                    )
