"""RL007: snapshot ``to_dict``/``from_dict`` pairs round-trip all fields.

Snapshot + log replay is the recovery story (paper footnote 2), and it
only works if restore consumes exactly the state dump emits.  A field
added to ``to_dict`` but forgotten in ``from_dict`` restores synopses
with silently-reset state; a field required by ``from_dict`` but never
emitted turns every snapshot into a ``KeyError`` at recovery time.

The check is static: for any class defining both methods, the string
keys of dict literals returned by ``to_dict`` are compared against the
keys ``from_dict`` reads off its payload parameter.  Keys read with
``payload.get("k", default)`` count as consumed but are not required to
be emitted -- that is the sanctioned pattern for accepting snapshots
from older versions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule

__all__ = ["SnapshotRoundTripRule"]


def _emitted_keys(function: ast.FunctionDef) -> set[str] | None:
    """String keys of every dict literal returned by ``to_dict``.

    Returns ``None`` when no return statement is a dict literal (the
    method builds its payload dynamically; nothing to check).
    """
    keys: set[str] = set()
    saw_literal = False
    for node in ast.walk(function):
        if not isinstance(node, ast.Return) or not isinstance(
            node.value, ast.Dict
        ):
            continue
        saw_literal = True
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.add(key.value)
    return keys if saw_literal else None


def _payload_parameter(function: ast.FunctionDef) -> str | None:
    """The parameter holding the snapshot dict (first after self/cls)."""
    positional = [*function.args.posonlyargs, *function.args.args]
    names = [arg.arg for arg in positional]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names[0] if names else None


def _consumed_keys(
    function: ast.FunctionDef, payload: str
) -> tuple[set[str], set[str]]:
    """Keys read off the payload: (required via ``[...]``, via ``.get``)."""
    required: set[str] = set()
    optional: set[str] = set()
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == payload
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            required.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == payload
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            optional.add(node.args[0].value)
    return required, optional


class SnapshotRoundTripRule(Rule):
    """RL007: ``to_dict`` and ``from_dict`` disagree on the field set."""

    code = "RL007"
    title = "snapshot round-trip field mismatch"
    rationale = (
        "Recovery is snapshot + replay (footnote 2); a dropped field "
        "restores silently-wrong synopsis state."
    )
    scope = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef)
            }
            to_dict = methods.get("to_dict")
            from_dict = methods.get("from_dict")
            if to_dict is None or from_dict is None:
                continue
            emitted = _emitted_keys(to_dict)
            if emitted is None:
                continue
            payload = _payload_parameter(from_dict)
            if payload is None:
                yield self.finding(
                    module,
                    from_dict,
                    f"`{cls.name}.from_dict` has no payload parameter",
                    "accept the snapshot dict as the first argument",
                )
                continue
            required, optional = _consumed_keys(from_dict, payload)
            ignored = emitted - required - optional
            phantom = required - emitted
            if ignored:
                yield self.finding(
                    module,
                    to_dict,
                    f"`{cls.name}.to_dict` emits fields `from_dict` "
                    "never reads: " + ", ".join(sorted(ignored)),
                    "consume them in from_dict or stop emitting them",
                )
            if phantom:
                yield self.finding(
                    module,
                    from_dict,
                    f"`{cls.name}.from_dict` requires fields `to_dict` "
                    "never emits: " + ", ".join(sorted(phantom)),
                    "emit them in to_dict, or read them with "
                    ".get(..., default) if they are legacy-optional",
                )
