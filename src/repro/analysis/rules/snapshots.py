"""RL007: snapshot ``to_dict``/``from_dict`` pairs round-trip all fields.

Snapshot + log replay is the recovery story (paper footnote 2), and it
only works if restore consumes exactly the state dump emits.  A field
added to ``to_dict`` but forgotten in ``from_dict`` restores synopses
with silently-reset state; a field required by ``from_dict`` but never
emitted turns every snapshot into a ``KeyError`` at recovery time.

The check is static: for any class defining both methods, the string
keys of dict literals returned by ``to_dict`` are compared against the
keys ``from_dict`` reads off its payload parameter.  Keys read with
``payload.get("k", default)`` count as consumed but are not required to
be emitted -- that is the sanctioned pattern for accepting snapshots
from older versions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule
from repro.analysis.snapshot_fields import (
    consumed_keys,
    emitted_keys,
    payload_parameter,
)

__all__ = [
    "SnapshotRoundTripRule",
    "consumed_keys",
    "emitted_keys",
    "payload_parameter",
]


class SnapshotRoundTripRule(Rule):
    """RL007: ``to_dict`` and ``from_dict`` disagree on the field set."""

    code = "RL007"
    title = "snapshot round-trip field mismatch"
    rationale = (
        "Recovery is snapshot + replay (footnote 2); a dropped field "
        "restores silently-wrong synopsis state."
    )
    scope = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef)
            }
            to_dict = methods.get("to_dict")
            from_dict = methods.get("from_dict")
            if to_dict is None or from_dict is None:
                continue
            emitted = emitted_keys(to_dict)
            if emitted is None:
                continue
            payload = payload_parameter(from_dict)
            if payload is None:
                yield self.finding(
                    module,
                    from_dict,
                    f"`{cls.name}.from_dict` has no payload parameter",
                    "accept the snapshot dict as the first argument",
                )
                continue
            required, optional = consumed_keys(from_dict, payload)
            ignored = emitted - required - optional
            phantom = required - emitted
            if ignored:
                yield self.finding(
                    module,
                    to_dict,
                    f"`{cls.name}.to_dict` emits fields `from_dict` "
                    "never reads: " + ", ".join(sorted(ignored)),
                    "consume them in from_dict or stop emitting them",
                )
            if phantom:
                yield self.finding(
                    module,
                    from_dict,
                    f"`{cls.name}.from_dict` requires fields `to_dict` "
                    "never emits: " + ", ".join(sorted(phantom)),
                    "emit them in to_dict, or read them with "
                    ".get(..., default) if they are legacy-optional",
                )
