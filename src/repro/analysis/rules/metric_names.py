"""RL014: metric names form a registry validated against the docs.

``docs/observability.md`` is the contract between the telemetry layer
and whoever operates it: every exported series is supposed to appear
in its catalogue tables.  Without a machine check, the catalogue
drifts -- a renamed counter keeps its documented name, a new gauge
never lands in the tables, and dashboards silently chart nothing.

Project-wide (so the registry is genuinely global), every literal
passed to ``counter()`` / ``gauge()`` / ``histogram()`` must

* be a *plain* string literal (f-strings defeat static registries);
* match ``repro_``-prefixed snake_case;
* map to exactly one metric kind across the whole tree (the same
  name as both a counter and a gauge breaks Prometheus exposition);

and every ``repro_``-prefixed string constant anywhere in ``repro``
modules must appear in the observability catalogue (word-boundary
match, so ``repro_cost`` does not satisfy ``repro_cost_flips_total``).
The doc check scans *all* canonical literals, not just call sites,
because several modules route names through tuples before the call.
Trees without a ``docs/observability.md`` (unit-test fixtures) skip
only the doc-presence check.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectModel
from repro.analysis.rules.base import ProjectRule

__all__ = ["MetricNameRegistryRule"]

_CANONICAL = re.compile(r"repro_[a-z0-9]+(_[a-z0-9]+)*")


class MetricNameRegistryRule(ProjectRule):
    """RL014: metric name outside the documented registry contract."""

    code = "RL014"
    title = "metric name violates the registry contract"
    rationale = (
        "docs/observability.md is the operator contract; undocumented, "
        "misnamed, or kind-ambiguous metric names drift away from the "
        "dashboards reading them."
    )
    scope = None

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        kinds_seen: dict[str, tuple[str, str, int]] = {}
        modules = sorted(
            (m for m in model.modules.values() if m.in_repro()),
            key=lambda m: m.path,
        )
        for module in modules:
            for call in module.metric_calls:
                if call.is_fstring:
                    yield self.project_finding(
                        module,
                        call.line,
                        call.column,
                        f"{call.kind}() name must be a plain string "
                        "literal, not an f-string",
                        "enumerate the possible names as literals (a "
                        "static registry cannot audit computed names)",
                    )
                    continue
                name = call.name or ""
                if not _CANONICAL.fullmatch(name):
                    yield self.project_finding(
                        module,
                        call.line,
                        call.column,
                        f"metric name {name!r} is not repro_-prefixed "
                        "snake_case",
                        "rename to match repro_<noun>_<unit> "
                        "(lowercase, underscores)",
                    )
                    continue
                first = kinds_seen.setdefault(
                    name, (call.kind, module.path, call.line)
                )
                if first[0] != call.kind:
                    yield self.project_finding(
                        module,
                        call.line,
                        call.column,
                        f"metric {name!r} registered as {call.kind} but "
                        f"already used as {first[0]} "
                        f"({first[1]}:{first[2]})",
                        "one name maps to one metric kind; rename one "
                        "of the two series",
                    )
        if model.observability_doc is None:
            return
        doc = model.observability_doc
        for module in modules:
            for literal in module.repro_literals:
                if not _CANONICAL.fullmatch(literal.value):
                    continue
                pattern = (
                    r"(?<![A-Za-z0-9_])"
                    + re.escape(literal.value)
                    + r"(?![A-Za-z0-9_])"
                )
                if re.search(pattern, doc) is None:
                    yield self.project_finding(
                        module,
                        literal.line,
                        literal.column,
                        f"{literal.value!r} is missing from the "
                        "docs/observability.md metric catalogue",
                        "add it to the catalogue table (or rename it "
                        "off the repro_ metric namespace)",
                    )
