"""Rule base class and small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule

__all__ = ["Rule", "dotted_name"]


class Rule:
    """One invariant check over a parsed module.

    Class attributes
    ----------------
    code / title:
        The ``RLxxx`` id and the short name shown in reports.
    scope:
        Subpackages of ``repro`` the rule applies to; ``None`` means
        the whole tree.
    exclude:
        Subpackages exempt even when ``scope`` is ``None`` (RL001
        exempts ``randkit`` itself this way).
    """

    code: ClassVar[str] = "RL000"
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    scope: ClassVar[tuple[str, ...] | None] = None
    exclude: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, module: SourceModule) -> bool:
        """Whether this rule runs over ``module`` at all."""
        subpackage = module.subpackage()
        if subpackage in self.exclude:
            return False
        if self.scope is None:
            return True
        return subpackage in self.scope

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield every violation in the module."""
        raise NotImplementedError

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
            hint=hint,
        )


def dotted_name(node: ast.expr) -> str | None:
    """Resolve ``a.b.c`` attribute chains to a dotted string.

    Returns ``None`` for chains not rooted at a plain name (calls,
    subscripts, ...), which no rule here needs to resolve.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
