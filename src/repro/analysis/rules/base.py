"""Rule base classes and small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker
    from repro.analysis.project import ModuleSummary, ProjectModel

__all__ = ["ProjectRule", "Rule", "dotted_name"]


class Rule:
    """One invariant check over a parsed module.

    Class attributes
    ----------------
    code / title:
        The ``RLxxx`` id and the short name shown in reports.
    scope:
        Subpackages of ``repro`` the rule applies to; ``None`` means
        the whole tree.
    exclude:
        Subpackages exempt even when ``scope`` is ``None`` (RL001
        exempts ``randkit`` itself this way).
    """

    code: ClassVar[str] = "RL000"
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    scope: ClassVar[tuple[str, ...] | None] = None
    exclude: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, module: SourceModule) -> bool:
        """Whether this rule runs over ``module`` at all."""
        subpackage = module.subpackage()
        if subpackage in self.exclude:
            return False
        if self.scope is None:
            return True
        return subpackage in self.scope

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield every violation in the module."""
        raise NotImplementedError

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
            hint=hint,
        )


class ProjectRule(Rule):
    """An invariant checked over the whole :class:`ProjectModel`.

    Project rules run as a second pass after every file has been
    summarised, so they can see import graphs, class hierarchies, and
    attribute dataflow across modules.  They never re-parse sources --
    everything they need lives in the (cacheable) module summaries.
    """

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Project rules contribute nothing to the per-file pass."""
        return iter(())

    def check_project(self, model: "ProjectModel") -> Iterator[Finding]:
        """Yield every violation visible in the whole-project model."""
        raise NotImplementedError

    def project_finding(
        self,
        module: "ModuleSummary",
        line: int,
        column: int,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a finding anchored at a summarised location."""
        return Finding(
            path=module.path,
            line=line,
            column=column,
            rule=self.code,
            message=message,
            hint=hint,
        )


def dotted_name(node: ast.expr) -> str | None:
    """Resolve ``a.b.c`` attribute chains to a dotted string.

    Returns ``None`` for chains not rooted at a plain name (calls,
    subscripts, ...), which no rule here needs to resolve.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
