"""RL010: file I/O happens only inside ``repro.persist``.

Durability is a subsystem, not a convenience: the persist layer owns
the atomic-rename recipe, the fsync points, the CRC framing, and the
fault-injection seam (:class:`~repro.persist.fsio.FileSystem`).  A
stray ``open()`` or ``Path.write_text`` elsewhere writes state the
recovery manager does not know about, cannot replay, and the fault
battery cannot reach -- exactly the silent-corruption path the typed
error taxonomy exists to prevent.  Code that needs durable state goes
through :class:`~repro.persist.checkpoint.CheckpointStore`; code that
needs a file handle takes a ``FileSystem`` argument.

Tests and benchmarks are exempt (fixtures and committed BENCH files
are not product state), as are ``repro.persist`` itself and
``repro.analysis``: the linter is a development tool whose inputs are
source files and whose only artefact is its own parse cache -- none
of it is engine state the recovery manager could ever replay.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule, dotted_name

__all__ = ["ConfinedFileIORule"]

_IO_CALLS = frozenset(
    {
        "open",
        "io.open",
        "os.open",
        "os.fdopen",
        "os.fsync",
        "os.fdatasync",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.truncate",
        "os.makedirs",
        "os.mkdir",
    }
)
#: ``Path``-style write methods, matched by attribute name (the AST
#: cannot resolve receiver types; no in-tree object shares these names).
_WRITE_ATTRIBUTES = frozenset({"write_text", "write_bytes"})
_OS_NAMES = frozenset(
    {
        "open",
        "fsync",
        "fdatasync",
        "fdopen",
        "replace",
        "rename",
        "remove",
        "unlink",
        "truncate",
        "makedirs",
        "mkdir",
    }
)
#: Directory roots outside the ``repro`` package that the rule skips.
_EXEMPT_ROOTS = frozenset({"tests", "benchmarks"})


class ConfinedFileIORule(Rule):
    """RL010: direct file I/O outside ``repro.persist``."""

    code = "RL010"
    title = "file I/O outside repro.persist"
    rationale = (
        "Durable state goes through the persist layer's atomic, "
        "fault-injectable, CRC-framed storage seam; a stray open() "
        "writes state recovery cannot replay."
    )
    scope = None
    exclude = ("persist", "analysis")

    def applies_to(self, module: SourceModule) -> bool:
        # Exempt roots are matched as path components rather than
        # ``parts[0]``: fixture trees and out-of-cwd invocations leave
        # absolute parts, but never place product code under a
        # ``tests``/``benchmarks`` directory.
        if _EXEMPT_ROOTS.intersection(module.parts):
            return False
        return super().applies_to(module)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        hint = (
            "route file access through repro.persist (CheckpointStore "
            "or a FileSystem argument)"
        )
        # ``import os as x`` would otherwise launder every os.* call
        # past the dotted-name match below.
        os_aliases = {
            alias.asname or alias.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Import)
            for alias in node.names
            if alias.name == "os"
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _IO_CALLS:
                    yield self.finding(
                        module, node, f"direct call to `{name}()`", hint
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in os_aliases
                    and node.func.attr in _OS_NAMES
                ):
                    yield self.finding(
                        module,
                        node,
                        f"direct call to `os.{node.func.attr}()` via "
                        f"alias `{node.func.value.id}`",
                        hint,
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _WRITE_ATTRIBUTES
                ):
                    yield self.finding(
                        module,
                        node,
                        f"direct call to `.{node.func.attr}()`",
                        hint,
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "os" and node.level == 0:
                    for alias in node.names:
                        if alias.name in _OS_NAMES:
                            yield self.finding(
                                module,
                                node,
                                f"`from os import {alias.name}` bypasses "
                                "the persist storage seam",
                                hint,
                            )
