"""RL013: every mutator invalidates the caches layered on its state.

PR 6 put two memo structures on the hot path: the columnar
``(values, counts)`` arrays memoized behind ``columnar_view()`` and
the relation/synopsis epochs that gate the ``QueryResultCache``.  The
paper's error bounds (Theorems 4, 6-8) are computed over the synopsis
*as mutated*; a mutator that forgets to reset ``_columnar`` or bump
its epoch serves answers computed over stale state, and only a test
that remembers that exact mutator would notice.

Two whole-class dataflow checks, run over the project model so
inherited mutators and cross-module base classes are covered:

A.  For any class defining ``columnar_view``: the memo is whatever
    ``columnar_view`` writes on ``self``; the backing stores are
    whatever it (transitively, through self-calls) reads.  Every other
    instance method whose transitive self-writes touch a backing store
    must also write the memo.  The traversal does not follow calls
    *into* ``columnar_view`` -- materialising the view inside a
    mutator does not excuse skipping the reset.

B.  For any class whose ``__init__`` (possibly inherited) assigns an
    epoch attribute (name containing ``epoch``): methods that
    transitively bump an epoch are the sanctioned mutators; the union
    of everything *else* they write is the epoch-guarded state.  Any
    non-bumping method that writes that state mutates cached-over
    data without invalidating the cache.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectModel, ResolvedMethod
from repro.analysis.rules.base import ProjectRule

__all__ = ["InvalidationCompletenessRule"]


class InvalidationCompletenessRule(ProjectRule):
    """RL013: a mutator skips cache invalidation (memo reset / epoch bump)."""

    code = "RL013"
    title = "mutator misses cache invalidation"
    rationale = (
        "Memoized columnar views and epoch-gated query caches serve "
        "stale approximate answers when any mutation path forgets to "
        "reset/bump them."
    )
    scope = None

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        seen: set[tuple[str, str, str]] = set()
        for key, (_cls, module) in sorted(model.classes.items()):
            if not module.in_repro():
                continue
            yield from self._check_columnar(model, key, seen)
            yield from self._check_epochs(model, key, seen)

    # -- check A: memoized columnar_view -------------------------------

    def _check_columnar(
        self, model: ProjectModel, key: str, seen: set
    ) -> Iterator[Finding]:
        table, _resolved = model.resolved_methods(key)
        view = table.get("columnar_view")
        if view is None:
            return
        memo = set(view.summary.writes)
        if not memo:
            return
        method_like = set(table)
        backing = (
            model.transitive(table, "columnar_view", "reads")
            - memo
            - method_like
        )
        backing -= model.classes[view.owner][0].class_assigns
        if not backing:
            return
        for name, resolved in sorted(table.items()):
            if name in ("__init__", "columnar_view"):
                continue
            if resolved.summary.kind not in ("instance", "property"):
                continue
            writes = model.transitive(
                table, name, "writes", exclude=frozenset({"columnar_view"})
            )
            touched = writes & backing
            if touched and not (writes & memo):
                dedupe = (resolved.owner, name, "columnar")
                if dedupe in seen:
                    continue
                seen.add(dedupe)
                yield self._method_finding(
                    resolved,
                    f"`{self._owner_name(resolved)}.{name}` writes "
                    "columnar backing store(s) "
                    + ", ".join(sorted(touched))
                    + " without resetting the memoized view "
                    + ", ".join(sorted(memo)),
                    "invalidate the memo (e.g. `self._columnar = None`) "
                    "in every method that mutates the backing stores",
                )

    # -- check B: epoch-gated mutation ---------------------------------

    def _check_epochs(
        self, model: ProjectModel, key: str, seen: set
    ) -> Iterator[Finding]:
        table, _resolved = model.resolved_methods(key)
        init = table.get("__init__")
        if init is None:
            return
        epoch_attrs = {
            attr for attr in init.summary.writes if "epoch" in attr.lower()
        }
        if not epoch_attrs:
            return
        bumpers: dict[str, set[str]] = {}
        for name, resolved in table.items():
            if resolved.summary.kind != "instance" or name == "__init__":
                continue
            writes = model.transitive(table, name, "writes")
            if writes & epoch_attrs:
                bumpers[name] = writes
        guarded: set[str] = set()
        for writes in bumpers.values():
            guarded |= writes - epoch_attrs
        if not guarded:
            return
        for name, resolved in sorted(table.items()):
            if name in bumpers or name == "__init__":
                continue
            if resolved.summary.kind != "instance":
                continue
            writes = model.transitive(table, name, "writes")
            touched = writes & guarded
            if touched:
                dedupe = (resolved.owner, name, "epoch")
                if dedupe in seen:
                    continue
                seen.add(dedupe)
                yield self._method_finding(
                    resolved,
                    f"`{self._owner_name(resolved)}.{name}` mutates "
                    "epoch-guarded state "
                    + ", ".join(sorted(touched))
                    + " without bumping "
                    + ", ".join(sorted(epoch_attrs)),
                    "bump the epoch in every mutator so cached query "
                    "results over this state are invalidated",
                )

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _owner_name(resolved: ResolvedMethod) -> str:
        return resolved.owner.rpartition(".")[2]

    def _method_finding(
        self, resolved: ResolvedMethod, message: str, hint: str
    ) -> Finding:
        return self.project_finding(
            resolved.module,
            resolved.summary.line,
            resolved.summary.column,
            message,
            hint,
        )
