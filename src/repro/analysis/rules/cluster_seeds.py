"""RL016: cross-process randomness is derived, never shipped.

The cluster coordinator seeds worker processes.  The only sanctioned
way to do that is :func:`repro.randkit.spawn_seeds`: derive plain
integer seeds from the coordinator's master seed and send *those*
across the process boundary.  Two failure shapes this rule catches in
``repro.cluster``:

* **RNG objects in the coordinator.**  A ``ReproRandom`` /
  ``numpy_generator`` / stdlib ``Random`` constructed in cluster code
  is an object someone will eventually pickle into a worker config or
  ``Process`` argument -- and a pickled generator forks its stream,
  so two processes replay identical coins (breaking Theorem 2's
  independent-admission assumption across shards).
* **Ad-hoc seed arithmetic.**  ``seed + shard_index`` style derivation
  produces overlapping streams for nearby seeds (the classic
  correlated-substream bug); ``spawn_seeds`` exists precisely so
  derived seeds are independent draws from a master stream.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule, dotted_name

__all__ = ["ClusterSeedDerivationRule"]

#: Constructors that yield a live RNG object.
_RNG_CONSTRUCTORS = frozenset(
    {
        "ReproRandom",
        "numpy_generator",
        "default_rng",
        "Random",
        "SystemRandom",
        "RandomState",
    }
)

#: Keyword arguments that carry a seed across an API boundary.
_SEED_KEYWORDS = frozenset(
    {"seed", "recovery_seed", "merge_seed", "master_seed"}
)


class ClusterSeedDerivationRule(Rule):
    """RL016: cluster seeds come from ``spawn_seeds``, not arithmetic."""

    code = "RL016"
    title = "cluster worker seeds must derive via randkit.spawn_seeds"
    rationale = (
        "Per-shard admission coins must be mutually independent for "
        "the Theorem-2/5 merges to be lossless; pickled RNG objects "
        "fork streams and seed arithmetic correlates them, while "
        "spawn_seeds draws independent child seeds from one master."
    )
    scope = ("cluster",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._constructor_name(node.func)
            if name is not None:
                yield self.finding(
                    module,
                    node,
                    f"RNG object `{name}(...)` constructed in cluster "
                    "code",
                    "derive integer seeds with randkit.spawn_seeds and "
                    "send those; construct RNGs inside the worker",
                )
            for keyword in node.keywords:
                if keyword.arg not in _SEED_KEYWORDS:
                    continue
                if isinstance(keyword.value, (ast.BinOp, ast.UnaryOp)):
                    yield self.finding(
                        module,
                        keyword.value,
                        f"ad-hoc arithmetic in `{keyword.arg}=` "
                        "(correlated substreams)",
                        "derive the seed with randkit.spawn_seeds "
                        "from the master seed",
                    )

    @staticmethod
    def _constructor_name(func: ast.expr) -> str | None:
        if isinstance(func, ast.Name) and func.id in _RNG_CONSTRUCTORS:
            return func.id
        if isinstance(func, ast.Attribute):
            chain = dotted_name(func)
            if chain is not None:
                tail = chain.rsplit(".", 1)[-1]
                if tail in _RNG_CONSTRUCTORS:
                    return chain
        return None
