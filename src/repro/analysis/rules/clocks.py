"""RL009: monotonic clocks are read only inside ``repro.obs``.

The observability layer injects time as a dependency: tracers, load
observers, and benchmarks receive a ``Clock`` callable, and
:mod:`repro.obs.clock` is the one module allowed to call
``time.monotonic`` / ``time.perf_counter`` directly.  Everywhere else a
direct clock read hides a dependency that breaks test fakes (a
``FakeClock`` cannot intercept it) and smuggles wall-clock state past
the RL005 determinism boundary.  Code that needs durations imports
``monotonic`` / ``perf_counter`` from ``repro.obs.clock`` or accepts a
clock argument.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule, dotted_name

__all__ = ["InjectedClockRule"]

_CLOCK_CALLS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)
_CLOCK_NAMES = frozenset(
    {"monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)


class InjectedClockRule(Rule):
    """RL009: direct monotonic-clock read outside ``repro.obs``."""

    code = "RL009"
    title = "direct monotonic-clock read outside repro.obs"
    rationale = (
        "Timing is an injected dependency: only repro.obs.clock may "
        "read the process clocks, so tests can substitute a FakeClock "
        "and timed code stays deterministic under test."
    )
    scope = None
    exclude = ("obs",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        hint = (
            "import monotonic/perf_counter from repro.obs.clock, or "
            "accept a Clock callable argument"
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _CLOCK_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"direct call to `{name}()`",
                        hint,
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in _CLOCK_NAMES:
                            yield self.finding(
                                module,
                                node,
                                f"`from time import {alias.name}` "
                                "bypasses the injected clock",
                                hint,
                            )
