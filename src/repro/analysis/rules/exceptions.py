"""RL008: the engine neither bare-excepts nor swallows exceptions.

The synopsis invariants are guarded by :class:`SynopsisError` raises in
``check_invariants`` and the maintenance paths.  A bare ``except:`` (or
an ``except ...: pass``) in the engine layers can eat exactly those
errors, turning an invariant violation into silently-wrong approximate
answers -- the worst failure mode an AQP system has, because nothing
looks broken.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule

__all__ = ["SwallowedExceptionRule"]


def _is_swallowed(handler: ast.ExceptHandler) -> bool:
    """A handler whose whole body is ``pass``/``...`` discards the error."""
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or bare `...`
        return False
    return True


class SwallowedExceptionRule(Rule):
    """RL008: bare ``except:`` or exception-swallowing handler."""

    code = "RL008"
    title = "bare or swallowed exception"
    rationale = (
        "Invariant violations surface as exceptions; eating them "
        "converts detectable corruption into wrong query answers."
    )
    scope = ("core", "engine", "synopses")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    yield self.finding(
                        module,
                        handler,
                        "bare `except:` catches everything, including "
                        "SynopsisError and KeyboardInterrupt",
                        "catch the narrowest exception type the block "
                        "can actually raise",
                    )
                elif _is_swallowed(handler):
                    yield self.finding(
                        module,
                        handler,
                        "exception caught and discarded",
                        "handle it, log it, or let it propagate; a "
                        "deliberate discard needs a line suppression "
                        "with justification",
                    )
