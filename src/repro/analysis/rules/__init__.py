"""The rule registry: one instance of every RL rule."""

from __future__ import annotations

from repro.analysis.rules.annotations import PublicAnnotationsRule
from repro.analysis.rules.base import ProjectRule, Rule
from repro.analysis.rules.clocks import InjectedClockRule
from repro.analysis.rules.cluster_seeds import ClusterSeedDerivationRule
from repro.analysis.rules.determinism import WallClockRule
from repro.analysis.rules.exceptions import SwallowedExceptionRule
from repro.analysis.rules.floats import FloatEqualityRule
from repro.analysis.rules.invalidation import InvalidationCompletenessRule
from repro.analysis.rules.io import ConfinedFileIORule
from repro.analysis.rules.loops import AnswerPathLoopRule
from repro.analysis.rules.metric_names import MetricNameRegistryRule
from repro.analysis.rules.mutation import DictMutationRule
from repro.analysis.rules.randomness import (
    LedgerRequiredRule,
    RawRandomnessRule,
)
from repro.analysis.rules.snapshot_parity import SnapshotHierarchyParityRule
from repro.analysis.rules.snapshots import SnapshotRoundTripRule
from repro.analysis.rules.wal import PerRowWalAppendRule

__all__ = ["ALL_PROJECT_RULES", "ALL_RULES", "rule_catalogue"]

ALL_RULES: tuple[Rule, ...] = (
    RawRandomnessRule(),
    LedgerRequiredRule(),
    FloatEqualityRule(),
    DictMutationRule(),
    WallClockRule(),
    PublicAnnotationsRule(),
    SnapshotRoundTripRule(),
    SwallowedExceptionRule(),
    InjectedClockRule(),
    ConfinedFileIORule(),
    PerRowWalAppendRule(),
    AnswerPathLoopRule(),
    ClusterSeedDerivationRule(),
)

#: The second pass: rules that need the whole-project model.
ALL_PROJECT_RULES: tuple[ProjectRule, ...] = (
    InvalidationCompletenessRule(),
    MetricNameRegistryRule(),
    SnapshotHierarchyParityRule(),
)


def rule_catalogue() -> list[dict[str, str]]:
    """Code/title/rationale/scope of every rule, for ``--list-rules``."""
    return [
        {
            "code": rule.code,
            "title": rule.title,
            "rationale": rule.rationale,
            "scope": (
                "repro (except " + ", ".join(rule.exclude) + ")"
                if rule.scope is None and rule.exclude
                else ", ".join(rule.scope) if rule.scope else "repro"
            ),
        }
        for rule in (*ALL_RULES, *ALL_PROJECT_RULES)
    ]
