"""RL004: no mutation of a dict while iterating over it.

The synopsis sample dicts (``{value: count}``) are mutated by eviction
sweeps.  Python raises ``RuntimeError`` when a dict changes size during
iteration -- but only when it changes *size*, so an eviction path that
usually rewrites counts in place and only occasionally deletes an entry
passes tests and explodes in production.  The maintenance code must
iterate over a materialised copy (``list(counts)``) before mutating, as
the eviction sweeps in :mod:`repro.core` do.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.module import SourceModule
from repro.analysis.rules.base import Rule

__all__ = ["DictMutationRule"]

_VIEW_METHODS = frozenset({"items", "keys", "values"})
_MUTATING_METHODS = frozenset(
    {"clear", "pop", "popitem", "setdefault", "update"}
)


def _iteration_target(iterable: ast.expr) -> ast.expr | None:
    """The dict-like expression a ``for`` loop iterates directly.

    ``for v in d`` and ``for k, c in d.items()`` both iterate ``d``
    live; ``for v in list(d)`` (or ``sorted``/``tuple``/``set``) takes
    a snapshot and is safe.
    """
    if isinstance(iterable, ast.Call):
        func = iterable.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _VIEW_METHODS
            and not iterable.args
        ):
            return func.value
        return None
    if isinstance(iterable, (ast.Name, ast.Attribute)):
        return iterable
    return None


class DictMutationRule(Rule):
    """RL004: dict mutated inside iteration over itself."""

    code = "RL004"
    title = "dict mutated during iteration"
    rationale = (
        "Eviction sweeps that delete entries mid-iteration fail only "
        "when a deletion actually happens; iterate a list(...) copy."
    )
    scope = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            target = _iteration_target(loop.iter)
            if target is None:
                continue
            signature = ast.dump(target)
            for statement in loop.body:
                for node in ast.walk(statement):
                    mutation = self._mutates(node, signature)
                    if mutation is not None:
                        yield self.finding(
                            module,
                            mutation,
                            "iterated dict is mutated inside the loop",
                            "iterate over list(...) / a snapshot of the "
                            "dict, then mutate",
                        )

    @staticmethod
    def _mutates(node: ast.AST, signature: str) -> ast.AST | None:
        """The offending node if ``node`` mutates the iterated object."""

        def is_target(expr: ast.expr) -> bool:
            return ast.dump(expr) == signature

        if isinstance(node, ast.Assign):
            for assign_target in node.targets:
                if isinstance(assign_target, ast.Subscript) and is_target(
                    assign_target.value
                ):
                    return node
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript) and is_target(
                node.target.value
            ):
                return node
        elif isinstance(node, ast.Delete):
            for deleted in node.targets:
                if isinstance(deleted, ast.Subscript) and is_target(
                    deleted.value
                ):
                    return node
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and is_target(func.value)
            ):
                return node
        return None
