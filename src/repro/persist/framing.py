"""CRC-framed JSON-lines records: the WAL and checkpoint codec.

Every durable record is one line::

    <length:08x> <crc32:08x> <hcrc32:08x> <payload JSON>\\n

The fixed 27-byte ASCII header carries the payload length, the
payload's CRC-32, and a CRC-32 of the two preceding fields, so the
reader can tell the two crash signatures apart:

* A **torn write** (crash mid-append, truncated file) leaves a strict
  *prefix* of a valid frame -- an incomplete header, fewer payload
  bytes than the header promises, or a missing terminator at the end
  of the data.  :func:`decode_frames` stops there and reports the spot
  as a :class:`TornTail` for the caller to judge (tolerable at the
  tail of the last WAL segment, fatal anywhere else).
* **Corruption** (flipped bytes) produces a state a torn write cannot:
  a complete frame whose CRC fails, a complete-but-malformed header
  (torn writes only leave *prefixes* of valid frames), a complete
  header whose own checksum fails, or a wrong terminator byte.  All of
  these raise :class:`~repro.persist.errors.ChecksumMismatch`
  immediately.

The header checksum exists for one specific attack on the triage: a
flipped bit inside the *length* field would otherwise make the frame
appear to run past the end of the file and read as a torn tail --
which tolerant recovery would then silently truncate away along with
every acknowledged record behind it.  With the header self-checked, a
flipped length is plain corruption and tail-dropping only ever drops
the genuinely unfinished final record.

The payload is compact JSON with sorted keys, so encoding is
deterministic and the frame round-trips bit-exactly.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.persist.errors import ChecksumMismatch

__all__ = [
    "HEADER_LENGTH",
    "TornTail",
    "decode_frames",
    "encode_frame",
]

# "%08x %08x %08x " -- three hex words and their separators.
HEADER_LENGTH = 27

#: How many leading header bytes the header checksum covers (the
#: length and payload-CRC fields, separators included).
_CHECKED_PREFIX = 18

_HEX_DIGITS = frozenset(b"0123456789abcdef")


@dataclass(frozen=True)
class TornTail:
    """An incomplete frame: byte offset where the data stops making sense."""

    offset: int
    reason: str


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One record as a CRC-framed JSON line."""
    body = json.dumps(
        dict(payload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    fields = b"%08x %08x " % (len(body), zlib.crc32(body))
    header = fields + b"%08x " % zlib.crc32(fields)
    return header + body + b"\n"


def _header_is_prefix_shaped(fragment: bytes) -> bool:
    """Whether a partial header could still grow into a valid one."""
    for index, byte in enumerate(fragment):
        expected_space = index in (8, 17, 26)
        if expected_space:
            if byte != ord(" "):
                return False
        elif byte not in _HEX_DIGITS:
            return False
    return True


def decode_frames(
    data: bytes, *, source: str
) -> tuple[list[dict[str, Any]], TornTail | None]:
    """Decode every complete frame; report where a torn tail begins.

    Returns ``(payloads, torn)`` where ``torn`` is ``None`` when the
    data ends exactly on a frame boundary.  Raises
    :class:`ChecksumMismatch` for a complete frame whose CRC fails --
    corruption retrying or tail-dropping cannot fix.
    """
    payloads: list[dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset < total:
        header = data[offset : offset + HEADER_LENGTH]
        if len(header) < HEADER_LENGTH:
            # The file ends inside a header.  A torn write leaves a
            # prefix of a valid header; anything else is corruption.
            if _header_is_prefix_shaped(header):
                return payloads, TornTail(offset, "incomplete header")
            raise ChecksumMismatch(
                source, offset, "malformed partial header at end of data"
            )
        if not _header_is_prefix_shaped(header):
            # A complete 27-byte header was written; a malformed one
            # can only come from flipped bytes, never a torn write.
            raise ChecksumMismatch(source, offset, "malformed frame header")
        declared_header_crc = int(header[18:26], 16)
        actual_header_crc = zlib.crc32(header[:_CHECKED_PREFIX])
        if actual_header_crc != declared_header_crc:
            # The length/CRC fields do not hash to the header's own
            # checksum: a flipped length would otherwise masquerade as
            # a torn tail and get truncated away with everything
            # behind it.
            raise ChecksumMismatch(
                source,
                offset,
                f"header says {declared_header_crc:#010x}, its fields "
                f"hash to {actual_header_crc:#010x}",
            )
        length = int(header[0:8], 16)
        expected_crc = int(header[9:17], 16)
        body_start = offset + HEADER_LENGTH
        body_end = body_start + length
        if body_end + 1 > total:
            return payloads, TornTail(offset, "incomplete payload")
        body = data[body_start:body_end]
        actual_crc = zlib.crc32(body)
        if actual_crc != expected_crc:
            raise ChecksumMismatch(
                source,
                offset,
                f"frame says {expected_crc:#010x}, payload hashes to "
                f"{actual_crc:#010x}",
            )
        if data[body_end : body_end + 1] != b"\n":
            raise ChecksumMismatch(
                source, offset, "corrupt record terminator"
            )
        payloads.append(json.loads(body.decode("utf-8")))
        offset = body_end + 1
    return payloads, None
