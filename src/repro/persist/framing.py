"""CRC-framed JSON-lines records: the WAL and checkpoint codec.

Every durable record is one line::

    <length:08x> <crc32:08x> <payload JSON>\\n

The fixed 18-byte ASCII header carries the payload length and its
CRC-32, so the reader can tell the two crash signatures apart:

* A **torn write** (crash mid-append, truncated file) leaves a strict
  *prefix* of a valid frame -- an incomplete header, fewer payload
  bytes than the header promises, or a missing terminator at the end
  of the data.  :func:`decode_frames` stops there and reports the spot
  as a :class:`TornTail` for the caller to judge (tolerable at the
  tail of the last WAL segment, fatal anywhere else).
* **Corruption** (flipped bytes) produces a state a torn write cannot:
  a complete frame whose CRC fails, a complete-but-malformed header
  (torn writes only leave *prefixes* of valid frames), or a wrong
  terminator byte with further data behind it.  All of these raise
  :class:`~repro.persist.errors.ChecksumMismatch` immediately.

One genuinely ambiguous case remains: a corrupted length field that
still parses as hex makes the frame appear to run past the end of the
file, which reads as a torn tail.  The WAL layer therefore never
*silently* applies tail-dropping -- the drop point is reported on the
recovery result (see docs/recovery.md).

The payload is compact JSON with sorted keys, so encoding is
deterministic and the frame round-trips bit-exactly.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.persist.errors import ChecksumMismatch

__all__ = [
    "HEADER_LENGTH",
    "TornTail",
    "decode_frames",
    "encode_frame",
]

# "%08x %08x " -- two hex words and their separators.
HEADER_LENGTH = 18

_HEX_DIGITS = frozenset(b"0123456789abcdef")


@dataclass(frozen=True)
class TornTail:
    """An incomplete frame: byte offset where the data stops making sense."""

    offset: int
    reason: str


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One record as a CRC-framed JSON line."""
    body = json.dumps(
        dict(payload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    header = b"%08x %08x " % (len(body), zlib.crc32(body))
    return header + body + b"\n"


def _header_is_prefix_shaped(fragment: bytes) -> bool:
    """Whether a partial header could still grow into a valid one."""
    for index, byte in enumerate(fragment):
        expected_space = index in (8, 17)
        if expected_space:
            if byte != ord(" "):
                return False
        elif byte not in _HEX_DIGITS:
            return False
    return True


def decode_frames(
    data: bytes, *, source: str
) -> tuple[list[dict[str, Any]], TornTail | None]:
    """Decode every complete frame; report where a torn tail begins.

    Returns ``(payloads, torn)`` where ``torn`` is ``None`` when the
    data ends exactly on a frame boundary.  Raises
    :class:`ChecksumMismatch` for a complete frame whose CRC fails --
    corruption retrying or tail-dropping cannot fix.
    """
    payloads: list[dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset < total:
        header = data[offset : offset + HEADER_LENGTH]
        if len(header) < HEADER_LENGTH:
            # The file ends inside a header.  A torn write leaves a
            # prefix of a valid header; anything else is corruption.
            if _header_is_prefix_shaped(header):
                return payloads, TornTail(offset, "incomplete header")
            raise ChecksumMismatch(
                source, offset, "malformed partial header at end of data"
            )
        if not _header_is_prefix_shaped(header):
            # A complete 18-byte header was written; a malformed one
            # can only come from flipped bytes, never a torn write.
            raise ChecksumMismatch(source, offset, "malformed frame header")
        length = int(header[0:8], 16)
        expected_crc = int(header[9:17], 16)
        body_start = offset + HEADER_LENGTH
        body_end = body_start + length
        if body_end + 1 > total:
            return payloads, TornTail(offset, "incomplete payload")
        body = data[body_start:body_end]
        actual_crc = zlib.crc32(body)
        if actual_crc != expected_crc:
            raise ChecksumMismatch(
                source,
                offset,
                f"frame says {expected_crc:#010x}, payload hashes to "
                f"{actual_crc:#010x}",
            )
        if data[body_end : body_end + 1] != b"\n":
            raise ChecksumMismatch(
                source, offset, "corrupt record terminator"
            )
        payloads.append(json.loads(body.decode("utf-8")))
        offset = body_end + 1
    return payloads, None
