"""CRC-framed JSON-lines records: the WAL and checkpoint codec.

Every durable record is one line::

    <length:08x> <crc32:08x> <hcrc32:08x> <payload JSON>\\n

The fixed 27-byte ASCII header carries the payload length, the
payload's CRC-32, and a CRC-32 of the two preceding fields, so the
reader can tell the two crash signatures apart:

* A **torn write** (crash mid-append, truncated file) leaves a strict
  *prefix* of a valid frame -- an incomplete header, fewer payload
  bytes than the header promises, or a missing terminator at the end
  of the data.  :func:`decode_frames` stops there and reports the spot
  as a :class:`TornTail` for the caller to judge (tolerable at the
  tail of the last WAL segment, fatal anywhere else).
* **Corruption** (flipped bytes) produces a state a torn write cannot:
  a complete frame whose CRC fails, a complete-but-malformed header
  (torn writes only leave *prefixes* of valid frames), a complete
  header whose own checksum fails, or a wrong terminator byte.  All of
  these raise :class:`~repro.persist.errors.ChecksumMismatch`
  immediately.

The header checksum exists for one specific attack on the triage: a
flipped bit inside the *length* field would otherwise make the frame
appear to run past the end of the file and read as a torn tail --
which tolerant recovery would then silently truncate away along with
every acknowledged record behind it.  With the header self-checked, a
flipped length is plain corruption and tail-dropping only ever drops
the genuinely unfinished final record.

The payload is compact JSON with sorted keys, so encoding is
deterministic and the frame round-trips bit-exactly.

Two batch-oriented entry points amortise the per-frame overhead:
:func:`encode_frames` encodes many payloads into one contiguous buffer
(one allocation, one downstream ``write``), and :func:`iter_frames`
decodes a binary handle *incrementally* -- frames are parsed out of a
bounded read buffer, so replaying a large WAL segment never
materialises the whole file in memory.  :func:`decode_frames` is kept
as a thin wrapper over the streaming decoder for whole-buffer callers.
"""

from __future__ import annotations

import io
import json
import zlib
from dataclasses import dataclass
from typing import IO, Any, Iterable, Iterator, Mapping

from repro.persist.errors import ChecksumMismatch

__all__ = [
    "FrameCursor",
    "HEADER_LENGTH",
    "TornTail",
    "decode_frames",
    "encode_frame",
    "encode_frames",
    "iter_frames",
]

# "%08x %08x %08x " -- three hex words and their separators.
HEADER_LENGTH = 27

#: How many leading header bytes the header checksum covers (the
#: length and payload-CRC fields, separators included).
_CHECKED_PREFIX = 18

_HEX_DIGITS = frozenset(b"0123456789abcdef")


@dataclass(frozen=True)
class TornTail:
    """An incomplete frame: byte offset where the data stops making sense."""

    offset: int
    reason: str


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One record as a CRC-framed JSON line."""
    body = json.dumps(
        dict(payload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    fields = b"%08x %08x " % (len(body), zlib.crc32(body))
    header = fields + b"%08x " % zlib.crc32(fields)
    return header + body + b"\n"


def encode_frames(payloads: Iterable[Mapping[str, Any]]) -> bytes:
    """Many records as one contiguous buffer of CRC-framed lines.

    Byte-for-byte identical to concatenating :func:`encode_frame`
    outputs, but the JSON/CRC/format machinery is amortised across the
    batch and the result is a single buffer, so a caller can hand the
    whole group to one ``write`` (the group-commit fast path).
    """
    dumps = json.dumps
    crc32 = zlib.crc32
    parts: list[bytes] = []
    for payload in payloads:
        body = dumps(
            dict(payload), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        fields = b"%08x %08x " % (len(body), crc32(body))
        parts.append(fields)
        parts.append(b"%08x " % crc32(fields))
        parts.append(body)
        parts.append(b"\n")
    return b"".join(parts)


def _header_is_prefix_shaped(fragment: bytes) -> bool:
    """Whether a partial header could still grow into a valid one."""
    for index, byte in enumerate(fragment):
        expected_space = index in (8, 17, 26)
        if expected_space:
            if byte != ord(" "):
                return False
        elif byte not in _HEX_DIGITS:
            return False
    return True


#: How many bytes :class:`FrameCursor` requests per read.
_CHUNK_SIZE = 1 << 16


class FrameCursor:
    """Streaming frame decoder over a binary handle.

    Iterate to receive payload dicts one at a time; the read buffer
    holds at most one partial frame plus one read chunk, so decoding a
    segment costs memory proportional to its largest frame, not its
    file size.  After iteration finishes, :attr:`torn` reports whether
    (and where) the data stopped inside an unfinished frame -- the same
    triage :func:`decode_frames` performs, with the same
    :class:`ChecksumMismatch` raises for corruption.
    """

    def __init__(
        self, handle: IO[bytes], *, source: str, chunk_size: int = _CHUNK_SIZE
    ) -> None:
        self._handle = handle
        self._source = source
        self._chunk_size = chunk_size
        self._buffer = bytearray()
        self._offset = 0  # absolute offset of the buffer's first byte
        self._exhausted = False
        #: Where the data ends mid-frame, once iteration has finished.
        self.torn: TornTail | None = None

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self

    def _fill(self, needed: int) -> bool:
        """Grow the buffer to ``needed`` bytes; False at end of data."""
        while not self._exhausted and len(self._buffer) < needed:
            chunk = self._handle.read(self._chunk_size)
            if not chunk:
                self._exhausted = True
                break
            self._buffer.extend(chunk)
        return len(self._buffer) >= needed

    def __next__(self) -> dict[str, Any]:
        buffer = self._buffer
        offset = self._offset
        source = self._source
        if not self._fill(HEADER_LENGTH):
            if not buffer:
                raise StopIteration
            # The data ends inside a header.  A torn write leaves a
            # prefix of a valid header; anything else is corruption.
            if _header_is_prefix_shaped(bytes(buffer)):
                self.torn = TornTail(offset, "incomplete header")
                raise StopIteration
            raise ChecksumMismatch(
                source, offset, "malformed partial header at end of data"
            )
        header = bytes(buffer[:HEADER_LENGTH])
        if not _header_is_prefix_shaped(header):
            # A complete 27-byte header was written; a malformed one
            # can only come from flipped bytes, never a torn write.
            raise ChecksumMismatch(source, offset, "malformed frame header")
        declared_header_crc = int(header[18:26], 16)
        actual_header_crc = zlib.crc32(header[:_CHECKED_PREFIX])
        if actual_header_crc != declared_header_crc:
            # The length/CRC fields do not hash to the header's own
            # checksum: a flipped length would otherwise masquerade as
            # a torn tail and get truncated away with everything
            # behind it.
            raise ChecksumMismatch(
                source,
                offset,
                f"header says {declared_header_crc:#010x}, its fields "
                f"hash to {actual_header_crc:#010x}",
            )
        length = int(header[0:8], 16)
        expected_crc = int(header[9:17], 16)
        if not self._fill(HEADER_LENGTH + length + 1):
            self.torn = TornTail(offset, "incomplete payload")
            raise StopIteration
        body = bytes(buffer[HEADER_LENGTH : HEADER_LENGTH + length])
        actual_crc = zlib.crc32(body)
        if actual_crc != expected_crc:
            raise ChecksumMismatch(
                source,
                offset,
                f"frame says {expected_crc:#010x}, payload hashes to "
                f"{actual_crc:#010x}",
            )
        terminator = HEADER_LENGTH + length
        if buffer[terminator : terminator + 1] != b"\n":
            raise ChecksumMismatch(
                source, offset, "corrupt record terminator"
            )
        del buffer[: terminator + 1]
        self._offset = offset + terminator + 1
        return json.loads(body.decode("utf-8"))


def iter_frames(
    handle: IO[bytes], *, source: str, chunk_size: int = _CHUNK_SIZE
) -> FrameCursor:
    """Stream-decode frames from a binary handle.

    Returns a :class:`FrameCursor`: iterate it for the payloads, then
    read its :attr:`~FrameCursor.torn` attribute to learn whether the
    data ended inside an unfinished frame.  Corruption raises
    :class:`ChecksumMismatch` exactly as :func:`decode_frames` does.
    """
    return FrameCursor(handle, source=source, chunk_size=chunk_size)


def decode_frames(
    data: bytes, *, source: str
) -> tuple[list[dict[str, Any]], TornTail | None]:
    """Decode every complete frame; report where a torn tail begins.

    Returns ``(payloads, torn)`` where ``torn`` is ``None`` when the
    data ends exactly on a frame boundary.  Raises
    :class:`ChecksumMismatch` for a complete frame whose CRC fails --
    corruption retrying or tail-dropping cannot fix.  A thin wrapper
    over :func:`iter_frames` for callers that already hold the whole
    buffer.
    """
    cursor = iter_frames(io.BytesIO(data), source=source)
    payloads = list(cursor)
    return payloads, cursor.torn
