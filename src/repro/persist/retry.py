"""Retry with exponential backoff for transient storage faults.

Only :class:`~repro.persist.errors.TransientIOError` is retried --
corruption errors are deterministic and retrying them would just
repeat the failure.  The backoff *sleep is injected*: the default is a
no-op (tests stay instant and deterministic), production callers pass
``time.sleep``.  Delays are computed deterministically
(``base_delay * multiplier ** attempt``), never drawn from a clock or
an RNG, so a retried run is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.persist.errors import TransientIOError

__all__ = ["RetryPolicy"]

T = TypeVar("T")


def _no_sleep(_delay: float) -> None:
    return None


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient fault, and how to back off.

    Parameters
    ----------
    attempts:
        Total tries including the first (so ``attempts=1`` never
        retries).
    base_delay / multiplier:
        The backoff schedule: try *k* (0-based) sleeps
        ``base_delay * multiplier ** k`` before retrying.
    sleep:
        The injected sleep callable; defaults to a no-op so tests are
        instant.  Pass ``time.sleep`` in production.
    """

    attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    sleep: Callable[[float], None] = field(default=_no_sleep)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")

    def call(self, operation: Callable[..., T], /, *args: object) -> T:
        """Run ``operation(*args)``, retrying transient faults with backoff.

        Re-raises the last :class:`TransientIOError` when every
        attempt fails; any other exception propagates immediately.
        Positional ``args`` are passed through so hot paths can hand a
        pre-bound callable plus its payload instead of allocating a
        fresh closure per call.
        """
        delay = self.base_delay
        for attempt in range(self.attempts):
            try:
                return operation(*args)
            except TransientIOError:
                if attempt == self.attempts - 1:
                    raise
                self.sleep(delay)
                delay *= self.multiplier
        raise AssertionError("unreachable")  # pragma: no cover
