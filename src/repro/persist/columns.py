"""Columnar payload codec for batch op-records.

A batch WAL record carries a whole load batch as columns rather than
one framed record per row: per-row records repeat the envelope keys
(``kind``/``sequence``/``relation``) and frame overhead for every row,
while the columnar form pays them once per batch and stores each
attribute as a single dtype-tagged array.  The encoding is JSON-able
(the frame codec requires it) and *typed per column*, so replay can
rebuild the exact ``np.ndarray`` dtype the live side handed to
``load_batch`` and drive the vectorized ingest paths
(``Relation.insert_batch``, synopsis ``insert_array``) instead of a
row loop.

Column kinds:

* ``"int"`` -- any integer dtype; decoded as ``int64`` (the dtype
  every in-tree batch path normalises to).
* ``"float"`` -- floating dtypes; decoded as ``float64``.
* ``"mixed"`` -- anything else, stored via ``tolist()`` and decoded as
  an object array, preserving the native Python values per-row
  inserts would have stored.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

__all__ = ["decode_columns", "encode_columns"]

_INT_KINDS = "iu"


def encode_columns(
    columns: Mapping[str, np.ndarray],
) -> dict[str, dict[str, Any]]:
    """Encode equal-length attribute arrays as JSON-able tagged columns."""
    encoded: dict[str, dict[str, Any]] = {}
    length: int | None = None
    for name, values in columns.items():
        array = np.asarray(values)
        if length is None:
            length = len(array)
        elif len(array) != length:
            raise ValueError(
                f"column {name!r} has {len(array)} values, expected "
                f"{length}"
            )
        if array.dtype.kind in _INT_KINDS:
            kind = "int"
        elif array.dtype.kind == "f":
            kind = "float"
        else:
            kind = "mixed"
        encoded[str(name)] = {"kind": kind, "values": array.tolist()}
    return encoded


def decode_columns(
    payload: Mapping[str, Mapping[str, Any]],
) -> dict[str, np.ndarray]:
    """Rebuild :func:`encode_columns` output as numpy arrays.

    Raises ``ValueError`` for unknown column kinds or ragged lengths --
    the caller (WAL read-back or oplog import) wraps that in its typed
    error.
    """
    decoded: dict[str, np.ndarray] = {}
    length: int | None = None
    for name, column in payload.items():
        kind = column.get("kind")
        values = column.get("values")
        if not isinstance(values, list):
            raise ValueError(f"column {name!r} carries no value list")
        if kind == "int":
            array = np.asarray(values, dtype=np.int64)
        elif kind == "float":
            array = np.asarray(values, dtype=np.float64)
        elif kind == "mixed":
            array = np.empty(len(values), dtype=object)
            array[:] = values
        else:
            raise ValueError(
                f"column {name!r} has unknown kind {kind!r}"
            )
        if length is None:
            length = len(array)
        elif len(array) != length:
            raise ValueError(
                f"column {name!r} has {len(array)} values, expected "
                f"{length}"
            )
        decoded[str(name)] = array
    return decoded
