"""Typed errors for the durable checkpoint/WAL subsystem.

The recovery contract (docs/recovery.md) is that a crash-recovered
synopsis is either statistically equivalent to an uncrashed one or the
recovery raises one of these typed errors -- never a silently wrong
sample.  Each corruption mode maps to exactly one class so tests (and
operators) can match on what actually went wrong:

* :class:`TornWriteError` -- a record was cut mid-write (crash during
  an append, or a truncated file tail).
* :class:`ChecksumMismatch` -- a complete record whose CRC does not
  match its payload (bit rot, flipped bytes).
* :class:`LogGapError` -- the log suffix needed for replay is not
  contiguous (a missing segment, or out-of-order sequence numbers).

:class:`TransientIOError` is the retryable class: fault injection (and
real storage) raise it for failures worth retrying with backoff, as
opposed to the corruption errors above which retrying cannot fix.
"""

from __future__ import annotations

__all__ = [
    "ChecksumMismatch",
    "LogGapError",
    "PersistError",
    "RecoveryError",
    "ReplayError",
    "TornWriteError",
    "TransientIOError",
]


class PersistError(RuntimeError):
    """Base class for all durable-storage errors."""


class RecoveryError(PersistError):
    """Base class for errors raised while recovering persisted state."""


class TornWriteError(RecoveryError):
    """A record was cut mid-write: incomplete frame at the given spot.

    A torn *tail* of the last WAL segment is the expected signature of
    a crash during an append and recovery can elect to drop it; a torn
    record anywhere else means acknowledged data is incomplete and is
    never tolerated.
    """

    def __init__(self, source: str, offset: int, reason: str) -> None:
        super().__init__(
            f"torn record in {source} at byte {offset}: {reason}"
        )
        self.source = source
        self.offset = offset
        self.reason = reason


class ChecksumMismatch(RecoveryError):
    """A complete record that fails its integrity check.

    Covers a CRC that no longer matches the payload and structurally
    impossible frames (a malformed complete header, a corrupt record
    terminator followed by more data) -- states a torn write cannot
    produce, so they are definitively corruption.
    """

    def __init__(self, source: str, offset: int, reason: str) -> None:
        super().__init__(
            f"corrupt record in {source} at byte {offset}: {reason}"
        )
        self.source = source
        self.offset = offset
        self.reason = reason


class LogGapError(RecoveryError):
    """The operation-log suffix needed for replay is not contiguous."""

    def __init__(self, expected: int, found: int, source: str = "") -> None:
        where = f" in {source}" if source else ""
        super().__init__(
            f"log gap{where}: expected sequence {expected}, found {found}"
        )
        self.expected = expected
        self.found = found
        self.source = source


class ReplayError(RecoveryError):
    """A logged operation cannot be applied to a bound synopsis."""


class TransientIOError(PersistError, OSError):
    """A storage failure worth retrying (the backoff class).

    Raised by fault injection for transient write/fsync failures;
    :class:`~repro.persist.retry.RetryPolicy` retries exactly this
    class and lets every other error propagate.
    """
