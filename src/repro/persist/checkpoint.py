"""Durable checkpoint store: atomic snapshots plus the WAL.

One directory holds everything the recovery manager needs::

    <root>/
        checkpoint-<sequence>.ckpt      # one CRC-framed envelope each
        wal/wal-<base>.seg              # the operation-log segments

A checkpoint is written with the classic atomic recipe -- write to a
``.tmp`` sibling, fsync the file, ``rename(2)`` over the final name,
fsync the directory -- so a crash at any point leaves either the old
set of checkpoints or the old set plus one complete new file, never a
half-written file under a final name.  A ``.ckpt`` that fails its CRC
is therefore *corruption* (flipped bytes), and loading it raises
:class:`ChecksumMismatch` rather than silently falling back to an
older checkpoint whose WAL suffix has already been truncated.

Transient write faults are retried with backoff
(:class:`~repro.persist.retry.RetryPolicy`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.persist.errors import (
    ChecksumMismatch,
    RecoveryError,
    TornWriteError,
)
from repro.persist.framing import decode_frames, encode_frame
from repro.persist.fsio import (
    FileSystem,
    LocalFileSystem,
    remove_idempotent,
    replace_idempotent,
)
from repro.persist.retry import RetryPolicy
from repro.persist.wal import WriteAheadLog

__all__ = ["CHECKPOINT_FORMAT_VERSION", "CheckpointStore"]

CHECKPOINT_FORMAT_VERSION = 1

_PREFIX = "checkpoint-"
_SUFFIX = ".ckpt"


def _checkpoint_name(sequence: int) -> str:
    return f"{_PREFIX}{sequence:020d}{_SUFFIX}"


def _parse_checkpoint_name(name: str) -> int | None:
    if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
        return None
    digits = name[len(_PREFIX) : -len(_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


class CheckpointStore:
    """Atomic checkpoint files plus a write-ahead log, in one directory.

    Parameters
    ----------
    directory:
        Root of the durable state (created if missing).
    filesystem:
        The storage seam; defaults to the real
        :class:`~repro.persist.fsio.LocalFileSystem`, tests inject a
        :class:`~repro.faults.injector.FaultyFilesystem`.
    sync_every:
        WAL appends per fsync point (see
        :class:`~repro.persist.wal.WriteAheadLog`).
    retry:
        Backoff policy shared by snapshot and WAL writes.
    registry:
        Metrics sink; defaults to the process-wide registry.
    """

    def __init__(
        self,
        directory: Path | str,
        filesystem: FileSystem | None = None,
        *,
        sync_every: int = 1,
        retry: RetryPolicy | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._directory = Path(directory)
        self._fs = filesystem if filesystem is not None else LocalFileSystem()
        self._retry = retry if retry is not None else RetryPolicy()
        self._fs.makedirs(self._directory)
        metrics = registry if registry is not None else get_registry()
        self._written = metrics.counter(
            "repro_checkpoint_writes_total", "Checkpoint files written"
        )
        self._pruned = metrics.counter(
            "repro_checkpoint_pruned_total",
            "Old checkpoint files removed after a newer one landed",
        )
        self.wal = WriteAheadLog(
            self._directory / "wal",
            self._fs,
            sync_every=sync_every,
            retry=self._retry,
            registry=metrics,
        )

    @property
    def directory(self) -> Path:
        """The store's root directory."""
        return self._directory

    @property
    def filesystem(self) -> FileSystem:
        """The storage seam in use (real or fault-injected)."""
        return self._fs

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def write_checkpoint(
        self, sequence: int, state: Mapping[str, Any]
    ) -> Path:
        """Atomically persist a checkpoint taken at ``sequence``.

        ``state`` is the JSON-able warehouse+synopses payload built by
        the recovery manager; the store wraps it in a versioned
        envelope and one CRC frame.
        """
        envelope = {
            "kind": "checkpoint",
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "sequence": int(sequence),
            "state": dict(state),
        }
        frame = encode_frame(envelope)
        final = self._directory / _checkpoint_name(sequence)
        temporary = final.with_name(final.name + ".tmp")

        def write_temp() -> None:
            handle = self._fs.open(temporary, "wb")
            try:
                handle.write(frame)
                self._fs.fsync(handle)
            finally:
                handle.close()

        self._retry.call(write_temp)
        self._retry.call(
            lambda: replace_idempotent(self._fs, temporary, final)
        )
        self._retry.call(lambda: self._fs.sync_directory(self._directory))
        self._written.inc()
        return final

    def checkpoint_sequences(self) -> list[int]:
        """Sorted sequences of every complete checkpoint file."""
        sequences = []
        for name in self._fs.listdir(self._directory):
            sequence = _parse_checkpoint_name(name)
            if sequence is not None:
                sequences.append(sequence)
        return sorted(sequences)

    def load_checkpoint(self, sequence: int) -> dict[str, Any]:
        """Read and verify one checkpoint; returns its ``state`` payload.

        Raises :class:`TornWriteError` for an incomplete file,
        :class:`ChecksumMismatch` for corruption, and
        :class:`RecoveryError` for an envelope this version cannot
        read.  Never returns partial state.
        """
        name = _checkpoint_name(sequence)
        data = self._fs.read_bytes(self._directory / name)
        frames, torn = decode_frames(data, source=name)
        if torn is not None:
            # Atomic rename means a final-name file was written whole;
            # an incomplete one is storage damage, never tolerable.
            raise TornWriteError(name, torn.offset, torn.reason)
        if len(frames) != 1:
            raise ChecksumMismatch(
                name, 0, f"expected one envelope frame, found {len(frames)}"
            )
        envelope = frames[0]
        if envelope.get("kind") != "checkpoint":
            raise ChecksumMismatch(name, 0, "envelope is not a checkpoint")
        version = int(envelope.get("format_version", 0))
        if version > CHECKPOINT_FORMAT_VERSION:
            raise RecoveryError(
                f"{name} was written by checkpoint format {version}; "
                f"this build reads up to {CHECKPOINT_FORMAT_VERSION}"
            )
        if int(envelope.get("sequence", -1)) != sequence:
            raise ChecksumMismatch(
                name, 0, "envelope sequence disagrees with file name"
            )
        state = envelope.get("state")
        if not isinstance(state, dict):
            raise ChecksumMismatch(name, 0, "envelope carries no state")
        return state

    def latest_checkpoint(self) -> tuple[int, dict[str, Any]] | None:
        """The newest checkpoint as ``(sequence, state)``, or ``None``.

        Decoding errors from the newest file propagate -- recovery
        must not silently fall back to an older checkpoint, because
        the WAL suffix it would need has been truncated.
        """
        sequences = self.checkpoint_sequences()
        if not sequences:
            return None
        newest = sequences[-1]
        return newest, self.load_checkpoint(newest)

    def prune_checkpoints(self, keep: int = 1) -> int:
        """Delete all but the ``keep`` newest checkpoints."""
        if keep < 1:
            raise ValueError("keep must be at least 1")
        sequences = self.checkpoint_sequences()
        stale = sequences[:-keep] if len(sequences) > keep else []
        for sequence in stale:
            path = self._directory / _checkpoint_name(sequence)
            self._retry.call(lambda p=path: remove_idempotent(self._fs, p))
        if stale:
            self._retry.call(
                lambda: self._fs.sync_directory(self._directory)
            )
            self._pruned.inc(len(stale))
        return len(stale)

    def remove_temporaries(self) -> int:
        """Delete leftover ``.tmp`` files from interrupted checkpoints."""
        removed = 0
        for name in self._fs.listdir(self._directory):
            if name.endswith(".tmp"):
                path = self._directory / name
                self._retry.call(lambda p=path: remove_idempotent(self._fs, p))
                removed += 1
        return removed

    def close(self) -> None:
        """Close the WAL segment handle."""
        self.wal.close()
