"""The filesystem seam: every real file operation in the repository.

:class:`LocalFileSystem` is the single place allowed to touch the OS
filesystem (reprolint rule RL010 confines ``open``/``os.fsync``/
``Path.write_*`` to ``repro/persist``).  Everything above it -- the
WAL, the checkpoint store, the recovery manager -- takes a
``FileSystem`` argument, which is how the deterministic fault layer
(:mod:`repro.faults`) interposes: a
:class:`~repro.faults.injector.FaultyFilesystem` wraps this class and
fails chosen operations without the callers knowing.

Durability points follow the classic recipe: data-file ``fsync`` after
writes that must survive, directory ``fsync`` after renames so the new
directory entry itself is durable.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO, Protocol

__all__ = [
    "FileSystem",
    "LocalFileSystem",
    "remove_idempotent",
    "replace_idempotent",
]


class FileSystem(Protocol):
    """The storage surface the persist layer is written against."""

    def open(self, path: Path, mode: str) -> BinaryIO: ...

    def fsync(self, handle: BinaryIO) -> None: ...

    def replace(self, source: Path, destination: Path) -> None: ...

    def sync_directory(self, directory: Path) -> None: ...

    def read_bytes(self, path: Path) -> bytes: ...

    def listdir(self, directory: Path) -> list[str]: ...

    def remove(self, path: Path) -> None: ...

    def makedirs(self, directory: Path) -> None: ...

    def exists(self, path: Path) -> bool: ...

    def size(self, path: Path) -> int: ...


def remove_idempotent(filesystem: FileSystem, path: Path) -> None:
    """Delete ``path``, treating "already gone" as success.

    Deletes that run under a :class:`~repro.persist.retry.RetryPolicy`
    must tolerate an earlier attempt having taken effect before its
    transient error surfaced -- the retry re-runs the whole callable,
    and a bare ``remove`` would then fail the operation it already
    performed.
    """
    try:
        filesystem.remove(path)
    except FileNotFoundError:
        pass


def replace_idempotent(
    filesystem: FileSystem, source: Path, destination: Path
) -> None:
    """Rename ``source`` over ``destination``, tolerating a done retry.

    When a retried rename finds ``source`` gone but ``destination``
    present, a previous attempt already took effect and the rename is
    a success; any other missing-file state is a real error and
    propagates.
    """
    try:
        filesystem.replace(source, destination)
    except FileNotFoundError:
        if filesystem.exists(source) or not filesystem.exists(destination):
            raise


class LocalFileSystem:
    """The real filesystem (the only RL010-sanctioned I/O call sites)."""

    def open(self, path: Path, mode: str) -> BinaryIO:
        """Open a file for binary reading or writing.

        Write handles are unbuffered: every ``write`` goes straight to
        the OS, so the deterministic fault layer can cut a write
        mid-record and the bytes on disk are exactly the bytes the
        fault allowed through -- no user-space buffer replaying data
        "after the crash".
        """
        if "b" not in mode:
            raise ValueError("the persist layer does binary I/O only")
        buffering = 0 if ("w" in mode or "a" in mode or "+" in mode) else -1
        return open(path, mode, buffering=buffering)  # noqa: SIM115

    def fsync(self, handle: BinaryIO) -> None:
        """Flush user- and OS-level buffers of an open handle to disk."""
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, source: Path, destination: Path) -> None:
        """Atomically rename ``source`` over ``destination``."""
        os.replace(source, destination)

    def sync_directory(self, directory: Path) -> None:
        """Make directory-entry changes (renames, unlinks) durable."""
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def read_bytes(self, path: Path) -> bytes:
        """The whole file as bytes."""
        with open(path, "rb") as handle:
            return handle.read()

    def listdir(self, directory: Path) -> list[str]:
        """Sorted names in a directory (empty when it does not exist)."""
        if not directory.is_dir():
            return []
        return sorted(os.listdir(directory))

    def remove(self, path: Path) -> None:
        """Delete a file."""
        os.remove(path)

    def makedirs(self, directory: Path) -> None:
        """Create a directory tree if missing."""
        os.makedirs(directory, exist_ok=True)

    def exists(self, path: Path) -> bool:
        """Whether a path exists."""
        return path.exists()

    def size(self, path: Path) -> int:
        """File size in bytes."""
        return os.path.getsize(path)
