"""The recovery manager: snapshot + log-suffix replay (footnote 2).

The paper's footnote 2 prescribes "combinations of snapshots and/or
logs stored on disk" for persistence; :class:`RecoveryManager` is that
combination made operational.  On the live side it taps the
warehouse's load stream (Figure 2) and appends one durable WAL record
per acknowledged operation; :meth:`RecoveryManager.checkpoint`
atomically snapshots the warehouse and every bound synopsis, rotates
the log, and garbage-collects what the snapshot covers.  After a
crash, :meth:`RecoveryManager.recover` rebuilds the exact
pre-crash state: load the newest checkpoint, replay the WAL suffix
into the relations *and* the bound synopses (Theorem 5's
insert/delete replay), and repair any tolerated torn tail.

The durability contract (with ``sync_every=1``):

* an operation is **acknowledged** when the warehouse call returns,
  which happens only after its WAL record's fsync point;
* recovery restores a prefix of the attempted operations that
  includes every acknowledged one -- at most the single in-flight
  record may be lost (torn tail) or silently present (crash after the
  write, before the acknowledgment reached the caller);
* corruption and gaps never produce a silently wrong sample: they
  raise the typed errors of :mod:`repro.persist.errors`.

Restored synopses are *statistically* equivalent, not bitwise: they
carry the same sample + threshold state but a fresh RNG stream
(Theorem 2's induction is over the invariant state, not the
generator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.engine.oplog import OperationLog
from repro.engine.relation import Relation
from repro.engine.snapshots import (
    Snapshotable,
    restore_synopsis,
    snapshot_synopsis,
)
from repro.engine.warehouse import DataWarehouse
from repro.obs.recovery import RecoveryTracer
from repro.persist.checkpoint import CheckpointStore
from repro.persist.columns import decode_columns, encode_columns
from repro.persist.errors import LogGapError, ReplayError
from repro.persist.framing import TornTail
from repro.persist.wal import read_operations, record_range
from repro.randkit.rng import ReproRandom

__all__ = ["RecoveredState", "RecoveryManager", "SynopsisBinding"]


class _WarehouseTap:
    """The manager's load-stream observer, row- and batch-capable.

    A plain bound method cannot expose the ``observe_batch`` attribute
    :meth:`DataWarehouse.load_batch` probes for, so the manager
    subscribes this small forwarding object instead: per-row events go
    to ``RecoveryManager._observe`` (one ``op`` record each) and whole
    batches to ``RecoveryManager._observe_batch`` (one columnar
    ``batch`` record, one buffered write, one fsync point).
    """

    __slots__ = ("_manager",)

    def __init__(self, manager: "RecoveryManager") -> None:
        self._manager = manager

    def __call__(
        self, relation: str, row: tuple, is_insert: bool
    ) -> None:
        self._manager._observe(relation, row, is_insert)

    def observe_batch(
        self, relation: str, columns: Mapping[str, np.ndarray]
    ) -> None:
        self._manager._observe_batch(relation, columns)


@dataclass(frozen=True)
class SynopsisBinding:
    """One synopsis fed by one attribute of one relation."""

    relation: str
    attribute: str
    synopsis: Snapshotable


@dataclass
class RecoveredState:
    """What :meth:`RecoveryManager.recover` rebuilt.

    Attributes
    ----------
    warehouse:
        The restored base data.
    synopses:
        ``(relation, attribute) -> synopsis`` for every binding the
        checkpoint carried.
    sequence:
        The last operation sequence applied (checkpoint + replay).
    replayed:
        How many WAL records were replayed on top of the snapshot.
    checkpoint_sequence:
        The snapshot's sequence (-1 when no checkpoint existed).
    torn_tail:
        The tolerated-and-repaired torn tail, if recovery dropped one.
    """

    warehouse: DataWarehouse
    synopses: dict[tuple[str, str], Snapshotable] = field(
        default_factory=dict
    )
    sequence: int = 0
    replayed: int = 0
    checkpoint_sequence: int = -1
    torn_tail: TornTail | None = None

    def synopsis(self, relation: str, attribute: str) -> Snapshotable:
        """Look up one restored synopsis."""
        return self.synopses[(relation, attribute)]


class RecoveryManager:
    """Durable WAL tap + checkpointing + recovery over one store.

    Parameters
    ----------
    store:
        The durable state (checkpoint files + WAL directory).
    tracer:
        Recovery-path observability; defaults to a tracer on the
        process-wide registry (a no-op unless obs was enabled).
    oplog:
        Optional in-memory :class:`~repro.engine.oplog.OperationLog`
        mirror, kept in step with the durable WAL (handy for
        in-process replay and the Theorem 5 tooling).
    """

    def __init__(
        self,
        store: CheckpointStore,
        *,
        tracer: RecoveryTracer | None = None,
        oplog: OperationLog | None = None,
    ) -> None:
        self._store = store
        self._tracer = tracer if tracer is not None else RecoveryTracer()
        self._oplog = oplog
        self._warehouse: DataWarehouse | None = None
        self._tap = _WarehouseTap(self)
        self._bindings: list[SynopsisBinding] = []
        self._sequence = 0  # last acknowledged operation sequence
        # Relations the open WAL segment carries a schema record for;
        # an op on any other relation writes its schema first.
        self._segment_relations: set[str] = set()

    @property
    def store(self) -> CheckpointStore:
        """The durable store this manager writes to."""
        return self._store

    @property
    def sequence(self) -> int:
        """The last acknowledged operation sequence."""
        return self._sequence

    @property
    def bindings(self) -> tuple[SynopsisBinding, ...]:
        """The registered synopsis bindings."""
        return tuple(self._bindings)

    # ------------------------------------------------------------------
    # Live side: tap the load stream, write the WAL
    # ------------------------------------------------------------------

    def attach(self, warehouse: DataWarehouse) -> None:
        """Subscribe to a warehouse's load stream and open the WAL.

        Every subsequent load operation is appended to the WAL before
        the warehouse call returns: one ``op`` record per row event,
        or one columnar ``batch`` record per whole
        :meth:`~repro.engine.warehouse.DataWarehouse.load_batch` call
        (the durable batch-ingest fast path -- a single buffered write
        regardless of batch size).

        The store's ``sync_every`` dial trades throughput for
        durability.  At ``sync_every=1`` (the default) every record
        reaches its fsync point before the warehouse call returns --
        the acknowledgment point of the durability contract -- which
        for *per-row* ingest costs one fsync per row; a whole batch is
        one record, so batch ingest pays one fsync per batch at the
        very same durability.  With group commit (``sync_every=k``)
        fsyncs amortise over ``k`` records and a crash may lose up to
        the last ``k-1`` acknowledged records; the recovered state is
        still a consistent prefix.
        """
        if self._warehouse is not None:
            raise RuntimeError("already attached to a warehouse")
        self._warehouse = warehouse
        if self._store.wal.open_base is None:
            self._store.wal.open_segment(self._sequence + 1)
        self._append_schema()
        warehouse.add_observer(self._tap)

    def _append_schema(self) -> None:
        """Write the relation schemas into the open segment.

        Makes every segment self-describing, so a crash *before the
        first checkpoint* is still recoverable: replay can re-create
        the relations from the WAL alone.  Relations created after
        :meth:`attach` are described lazily by :meth:`_observe` at
        their first logged operation.
        """
        if self._warehouse is None:
            return
        relations = {
            name: list(self._warehouse.relation(name).attributes)
            for name in self._warehouse.relation_names()
        }
        self._segment_relations = set(relations)
        if relations:
            self._store.wal.append(
                {"kind": "schema", "relations": relations}
            )

    def _append_schema_for(self, relation: str) -> None:
        """Describe one late-created relation in the open segment.

        A relation created after :meth:`attach` (or after the last
        checkpoint rotation) has no schema record yet; its first
        operation must not become durable before the schema that makes
        it replayable, or recovery of the whole store would fail with
        a :class:`~repro.persist.errors.ReplayError`.
        """
        if self._warehouse is None:
            return
        attributes = list(self._warehouse.relation(relation).attributes)
        self._store.wal.append(
            {"kind": "schema", "relations": {relation: attributes}}
        )
        self._segment_relations.add(relation)

    def drain(self) -> None:
        """Force every buffered WAL record to stable storage.

        The serving layer's graceful-shutdown hook: with
        ``sync_every > 1`` the group-commit buffer may hold acked-ish
        records that are not yet durable; draining syncs them without
        closing the segment, so the manager keeps logging if shutdown
        is aborted.
        """
        self._store.wal.sync()

    def detach(self) -> None:
        """Unsubscribe and close the open WAL segment."""
        if self._warehouse is not None:
            self._warehouse.remove_observer(self._tap)
            self._warehouse = None
        self._store.wal.close()

    def _observe(self, relation: str, row: tuple, is_insert: bool) -> None:
        if relation not in self._segment_relations:
            self._append_schema_for(relation)
        sequence = self._sequence + 1
        self._store.wal.append(
            {
                "kind": "op",
                "sequence": sequence,
                "relation": relation,
                "row": list(row),
                "insert": is_insert,
            }
        )
        self._sequence = sequence
        if self._oplog is not None:
            self._oplog.observe(relation, row, is_insert)

    def _observe_batch(
        self, relation: str, columns: Mapping[str, np.ndarray]
    ) -> None:
        """Log one whole load batch as a single columnar WAL record.

        The record carries the batch's ``[first_sequence,
        last_sequence]`` range and every attribute as a dtype-tagged
        column, so replay can rebuild the arrays and drive the
        vectorized ingest paths.  A late-created relation's schema
        record rides in the same buffered write, keeping the
        "schema durable no later than its first op" invariant at one
        write and one fsync point for the whole batch.
        """
        length = len(next(iter(columns.values()))) if columns else 0
        if length == 0:
            return
        records: list[dict[str, Any]] = []
        described = relation in self._segment_relations
        if not described and self._warehouse is not None:
            attributes = list(
                self._warehouse.relation(relation).attributes
            )
            records.append(
                {"kind": "schema", "relations": {relation: attributes}}
            )
        first = self._sequence + 1
        last = self._sequence + length
        records.append(
            {
                "kind": "batch",
                "first_sequence": first,
                "last_sequence": last,
                "relation": relation,
                "columns": encode_columns(columns),
            }
        )
        self._store.wal.append_many(records)
        if not described:
            self._segment_relations.add(relation)
        self._sequence = last
        if self._oplog is not None:
            self._oplog.observe_batch(relation, columns)

    def bind(
        self, relation: str, attribute: str, synopsis: Snapshotable
    ) -> SynopsisBinding:
        """Register a synopsis for checkpointing and replay.

        Bindings live in the checkpoint payload: a binding made after
        the last checkpoint is not yet durable, so checkpoint soon
        after binding.
        """
        binding = SynopsisBinding(relation, attribute, synopsis)
        self._bindings.append(binding)
        return binding

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self, *, keep: int = 1) -> int:
        """Snapshot everything, rotate the WAL, collect garbage.

        Returns the checkpoint's sequence.  The order is the classic
        one: sync the log, write the snapshot atomically, *then* drop
        the log prefix and older snapshots the new snapshot covers --
        a crash between any two steps leaves a recoverable store.
        """
        if self._warehouse is None:
            raise RuntimeError("attach a warehouse before checkpointing")
        started = self._tracer.begin()
        sequence = self._sequence
        try:
            state = {
                "relations": {
                    name: self._warehouse.relation(name).to_dict()
                    for name in self._warehouse.relation_names()
                },
                "synopses": [
                    {
                        "relation": binding.relation,
                        "attribute": binding.attribute,
                        "state": snapshot_synopsis(binding.synopsis),
                    }
                    for binding in self._bindings
                ],
            }
            self._store.wal.sync()
            self._store.write_checkpoint(sequence, state)
            self._store.wal.open_segment(sequence + 1)
            self._append_schema()
            self._store.wal.truncate_through(sequence)
            self._store.prune_checkpoints(keep=keep)
            self._store.remove_temporaries()
            if self._oplog is not None:
                self._oplog.truncate_before(sequence)
        except Exception as error:
            self._tracer.record_checkpoint(
                started, sequence=sequence, outcome=type(error).__name__
            )
            raise
        self._tracer.record_checkpoint(started, sequence=sequence)
        return sequence

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(
        self,
        *,
        seed: int,
        tolerate_torn_tail: bool = True,
    ) -> RecoveredState:
        """Rebuild warehouse + synopses as snapshot + log-suffix replay.

        ``seed`` re-seeds the restored synopses' randomness (their
        invariant sample/threshold state comes from the snapshot).
        With ``tolerate_torn_tail`` (the default), a torn record at
        the physical tail of the last WAL segment is dropped, reported
        on the result, and the damaged segment truncated to its clean
        prefix; in strict mode it raises
        :class:`~repro.persist.errors.TornWriteError`.

        Any corruption, gap, or replay inconsistency raises a typed
        :class:`~repro.persist.errors.RecoveryError` -- partial state
        is never returned.
        """
        started = self._tracer.begin()
        try:
            state = self._recover(seed=seed, tolerate=tolerate_torn_tail)
        except Exception as error:
            self._tracer.record_recovery(
                started,
                sequence=self._sequence,
                replayed_operations=0,
                checkpoint_sequence=-1,
                torn_tail_dropped=False,
                outcome=type(error).__name__,
            )
            raise
        self._tracer.record_recovery(
            started,
            sequence=state.sequence,
            replayed_operations=state.replayed,
            checkpoint_sequence=state.checkpoint_sequence,
            torn_tail_dropped=state.torn_tail is not None,
        )
        return state

    def _recover(self, *, seed: int, tolerate: bool) -> RecoveredState:
        store = self._store
        store.wal.close()  # recovery reads segments, never appends

        latest = store.latest_checkpoint()  # errors propagate: no fallback
        checkpoint_sequence = latest[0] if latest is not None else -1
        snapshot = latest[1] if latest is not None else {}

        operations, schemas, torn = read_operations(
            store.filesystem,
            store.wal.directory,
            tolerate_torn_tail=tolerate,
        )

        base_sequence = max(checkpoint_sequence, 0)
        suffix = []
        for operation in operations:
            covered = record_range(operation)
            if covered is None or covered[1] <= base_sequence:
                continue
            suffix.append(operation)
        if suffix:
            first = record_range(suffix[0])
            assert first is not None
            # A batch record straddling the checkpoint boundary is
            # tolerated by slicing during replay, so contiguity only
            # requires the first surviving record to *cover* or abut
            # the checkpoint sequence.
            if first[0] > base_sequence + 1:
                raise LogGapError(
                    base_sequence + 1, first[0], source="recovery"
                )

        warehouse = DataWarehouse()
        for payload in snapshot.get("relations", {}).values():
            warehouse.attach_relation(Relation.from_dict(payload))
        for name, attributes in schemas.items():
            # Relations the WAL knows but the checkpoint predates
            # (or there is no checkpoint at all).
            if name not in warehouse.relation_names():
                warehouse.create_relation(name, attributes)

        rng = ReproRandom(seed)
        bindings: list[SynopsisBinding] = []
        for entry in snapshot.get("synopses", []):
            restored = restore_synopsis(
                entry["state"], seed=rng.fork().seed
            )
            bindings.append(
                SynopsisBinding(
                    str(entry["relation"]),
                    str(entry["attribute"]),
                    restored,
                )
            )

        replayed = 0
        sequence = base_sequence
        for operation in suffix:
            if operation.get("kind") == "batch":
                applied, sequence = self._replay_batch(
                    warehouse, bindings, operation, sequence
                )
                replayed += applied
                continue
            relation_name = str(operation["relation"])
            row = tuple(operation["row"])
            is_insert = bool(operation["insert"])
            try:
                if is_insert:
                    warehouse.insert(relation_name, row)
                else:
                    warehouse.delete(relation_name, row)
            except Exception as error:
                raise ReplayError(
                    f"operation {operation['sequence']} does not apply "
                    f"to relation {relation_name!r}: {error}"
                ) from error
            for binding in bindings:
                if binding.relation != relation_name:
                    continue
                relation = warehouse.relation(relation_name)
                value = int(
                    row[relation.attribute_index(binding.attribute)]
                )
                if is_insert:
                    binding.synopsis.insert(value)
                elif hasattr(binding.synopsis, "delete"):
                    binding.synopsis.delete(value)
                else:
                    raise ReplayError(
                        f"operation {operation['sequence']} deletes from "
                        f"{binding.relation}.{binding.attribute}, but "
                        f"{type(binding.synopsis).__name__} cannot "
                        "replay deletes (Theorem 5 needs a counting "
                        "sample)"
                    )
            replayed += 1
            sequence = int(operation["sequence"])

        if torn is not None:
            # Truncate the last segment to its clean prefix -- without
            # this, a second recovery would find the same torn record
            # mid-WAL once new segments are appended after it.
            store.wal.repair_tail(torn.offset)

        self._warehouse = None
        self._bindings = bindings
        self._sequence = sequence
        return RecoveredState(
            warehouse=warehouse,
            synopses={
                (binding.relation, binding.attribute): binding.synopsis
                for binding in bindings
            },
            sequence=sequence,
            replayed=replayed,
            checkpoint_sequence=checkpoint_sequence,
            torn_tail=torn,
        )

    @staticmethod
    def _replay_batch(
        warehouse: DataWarehouse,
        bindings: list[SynopsisBinding],
        operation: Mapping[str, Any],
        sequence: int,
    ) -> tuple[int, int]:
        """Replay one columnar batch record, vectorized end to end.

        Decodes the dtype-tagged columns back into arrays, drives
        :meth:`~repro.engine.warehouse.DataWarehouse.load_batch` (one
        ``np.unique`` update instead of a row loop) and each matching
        binding's ``insert_array`` fast path.  A batch straddling the
        checkpoint boundary is sliced to its unapplied suffix first.
        Returns ``(rows applied, new sequence)``.
        """
        relation_name = str(operation["relation"])
        first = int(operation["first_sequence"])
        last = int(operation["last_sequence"])
        try:
            columns = decode_columns(operation["columns"])
        except ValueError as error:
            raise ReplayError(
                f"batch record [{first}, {last}] cannot be decoded: "
                f"{error}"
            ) from error
        length = last - first + 1
        if any(len(values) != length for values in columns.values()):
            raise ReplayError(
                f"batch record [{first}, {last}] declares {length} "
                "rows but its columns disagree"
            )
        skip = sequence - first + 1
        if skip > 0:
            # The checkpoint already covers a prefix of this batch.
            columns = {
                name: values[skip:] for name, values in columns.items()
            }
        try:
            applied = warehouse.load_batch(relation_name, columns)
        except Exception as error:
            raise ReplayError(
                f"batch record [{first}, {last}] does not apply to "
                f"relation {relation_name!r}: {error}"
            ) from error
        for binding in bindings:
            if binding.relation != relation_name:
                continue
            try:
                values = columns[binding.attribute]
            except KeyError:
                raise ReplayError(
                    f"batch record [{first}, {last}] carries no column "
                    f"for {binding.relation}.{binding.attribute}"
                ) from None
            insert_array = getattr(binding.synopsis, "insert_array", None)
            if insert_array is not None:
                insert_array(np.asarray(values))
            else:  # pragma: no cover - all snapshotable synopses vectorize
                for value in values.tolist():
                    binding.synopsis.insert(int(value))
        return applied, last
