"""The recovery manager: snapshot + log-suffix replay (footnote 2).

The paper's footnote 2 prescribes "combinations of snapshots and/or
logs stored on disk" for persistence; :class:`RecoveryManager` is that
combination made operational.  On the live side it taps the
warehouse's load stream (Figure 2) and appends one durable WAL record
per acknowledged operation; :meth:`RecoveryManager.checkpoint`
atomically snapshots the warehouse and every bound synopsis, rotates
the log, and garbage-collects what the snapshot covers.  After a
crash, :meth:`RecoveryManager.recover` rebuilds the exact
pre-crash state: load the newest checkpoint, replay the WAL suffix
into the relations *and* the bound synopses (Theorem 5's
insert/delete replay), and repair any tolerated torn tail.

The durability contract (with ``sync_every=1``):

* an operation is **acknowledged** when the warehouse call returns,
  which happens only after its WAL record's fsync point;
* recovery restores a prefix of the attempted operations that
  includes every acknowledged one -- at most the single in-flight
  record may be lost (torn tail) or silently present (crash after the
  write, before the acknowledgment reached the caller);
* corruption and gaps never produce a silently wrong sample: they
  raise the typed errors of :mod:`repro.persist.errors`.

Restored synopses are *statistically* equivalent, not bitwise: they
carry the same sample + threshold state but a fresh RNG stream
(Theorem 2's induction is over the invariant state, not the
generator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.oplog import OperationLog
from repro.engine.relation import Relation
from repro.engine.snapshots import (
    Snapshotable,
    restore_synopsis,
    snapshot_synopsis,
)
from repro.engine.warehouse import DataWarehouse
from repro.obs.recovery import RecoveryTracer
from repro.persist.checkpoint import CheckpointStore
from repro.persist.errors import LogGapError, ReplayError
from repro.persist.framing import TornTail
from repro.persist.wal import read_operations
from repro.randkit.rng import ReproRandom

__all__ = ["RecoveredState", "RecoveryManager", "SynopsisBinding"]


@dataclass(frozen=True)
class SynopsisBinding:
    """One synopsis fed by one attribute of one relation."""

    relation: str
    attribute: str
    synopsis: Snapshotable


@dataclass
class RecoveredState:
    """What :meth:`RecoveryManager.recover` rebuilt.

    Attributes
    ----------
    warehouse:
        The restored base data.
    synopses:
        ``(relation, attribute) -> synopsis`` for every binding the
        checkpoint carried.
    sequence:
        The last operation sequence applied (checkpoint + replay).
    replayed:
        How many WAL records were replayed on top of the snapshot.
    checkpoint_sequence:
        The snapshot's sequence (-1 when no checkpoint existed).
    torn_tail:
        The tolerated-and-repaired torn tail, if recovery dropped one.
    """

    warehouse: DataWarehouse
    synopses: dict[tuple[str, str], Snapshotable] = field(
        default_factory=dict
    )
    sequence: int = 0
    replayed: int = 0
    checkpoint_sequence: int = -1
    torn_tail: TornTail | None = None

    def synopsis(self, relation: str, attribute: str) -> Snapshotable:
        """Look up one restored synopsis."""
        return self.synopses[(relation, attribute)]


class RecoveryManager:
    """Durable WAL tap + checkpointing + recovery over one store.

    Parameters
    ----------
    store:
        The durable state (checkpoint files + WAL directory).
    tracer:
        Recovery-path observability; defaults to a tracer on the
        process-wide registry (a no-op unless obs was enabled).
    oplog:
        Optional in-memory :class:`~repro.engine.oplog.OperationLog`
        mirror, kept in step with the durable WAL (handy for
        in-process replay and the Theorem 5 tooling).
    """

    def __init__(
        self,
        store: CheckpointStore,
        *,
        tracer: RecoveryTracer | None = None,
        oplog: OperationLog | None = None,
    ) -> None:
        self._store = store
        self._tracer = tracer if tracer is not None else RecoveryTracer()
        self._oplog = oplog
        self._warehouse: DataWarehouse | None = None
        self._bindings: list[SynopsisBinding] = []
        self._sequence = 0  # last acknowledged operation sequence
        # Relations the open WAL segment carries a schema record for;
        # an op on any other relation writes its schema first.
        self._segment_relations: set[str] = set()

    @property
    def store(self) -> CheckpointStore:
        """The durable store this manager writes to."""
        return self._store

    @property
    def sequence(self) -> int:
        """The last acknowledged operation sequence."""
        return self._sequence

    @property
    def bindings(self) -> tuple[SynopsisBinding, ...]:
        """The registered synopsis bindings."""
        return tuple(self._bindings)

    # ------------------------------------------------------------------
    # Live side: tap the load stream, write the WAL
    # ------------------------------------------------------------------

    def attach(self, warehouse: DataWarehouse) -> None:
        """Subscribe to a warehouse's load stream and open the WAL.

        Every subsequent load operation is appended to the WAL before
        the warehouse call returns (``sync_every=1`` makes that append
        durable -- the acknowledgment point of the durability
        contract).
        """
        if self._warehouse is not None:
            raise RuntimeError("already attached to a warehouse")
        self._warehouse = warehouse
        if self._store.wal.open_base is None:
            self._store.wal.open_segment(self._sequence + 1)
        self._append_schema()
        warehouse.add_observer(self._observe)

    def _append_schema(self) -> None:
        """Write the relation schemas into the open segment.

        Makes every segment self-describing, so a crash *before the
        first checkpoint* is still recoverable: replay can re-create
        the relations from the WAL alone.  Relations created after
        :meth:`attach` are described lazily by :meth:`_observe` at
        their first logged operation.
        """
        if self._warehouse is None:
            return
        relations = {
            name: list(self._warehouse.relation(name).attributes)
            for name in self._warehouse.relation_names()
        }
        self._segment_relations = set(relations)
        if relations:
            self._store.wal.append(
                {"kind": "schema", "relations": relations}
            )

    def _append_schema_for(self, relation: str) -> None:
        """Describe one late-created relation in the open segment.

        A relation created after :meth:`attach` (or after the last
        checkpoint rotation) has no schema record yet; its first
        operation must not become durable before the schema that makes
        it replayable, or recovery of the whole store would fail with
        a :class:`~repro.persist.errors.ReplayError`.
        """
        if self._warehouse is None:
            return
        attributes = list(self._warehouse.relation(relation).attributes)
        self._store.wal.append(
            {"kind": "schema", "relations": {relation: attributes}}
        )
        self._segment_relations.add(relation)

    def detach(self) -> None:
        """Unsubscribe and close the open WAL segment."""
        if self._warehouse is not None:
            self._warehouse.remove_observer(self._observe)
            self._warehouse = None
        self._store.wal.close()

    def _observe(self, relation: str, row: tuple, is_insert: bool) -> None:
        if relation not in self._segment_relations:
            self._append_schema_for(relation)
        sequence = self._sequence + 1
        self._store.wal.append(
            {
                "kind": "op",
                "sequence": sequence,
                "relation": relation,
                "row": list(row),
                "insert": is_insert,
            }
        )
        self._sequence = sequence
        if self._oplog is not None:
            self._oplog.observe(relation, row, is_insert)

    def bind(
        self, relation: str, attribute: str, synopsis: Snapshotable
    ) -> SynopsisBinding:
        """Register a synopsis for checkpointing and replay.

        Bindings live in the checkpoint payload: a binding made after
        the last checkpoint is not yet durable, so checkpoint soon
        after binding.
        """
        binding = SynopsisBinding(relation, attribute, synopsis)
        self._bindings.append(binding)
        return binding

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self, *, keep: int = 1) -> int:
        """Snapshot everything, rotate the WAL, collect garbage.

        Returns the checkpoint's sequence.  The order is the classic
        one: sync the log, write the snapshot atomically, *then* drop
        the log prefix and older snapshots the new snapshot covers --
        a crash between any two steps leaves a recoverable store.
        """
        if self._warehouse is None:
            raise RuntimeError("attach a warehouse before checkpointing")
        started = self._tracer.begin()
        sequence = self._sequence
        try:
            state = {
                "relations": {
                    name: self._warehouse.relation(name).to_dict()
                    for name in self._warehouse.relation_names()
                },
                "synopses": [
                    {
                        "relation": binding.relation,
                        "attribute": binding.attribute,
                        "state": snapshot_synopsis(binding.synopsis),
                    }
                    for binding in self._bindings
                ],
            }
            self._store.wal.sync()
            self._store.write_checkpoint(sequence, state)
            self._store.wal.open_segment(sequence + 1)
            self._append_schema()
            self._store.wal.truncate_through(sequence)
            self._store.prune_checkpoints(keep=keep)
            self._store.remove_temporaries()
            if self._oplog is not None:
                self._oplog.truncate_before(sequence)
        except Exception as error:
            self._tracer.record_checkpoint(
                started, sequence=sequence, outcome=type(error).__name__
            )
            raise
        self._tracer.record_checkpoint(started, sequence=sequence)
        return sequence

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(
        self,
        *,
        seed: int,
        tolerate_torn_tail: bool = True,
    ) -> RecoveredState:
        """Rebuild warehouse + synopses as snapshot + log-suffix replay.

        ``seed`` re-seeds the restored synopses' randomness (their
        invariant sample/threshold state comes from the snapshot).
        With ``tolerate_torn_tail`` (the default), a torn record at
        the physical tail of the last WAL segment is dropped, reported
        on the result, and the damaged segment truncated to its clean
        prefix; in strict mode it raises
        :class:`~repro.persist.errors.TornWriteError`.

        Any corruption, gap, or replay inconsistency raises a typed
        :class:`~repro.persist.errors.RecoveryError` -- partial state
        is never returned.
        """
        started = self._tracer.begin()
        try:
            state = self._recover(seed=seed, tolerate=tolerate_torn_tail)
        except Exception as error:
            self._tracer.record_recovery(
                started,
                sequence=self._sequence,
                replayed_operations=0,
                checkpoint_sequence=-1,
                torn_tail_dropped=False,
                outcome=type(error).__name__,
            )
            raise
        self._tracer.record_recovery(
            started,
            sequence=state.sequence,
            replayed_operations=state.replayed,
            checkpoint_sequence=state.checkpoint_sequence,
            torn_tail_dropped=state.torn_tail is not None,
        )
        return state

    def _recover(self, *, seed: int, tolerate: bool) -> RecoveredState:
        store = self._store
        store.wal.close()  # recovery reads segments, never appends

        latest = store.latest_checkpoint()  # errors propagate: no fallback
        checkpoint_sequence = latest[0] if latest is not None else -1
        snapshot = latest[1] if latest is not None else {}

        operations, schemas, torn = read_operations(
            store.filesystem,
            store.wal.directory,
            tolerate_torn_tail=tolerate,
        )

        base_sequence = max(checkpoint_sequence, 0)
        suffix = [
            operation
            for operation in operations
            if int(operation["sequence"]) > base_sequence
        ]
        if suffix and int(suffix[0]["sequence"]) != base_sequence + 1:
            raise LogGapError(
                base_sequence + 1,
                int(suffix[0]["sequence"]),
                source="recovery",
            )

        warehouse = DataWarehouse()
        for payload in snapshot.get("relations", {}).values():
            warehouse.attach_relation(Relation.from_dict(payload))
        for name, attributes in schemas.items():
            # Relations the WAL knows but the checkpoint predates
            # (or there is no checkpoint at all).
            if name not in warehouse.relation_names():
                warehouse.create_relation(name, attributes)

        rng = ReproRandom(seed)
        bindings: list[SynopsisBinding] = []
        for entry in snapshot.get("synopses", []):
            restored = restore_synopsis(
                entry["state"], seed=rng.fork().seed
            )
            bindings.append(
                SynopsisBinding(
                    str(entry["relation"]),
                    str(entry["attribute"]),
                    restored,
                )
            )

        replayed = 0
        sequence = base_sequence
        for operation in suffix:
            relation_name = str(operation["relation"])
            row = tuple(operation["row"])
            is_insert = bool(operation["insert"])
            try:
                if is_insert:
                    warehouse.insert(relation_name, row)
                else:
                    warehouse.delete(relation_name, row)
            except Exception as error:
                raise ReplayError(
                    f"operation {operation['sequence']} does not apply "
                    f"to relation {relation_name!r}: {error}"
                ) from error
            for binding in bindings:
                if binding.relation != relation_name:
                    continue
                relation = warehouse.relation(relation_name)
                value = int(
                    row[relation.attribute_index(binding.attribute)]
                )
                if is_insert:
                    binding.synopsis.insert(value)
                elif hasattr(binding.synopsis, "delete"):
                    binding.synopsis.delete(value)
                else:
                    raise ReplayError(
                        f"operation {operation['sequence']} deletes from "
                        f"{binding.relation}.{binding.attribute}, but "
                        f"{type(binding.synopsis).__name__} cannot "
                        "replay deletes (Theorem 5 needs a counting "
                        "sample)"
                    )
            replayed += 1
            sequence = int(operation["sequence"])

        if torn is not None:
            # Truncate the last segment to its clean prefix -- without
            # this, a second recovery would find the same torn record
            # mid-WAL once new segments are appended after it.
            store.wal.repair_tail(torn.offset)

        self._warehouse = None
        self._bindings = bindings
        self._sequence = sequence
        return RecoveredState(
            warehouse=warehouse,
            synopses={
                (binding.relation, binding.attribute): binding.synopsis
                for binding in bindings
            },
            sequence=sequence,
            replayed=replayed,
            checkpoint_sequence=checkpoint_sequence,
            torn_tail=torn,
        )
