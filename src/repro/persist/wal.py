"""Write-ahead log: CRC-framed JSON-lines segments with fsync points.

The WAL is a directory of segment files ``wal-<base>.seg``, where
``base`` is the sequence number of the first operation the segment may
hold.  Each segment starts with a header record and then carries one
``op`` record per warehouse load event::

    {"kind": "wal-header", "format_version": 1, "base": 1200}
    {"kind": "op", "sequence": 1200, "relation": "sales", "row": [7], "insert": true}
    ...

Records are framed by :mod:`repro.persist.framing`, so every crash
signature is classifiable.  Appends reach disk at *fsync points*: every
``sync_every`` appends (1 = group size one, i.e. synchronous
durability) plus an explicit :meth:`WriteAheadLog.sync` before a
checkpoint.  Rotation starts a new segment (at a checkpoint, so the
pre-checkpoint segments become garbage) and truncation deletes whole
segments once a checkpoint covers them.

Reading back (:func:`read_operations`) enforces the recovery contract:
op sequences must be contiguous across all segments
(:class:`LogGapError` otherwise -- a deleted or missing segment shows
up exactly this way), corruption raises :class:`ChecksumMismatch`, and
a torn record is tolerable only as the physical tail of the *last*
segment (:class:`TornWriteError` anywhere else).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, BinaryIO, Mapping

from repro.obs.metrics import Counter as ObsCounter
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.persist.errors import (
    ChecksumMismatch,
    LogGapError,
    TornWriteError,
)
from repro.persist.framing import TornTail, decode_frames, encode_frame
from repro.persist.fsio import (
    FileSystem,
    remove_idempotent,
    replace_idempotent,
)
from repro.persist.retry import RetryPolicy

__all__ = [
    "WAL_FORMAT_VERSION",
    "WriteAheadLog",
    "parse_segment_name",
    "read_operations",
    "segment_name",
]

WAL_FORMAT_VERSION = 1

_PREFIX = "wal-"
_SUFFIX = ".seg"


def segment_name(base: int) -> str:
    """The file name of the segment whose first sequence is ``base``."""
    return f"{_PREFIX}{base:020d}{_SUFFIX}"


def parse_segment_name(name: str) -> int | None:
    """The base sequence encoded in a segment file name, or ``None``."""
    if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
        return None
    digits = name[len(_PREFIX) : -len(_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


class WriteAheadLog:
    """Appender over a directory of CRC-framed segments.

    Parameters
    ----------
    directory:
        The WAL directory (created if missing).
    filesystem:
        The storage seam; tests pass a
        :class:`~repro.faults.injector.FaultyFilesystem`.
    sync_every:
        Appends per fsync point.  1 (the default) makes every append
        durable before it returns -- the setting the crash-consistency
        battery assumes.
    retry:
        Backoff policy for transient write faults.
    registry:
        Metrics sink; defaults to the process-wide registry.
    """

    def __init__(
        self,
        directory: Path,
        filesystem: FileSystem,
        *,
        sync_every: int = 1,
        retry: RetryPolicy | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if sync_every < 1:
            raise ValueError("sync_every must be at least 1")
        self._directory = Path(directory)
        self._fs = filesystem
        self._sync_every = sync_every
        self._retry = retry if retry is not None else RetryPolicy()
        self._fs.makedirs(self._directory)
        self._handle: BinaryIO | None = None
        self._base: int | None = None
        self._unsynced = 0
        metrics = registry if registry is not None else get_registry()
        self._appends: ObsCounter = metrics.counter(
            "repro_wal_appends_total", "Operations appended to the WAL"
        )
        self._fsyncs: ObsCounter = metrics.counter(
            "repro_wal_fsyncs_total", "WAL fsync points reached"
        )
        self._truncated: ObsCounter = metrics.counter(
            "repro_wal_truncated_segments_total",
            "WAL segments deleted by post-checkpoint truncation",
        )

    @property
    def directory(self) -> Path:
        """The WAL directory."""
        return self._directory

    @property
    def open_base(self) -> int | None:
        """Base sequence of the currently open segment, if any."""
        return self._base

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def open_segment(self, base: int) -> None:
        """Start (or switch to) the segment whose first sequence is ``base``.

        Closes and syncs any open segment first, writes the new
        segment's header record, and syncs the directory entry.
        """
        self.close()
        path = self._directory / segment_name(base)

        def start() -> BinaryIO:
            handle = self._fs.open(path, "wb")
            handle.write(
                encode_frame(
                    {
                        "kind": "wal-header",
                        "format_version": WAL_FORMAT_VERSION,
                        "base": base,
                    }
                )
            )
            self._fs.fsync(handle)
            return handle

        self._handle = self._retry.call(start)
        self._retry.call(lambda: self._fs.sync_directory(self._directory))
        self._base = base
        self._unsynced = 0

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one record; fsync when the group threshold is hit."""
        if self._handle is None:
            raise RuntimeError("no open WAL segment; call open_segment first")
        frame = encode_frame(record)
        handle = self._handle

        def write() -> None:
            handle.write(frame)

        self._retry.call(write)
        self._appends.inc()
        self._unsynced += 1
        if self._unsynced >= self._sync_every:
            self.sync()

    def sync(self) -> None:
        """Force an fsync point: everything appended so far is durable."""
        if self._handle is None:
            return
        handle = self._handle

        def flush() -> None:
            self._fs.fsync(handle)

        self._retry.call(flush)
        self._fsyncs.inc()
        self._unsynced = 0

    def close(self) -> None:
        """Sync and close the open segment, if any."""
        if self._handle is None:
            return
        self.sync()
        self._handle.close()
        self._handle = None
        self._base = None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def segment_bases(self) -> list[int]:
        """Sorted base sequences of every segment file on disk."""
        bases = []
        for name in self._fs.listdir(self._directory):
            base = parse_segment_name(name)
            if base is not None:
                bases.append(base)
        return sorted(bases)

    def truncate_through(self, sequence: int) -> int:
        """Delete segments holding only records at or below ``sequence``.

        A segment based at ``b`` whose successor is based at ``nb``
        holds operations ``b .. nb - 1``, so it is deletable exactly
        when ``nb - 1 <= sequence``; the newest segment always
        survives.  Returns the number of segments removed.
        """
        bases = self.segment_bases()
        removed = 0
        for base, next_base in zip(bases, bases[1:], strict=False):
            if next_base - 1 <= sequence and base != self._base:
                path = self._directory / segment_name(base)
                self._retry.call(
                    lambda p=path: remove_idempotent(self._fs, p)
                )
                removed += 1
        if removed:
            self._retry.call(
                lambda: self._fs.sync_directory(self._directory)
            )
            self._truncated.inc(removed)
        return removed

    def repair_tail(self, offset: int) -> None:
        """Truncate the newest segment to ``offset`` bytes.

        The torn-tail repair: after recovery tolerates a torn record
        at the physical tail of the last segment, the damaged bytes
        must go, or a later rotation would leave the same torn record
        mid-WAL where it is fatal.  Uses the same atomic
        temp-file+rename recipe and retry policy as every other
        mutation, so a transient fault during repair is absorbed
        rather than aborting recovery.
        """
        bases = self.segment_bases()
        if not bases:
            return
        path = self._directory / segment_name(bases[-1])
        data = self._fs.read_bytes(path)
        temporary = path.with_name(path.name + ".tmp")

        def write_prefix() -> None:
            handle = self._fs.open(temporary, "wb")
            try:
                handle.write(data[:offset])
                self._fs.fsync(handle)
            finally:
                handle.close()

        self._retry.call(write_prefix)
        self._retry.call(
            lambda: replace_idempotent(self._fs, temporary, path)
        )
        self._retry.call(lambda: self._fs.sync_directory(self._directory))


def read_operations(
    filesystem: FileSystem,
    directory: Path,
    *,
    tolerate_torn_tail: bool = True,
) -> tuple[list[dict[str, Any]], dict[str, list[str]], TornTail | None]:
    """Read every op record from the WAL, oldest first.

    Returns ``(operations, schemas, torn)``: the op records, the
    merged relation schemas from the ``schema`` records the recovery
    manager writes at each segment start (so a WAL is replayable even
    before the first checkpoint), and the tolerated torn tail if any.

    Enforces the recovery contract:

    * a torn record is returned as the last element only when it is
      the physical tail of the *last* segment and ``tolerate_torn_tail``
      is set; otherwise :class:`TornWriteError` is raised;
    * corrupted frames raise :class:`ChecksumMismatch`
      (:func:`~repro.persist.framing.decode_frames` classifies);
    * op sequences must be strictly contiguous across segments --
      a missing segment or dropped record raises :class:`LogGapError`.

    The returned ``TornTail``, when present, refers to the last
    segment; the caller repairs the file by truncating to its offset.
    """
    directory = Path(directory)
    bases = []
    for name in filesystem.listdir(directory):
        base = parse_segment_name(name)
        if base is not None:
            bases.append(base)
    bases.sort()
    operations: list[dict[str, Any]] = []
    schemas: dict[str, list[str]] = {}
    torn: TornTail | None = None
    expected: int | None = None
    for position, base in enumerate(bases):
        name = segment_name(base)
        path = directory / name
        data = filesystem.read_bytes(path)
        frames, segment_torn = decode_frames(data, source=name)
        is_last = position == len(bases) - 1
        if segment_torn is not None:
            if not (is_last and tolerate_torn_tail):
                raise TornWriteError(
                    name, segment_torn.offset, segment_torn.reason
                )
            torn = segment_torn
        if frames:
            header = frames[0]
            if (
                header.get("kind") != "wal-header"
                or int(header.get("base", -1)) != base
            ):
                raise ChecksumMismatch(
                    name, 0, "segment header missing or inconsistent"
                )
            if int(header.get("format_version", 0)) > WAL_FORMAT_VERSION:
                raise ChecksumMismatch(
                    name,
                    0,
                    "segment written by a newer format version "
                    f"({header.get('format_version')})",
                )
        for frame in frames[1:]:
            kind = frame.get("kind")
            if kind == "schema":
                for rel, attributes in frame.get("relations", {}).items():
                    schemas[str(rel)] = [str(a) for a in attributes]
                continue
            if kind != "op":
                continue
            sequence = int(frame["sequence"])
            if expected is not None and sequence != expected:
                raise LogGapError(expected, sequence, source=name)
            operations.append(frame)
            expected = sequence + 1
    return operations, schemas, torn
