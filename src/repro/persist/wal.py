"""Write-ahead log: CRC-framed JSON-lines segments with fsync points.

The WAL is a directory of segment files ``wal-<base>.seg``, where
``base`` is the sequence number of the first operation the segment may
hold.  Each segment starts with a header record and then carries one
``op`` record per warehouse load event, or one columnar ``batch``
record per whole load batch::

    {"kind": "wal-header", "format_version": 1, "base": 1200}
    {"kind": "op", "sequence": 1200, "relation": "sales", "row": [7], "insert": true}
    {"kind": "batch", "first_sequence": 1201, "last_sequence": 1400,
     "relation": "sales", "columns": {"item": {"kind": "int", "values": [...]}}}
    ...

Records are framed by :mod:`repro.persist.framing`, so every crash
signature is classifiable.  Appends reach disk at *fsync points*: every
``sync_every`` records (1 = group size one, i.e. synchronous
durability) plus an explicit :meth:`WriteAheadLog.sync` before a
checkpoint.  :meth:`WriteAheadLog.append_many` encodes a whole group
of records into one buffer and hands it to a single retried write --
the durable batch-ingest fast path pays one write (and, at
``sync_every=1``, one fsync) per batch instead of per row.  Rotation
starts a new segment (at a checkpoint, so the pre-checkpoint segments
become garbage) and truncation deletes whole segments once a
checkpoint covers them.

Reading back (:func:`read_operations`) streams each segment through
:func:`~repro.persist.framing.iter_frames` (bounded memory, not a
whole-file buffer) and enforces the recovery contract: record
sequences -- an ``op``'s single sequence or a ``batch``'s
``[first_sequence, last_sequence]`` range -- must be contiguous across
all segments (:class:`LogGapError` otherwise -- a deleted or missing
segment shows up exactly this way), corruption raises
:class:`ChecksumMismatch`, and a torn record is tolerable only as the
physical tail of the *last* segment (:class:`TornWriteError` anywhere
else).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, BinaryIO, Callable, Mapping, Sequence

from repro.obs.metrics import Counter as ObsCounter
from repro.obs.metrics import Histogram as ObsHistogram
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.persist.errors import (
    ChecksumMismatch,
    LogGapError,
    TornWriteError,
)
from repro.persist.framing import (
    TornTail,
    encode_frame,
    encode_frames,
    iter_frames,
)
from repro.persist.fsio import (
    FileSystem,
    remove_idempotent,
    replace_idempotent,
)
from repro.persist.retry import RetryPolicy

__all__ = [
    "WAL_FORMAT_VERSION",
    "WriteAheadLog",
    "parse_segment_name",
    "read_operations",
    "record_range",
    "segment_name",
]

WAL_FORMAT_VERSION = 1

_PREFIX = "wal-"
_SUFFIX = ".seg"


def segment_name(base: int) -> str:
    """The file name of the segment whose first sequence is ``base``."""
    return f"{_PREFIX}{base:020d}{_SUFFIX}"


def parse_segment_name(name: str) -> int | None:
    """The base sequence encoded in a segment file name, or ``None``."""
    if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
        return None
    digits = name[len(_PREFIX) : -len(_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


class WriteAheadLog:
    """Appender over a directory of CRC-framed segments.

    Parameters
    ----------
    directory:
        The WAL directory (created if missing).
    filesystem:
        The storage seam; tests pass a
        :class:`~repro.faults.injector.FaultyFilesystem`.
    sync_every:
        Appends per fsync point.  1 (the default) makes every append
        durable before it returns -- the setting the crash-consistency
        battery assumes.
    retry:
        Backoff policy for transient write faults.
    registry:
        Metrics sink; defaults to the process-wide registry.
    """

    def __init__(
        self,
        directory: Path,
        filesystem: FileSystem,
        *,
        sync_every: int = 1,
        retry: RetryPolicy | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if sync_every < 1:
            raise ValueError("sync_every must be at least 1")
        self._directory = Path(directory)
        self._fs = filesystem
        self._sync_every = sync_every
        self._retry = retry if retry is not None else RetryPolicy()
        self._fs.makedirs(self._directory)
        self._handle: BinaryIO | None = None
        # The open handle's bound write, hoisted once per segment so
        # the per-append hot path allocates no closure.
        self._write: Callable[[bytes], int] | None = None
        self._base: int | None = None
        self._unsynced = 0
        metrics = registry if registry is not None else get_registry()
        self._appends: ObsCounter = metrics.counter(
            "repro_wal_appends_total", "Operations appended to the WAL"
        )
        self._batch_appends: ObsCounter = metrics.counter(
            "repro_wal_batch_appends_total",
            "Grouped append_many calls (one buffered write each)",
        )
        self._bytes_written: ObsCounter = metrics.counter(
            "repro_wal_bytes_written_total",
            "Frame bytes handed to WAL segment writes",
        )
        self._fsyncs: ObsCounter = metrics.counter(
            "repro_wal_fsyncs_total", "WAL fsync points reached"
        )
        self._records_per_fsync: ObsHistogram = metrics.histogram(
            "repro_wal_records_per_fsync",
            "Records made durable per WAL fsync point (group size)",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1024.0),
        )
        self._truncated: ObsCounter = metrics.counter(
            "repro_wal_truncated_segments_total",
            "WAL segments deleted by post-checkpoint truncation",
        )

    @property
    def directory(self) -> Path:
        """The WAL directory."""
        return self._directory

    @property
    def open_base(self) -> int | None:
        """Base sequence of the currently open segment, if any."""
        return self._base

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def open_segment(self, base: int) -> None:
        """Start (or switch to) the segment whose first sequence is ``base``.

        Closes and syncs any open segment first, writes the new
        segment's header record, and syncs the directory entry.
        """
        self.close()
        path = self._directory / segment_name(base)

        def start() -> BinaryIO:
            handle = self._fs.open(path, "wb")
            handle.write(
                encode_frame(
                    {
                        "kind": "wal-header",
                        "format_version": WAL_FORMAT_VERSION,
                        "base": base,
                    }
                )
            )
            self._fs.fsync(handle)
            return handle

        self._handle = self._retry.call(start)
        self._write = self._handle.write
        self._retry.call(lambda: self._fs.sync_directory(self._directory))
        self._base = base
        self._unsynced = 0

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one record; fsync when the group threshold is hit."""
        if self._write is None:
            raise RuntimeError("no open WAL segment; call open_segment first")
        frame = encode_frame(record)
        self._retry.call(self._write, frame)
        self._appends.inc()
        self._bytes_written.inc(len(frame))
        self._unsynced += 1
        if self._unsynced >= self._sync_every:
            self.sync()

    def append_many(self, records: Sequence[Mapping[str, Any]]) -> int:
        """Append a group of records as **one** buffered, retried write.

        The group-commit fast path: every frame is encoded into a
        single contiguous buffer and handed to one ``write`` call, and
        ``sync_every`` counts *records*, not calls -- appending ``k``
        records through here reaches exactly the fsync points that
        ``k`` individual :meth:`append` calls would have reached, at a
        fraction of the per-record overhead.  Returns the number of
        records appended.
        """
        if self._write is None:
            raise RuntimeError("no open WAL segment; call open_segment first")
        count = len(records)
        if count == 0:
            return 0
        buffer = encode_frames(records)
        self._retry.call(self._write, buffer)
        self._appends.inc(count)
        self._batch_appends.inc()
        self._bytes_written.inc(len(buffer))
        self._unsynced += count
        if self._unsynced >= self._sync_every:
            self.sync()
        return count

    def sync(self) -> None:
        """Force an fsync point: everything appended so far is durable."""
        if self._handle is None:
            return
        self._retry.call(self._fs.fsync, self._handle)
        self._fsyncs.inc()
        if self._unsynced:
            self._records_per_fsync.observe(float(self._unsynced))
        self._unsynced = 0

    def close(self) -> None:
        """Sync and close the open segment, if any."""
        if self._handle is None:
            return
        self.sync()
        self._handle.close()
        self._handle = None
        self._write = None
        self._base = None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def segment_bases(self) -> list[int]:
        """Sorted base sequences of every segment file on disk."""
        bases = []
        for name in self._fs.listdir(self._directory):
            base = parse_segment_name(name)
            if base is not None:
                bases.append(base)
        return sorted(bases)

    def truncate_through(self, sequence: int) -> int:
        """Delete segments holding only records at or below ``sequence``.

        A segment based at ``b`` whose successor is based at ``nb``
        holds operations ``b .. nb - 1``, so it is deletable exactly
        when ``nb - 1 <= sequence``; the newest segment always
        survives.  Returns the number of segments removed.
        """
        bases = self.segment_bases()
        removed = 0
        for base, next_base in zip(bases, bases[1:], strict=False):
            if next_base - 1 <= sequence and base != self._base:
                path = self._directory / segment_name(base)
                self._retry.call(
                    lambda p=path: remove_idempotent(self._fs, p)
                )
                removed += 1
        if removed:
            self._retry.call(
                lambda: self._fs.sync_directory(self._directory)
            )
            self._truncated.inc(removed)
        return removed

    def repair_tail(self, offset: int) -> None:
        """Truncate the newest segment to ``offset`` bytes.

        The torn-tail repair: after recovery tolerates a torn record
        at the physical tail of the last segment, the damaged bytes
        must go, or a later rotation would leave the same torn record
        mid-WAL where it is fatal.  Uses the same atomic
        temp-file+rename recipe and retry policy as every other
        mutation, so a transient fault during repair is absorbed
        rather than aborting recovery.
        """
        bases = self.segment_bases()
        if not bases:
            return
        path = self._directory / segment_name(bases[-1])
        data = self._fs.read_bytes(path)
        temporary = path.with_name(path.name + ".tmp")

        def write_prefix() -> None:
            handle = self._fs.open(temporary, "wb")
            try:
                handle.write(data[:offset])
                self._fs.fsync(handle)
            finally:
                handle.close()

        self._retry.call(write_prefix)
        self._retry.call(
            lambda: replace_idempotent(self._fs, temporary, path)
        )
        self._retry.call(lambda: self._fs.sync_directory(self._directory))


def record_range(record: Mapping[str, Any]) -> tuple[int, int] | None:
    """``(first, last)`` sequence range a WAL record covers, or ``None``.

    An ``op`` record covers its single sequence; a columnar ``batch``
    record covers ``[first_sequence, last_sequence]``.  Other kinds
    (headers, schemas) carry no sequence.
    """
    kind = record.get("kind")
    if kind == "op":
        sequence = int(record["sequence"])
        return sequence, sequence
    if kind == "batch":
        return (
            int(record["first_sequence"]),
            int(record["last_sequence"]),
        )
    return None


def read_operations(
    filesystem: FileSystem,
    directory: Path,
    *,
    tolerate_torn_tail: bool = True,
) -> tuple[list[dict[str, Any]], dict[str, list[str]], TornTail | None]:
    """Read every op/batch record from the WAL, oldest first.

    Returns ``(operations, schemas, torn)``: the ``op`` and ``batch``
    records, the merged relation schemas from the ``schema`` records
    the recovery manager writes at each segment start (so a WAL is
    replayable even before the first checkpoint), and the tolerated
    torn tail if any.  Segments are decoded *streamingly*
    (:func:`~repro.persist.framing.iter_frames`): the raw file bytes
    are never materialised whole.

    Enforces the recovery contract:

    * a torn record is tolerated only when it is the physical tail of
      the *last* segment and ``tolerate_torn_tail`` is set; otherwise
      :class:`TornWriteError` is raised;
    * corrupted frames raise :class:`ChecksumMismatch`
      (:func:`~repro.persist.framing.iter_frames` classifies);
    * record sequence ranges must be strictly contiguous across
      segments (a ``batch`` advances the expectation by its whole
      range) -- a missing segment or dropped record raises
      :class:`LogGapError`; an inverted batch range is corruption.

    The returned ``TornTail``, when present, refers to the last
    segment; the caller repairs the file by truncating to its offset.
    """
    directory = Path(directory)
    bases = []
    for name in filesystem.listdir(directory):
        base = parse_segment_name(name)
        if base is not None:
            bases.append(base)
    bases.sort()
    operations: list[dict[str, Any]] = []
    schemas: dict[str, list[str]] = {}
    torn: TornTail | None = None
    expected: int | None = None
    for position, base in enumerate(bases):
        name = segment_name(base)
        path = directory / name
        is_last = position == len(bases) - 1
        handle = filesystem.open(path, "rb")
        try:
            cursor = iter_frames(handle, source=name)
            for index, frame in enumerate(cursor):
                if index == 0:
                    if (
                        frame.get("kind") != "wal-header"
                        or int(frame.get("base", -1)) != base
                    ):
                        raise ChecksumMismatch(
                            name,
                            0,
                            "segment header missing or inconsistent",
                        )
                    version = int(frame.get("format_version", 0))
                    if version > WAL_FORMAT_VERSION:
                        raise ChecksumMismatch(
                            name,
                            0,
                            "segment written by a newer format version "
                            f"({frame.get('format_version')})",
                        )
                    continue
                kind = frame.get("kind")
                if kind == "schema":
                    relations = frame.get("relations", {})
                    for rel, attributes in relations.items():
                        schemas[str(rel)] = [str(a) for a in attributes]
                    continue
                covered = record_range(frame)
                if covered is None:
                    continue
                first, last = covered
                if last < first:
                    raise ChecksumMismatch(
                        name,
                        0,
                        f"batch record range [{first}, {last}] is "
                        "inverted",
                    )
                if expected is not None and first != expected:
                    raise LogGapError(expected, first, source=name)
                operations.append(frame)
                expected = last + 1
            segment_torn = cursor.torn
        finally:
            handle.close()
        if segment_torn is not None:
            if not (is_last and tolerate_torn_tail):
                raise TornWriteError(
                    name, segment_torn.offset, segment_torn.reason
                )
            torn = segment_torn
    return operations, schemas, torn
