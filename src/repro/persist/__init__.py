"""Durable checkpoint/WAL persistence and recovery (footnote 2).

"For persistence and recovery, combinations of snapshots and/or logs
can be stored on disk."  This package is that combination for the
synopsis warehouse:

* :mod:`repro.persist.framing` -- CRC-framed JSON-lines records; every
  crash signature (torn write vs corruption) is classifiable.
* :mod:`repro.persist.wal` -- append-only operation-log segments with
  fsync points, rotation, and truncation.
* :mod:`repro.persist.checkpoint` -- atomic (write-temp, fsync,
  rename, fsync-dir) snapshot files plus the WAL, in one store.
* :mod:`repro.persist.recovery` -- :class:`RecoveryManager`: tap the
  warehouse load stream on the live side, recover as snapshot +
  log-suffix replay after a crash.
* :mod:`repro.persist.fsio` -- the filesystem seam (the only real
  I/O call sites in the repository; reprolint RL010) through which
  :mod:`repro.faults` injects deterministic failures.
* :mod:`repro.persist.retry` / :mod:`repro.persist.errors` --
  transient-fault retry with deterministic backoff, and the typed
  error taxonomy: recovery never yields a silently wrong sample.
"""

from repro.persist.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointStore,
)
from repro.persist.errors import (
    ChecksumMismatch,
    LogGapError,
    PersistError,
    RecoveryError,
    ReplayError,
    TornWriteError,
    TransientIOError,
)
from repro.persist.columns import decode_columns, encode_columns
from repro.persist.framing import (
    HEADER_LENGTH,
    FrameCursor,
    TornTail,
    decode_frames,
    encode_frame,
    encode_frames,
    iter_frames,
)
from repro.persist.fsio import FileSystem, LocalFileSystem
from repro.persist.recovery import (
    RecoveredState,
    RecoveryManager,
    SynopsisBinding,
)
from repro.persist.retry import RetryPolicy
from repro.persist.wal import (
    WAL_FORMAT_VERSION,
    WriteAheadLog,
    read_operations,
    record_range,
    segment_name,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "ChecksumMismatch",
    "FileSystem",
    "FrameCursor",
    "HEADER_LENGTH",
    "LocalFileSystem",
    "LogGapError",
    "PersistError",
    "RecoveredState",
    "RecoveryError",
    "RecoveryManager",
    "ReplayError",
    "RetryPolicy",
    "SynopsisBinding",
    "TornTail",
    "TornWriteError",
    "TransientIOError",
    "WAL_FORMAT_VERSION",
    "WriteAheadLog",
    "decode_columns",
    "decode_frames",
    "encode_columns",
    "encode_frame",
    "encode_frames",
    "iter_frames",
    "read_operations",
    "record_range",
    "segment_name",
]
