"""The shared approximate-answer routing, parameterized by a source.

The answer path used to live inside
:class:`~repro.engine.engine.ApproximateAnswerEngine` only; the serving
layer's read-snapshot isolation needs the *same* routing to run against
a frozen copy of the synopses (a
:class:`~repro.engine.pinned.PinnedEngineView`), so the logic is
factored here behind the small :class:`AnswerSource` protocol: anything
that can look up a synopsis by ``(relation, attribute, role)`` and
report row counts / scan costs can answer queries.

Both implementations answer **byte-identically** from identical
synopsis state -- every function here is a deterministic, read-only
computation over the source -- which is exactly the property the
serving concurrency battery asserts against its serial oracle.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.concise import ConciseSample
from repro.core.reservoir import ReservoirSample
from repro.engine.queries import (
    AverageQuery,
    CountQuery,
    DistinctCountQuery,
    FrequencyQuery,
    HotListQuery,
    JoinSizeQuery,
    Query,
    SelectivityQuery,
    SumQuery,
)
from repro.engine.registry import (
    DISTINCT,
    HISTOGRAM,
    HOTLIST,
    SAMPLE,
    SynopsisRole,
)
from repro.engine.responses import QueryResponse
from repro.estimators.aggregates import (
    estimate_average,
    estimate_count,
    estimate_sum,
)
from repro.estimators.selectivity import Predicate, estimate_selectivity

__all__ = [
    "AnswerSource",
    "NoSynopsisError",
    "answer_approximate",
    "estimate_distinct_value",
    "sample_points",
]


class NoSynopsisError(RuntimeError):
    """Raised when no registered synopsis can answer a query
    approximately and exact fallback was not allowed."""


class AnswerSource(Protocol):
    """What the approximate answer path reads: synopses plus counts.

    The live engine implements it over its registry and warehouse; a
    :class:`~repro.engine.pinned.PinnedEngineView` implements it over
    state captured at one ingest epoch.
    """

    @property
    def conservative_intervals(self) -> bool:
        """Whether estimates carry distribution-free intervals."""
        ...

    def lookup_synopsis(
        self, relation: str, attribute: str, role: SynopsisRole
    ) -> object | None:
        """The synopsis registered under a key, or ``None``."""
        ...

    def rows_loaded(self, relation: str) -> int:
        """Net rows observed for a relation (the population size)."""
        ...

    def scan_cost(self, relation: str) -> int:
        """Disk accesses a full base-data scan would cost."""
        ...


def sample_points(
    source: AnswerSource, relation: str, attribute: str
) -> np.ndarray:
    """The uniform-sample points registered for an attribute."""
    sample = source.lookup_synopsis(relation, attribute, SAMPLE)
    if sample is None:
        raise NoSynopsisError(
            f"no sample registered for {relation}.{attribute}"
        )
    if isinstance(sample, ConciseSample):
        return sample.sample_points()
    if isinstance(sample, ReservoirSample):
        return sample.as_array()
    raise NoSynopsisError(
        f"registered sample for {relation}.{attribute} has an "
        "unsupported type"
    )


def estimate_distinct_value(
    source: AnswerSource, relation: str, attribute: str
) -> float:
    """Best-available distinct-count estimate for a join column."""
    sketch = source.lookup_synopsis(relation, attribute, DISTINCT)
    if sketch is not None:
        return float(sketch.estimate())  # type: ignore[attr-defined]
    sample = source.lookup_synopsis(relation, attribute, SAMPLE)
    if sample is not None:
        from repro.estimators.distinct import (
            frequency_profile,
            guaranteed_error_estimator,
        )

        points = sample_points(source, relation, attribute)
        if len(points):
            return guaranteed_error_estimator(
                frequency_profile(points),
                max(source.rows_loaded(relation), len(points)),
            )
    # Fall back to the hot list's own support (a lower bound).
    reporter = source.lookup_synopsis(relation, attribute, HOTLIST)
    if reporter is not None:
        return float(len(reporter.report(10**6)))  # type: ignore[attr-defined]
    raise NoSynopsisError(
        f"no synopsis can estimate distinct({relation}.{attribute})"
    )


def _answer_join_size(
    source: AnswerSource, query: JoinSizeQuery
) -> QueryResponse:
    from repro.estimators.joins import join_size_from_hotlists

    sides = []
    for relation, attribute in (
        (query.left_relation, query.left_attribute),
        (query.right_relation, query.right_attribute),
    ):
        reporter = source.lookup_synopsis(relation, attribute, HOTLIST)
        if reporter is None:
            raise NoSynopsisError(
                f"no hot-list synopsis for {relation}.{attribute}"
            )
        sides.append(
            (
                reporter.report(  # type: ignore[attr-defined]
                    max(2, reporter.footprint_bound // 2)  # type: ignore[attr-defined]
                ),
                source.rows_loaded(relation),
                estimate_distinct_value(source, relation, attribute),
            )
        )
    (left_answer, left_total, left_distinct) = sides[0]
    (right_answer, right_total, right_distinct) = sides[1]
    estimate = join_size_from_hotlists(
        left_answer,
        right_answer,
        left_total,
        right_total,
        left_distinct,
        right_distinct,
    )
    exact_cost = source.scan_cost(query.left_relation) + source.scan_cost(
        query.right_relation
    )
    return QueryResponse(
        answer=estimate,
        interval=None,
        method="hotlist-join",
        is_exact=False,
        exact_cost_estimate=exact_cost,
    )


def _answer_from_histogram(
    query: "CountQuery | SelectivityQuery",
    histogram: object,
    population: int,
    scan_cost: int,
) -> QueryResponse:
    """Answer a count/selectivity query from a histogram synopsis."""
    predicate = query.predicate
    if predicate is None:
        count = float(population)
    elif predicate.equals is not None:
        count = float(
            histogram.estimate_equality(predicate.equals)  # type: ignore[attr-defined]
        )
    else:
        low = (
            predicate.low
            if predicate.low is not None
            else -float("inf")
        )
        high = (
            predicate.high
            if predicate.high is not None
            else float("inf")
        )
        count = float(histogram.estimate_range(low, high))  # type: ignore[attr-defined]
    if isinstance(query, SelectivityQuery):
        answer = count / population if population else 0.0
    else:
        answer = count
    return QueryResponse(
        answer=answer,
        interval=None,
        method=type(histogram).__name__,
        is_exact=False,
        exact_cost_estimate=scan_cost,
    )


def answer_approximate(
    source: AnswerSource, query: Query
) -> QueryResponse:
    """Answer a query from the source's synopses alone.

    Deterministic and read-only: two sources holding identical
    synopsis state return byte-identical responses.  Raises
    :class:`NoSynopsisError` when nothing registered can answer.
    """
    if isinstance(query, JoinSizeQuery):
        return _answer_join_size(source, query)
    scan_cost = source.scan_cost(query.relation)
    population = source.rows_loaded(query.relation)

    if isinstance(query, HotListQuery):
        reporter = source.lookup_synopsis(
            query.relation, query.attribute, HOTLIST
        )
        if reporter is None:
            raise NoSynopsisError(
                f"no hot-list synopsis for "
                f"{query.relation}.{query.attribute}"
            )
        answer = reporter.report(query.k)  # type: ignore[attr-defined]
        return QueryResponse(
            answer=answer,
            interval=reporter.top_interval(answer),  # type: ignore[attr-defined]
            method=type(reporter).__name__,
            is_exact=False,
            exact_cost_estimate=scan_cost,
        )

    if isinstance(query, DistinctCountQuery):
        sketch = source.lookup_synopsis(
            query.relation, query.attribute, DISTINCT
        )
        if sketch is None:
            raise NoSynopsisError(
                f"no distinct-count synopsis for "
                f"{query.relation}.{query.attribute}"
            )
        return QueryResponse(
            answer=float(sketch.estimate()),  # type: ignore[attr-defined]
            interval=None,
            method=type(sketch).__name__,
            is_exact=False,
            exact_cost_estimate=scan_cost,
        )

    if isinstance(query, (CountQuery, SelectivityQuery)):
        has_sample = (
            source.lookup_synopsis(query.relation, query.attribute, SAMPLE)
            is not None
        )
        histogram = source.lookup_synopsis(
            query.relation, query.attribute, HISTOGRAM
        )
        if not has_sample and histogram is not None:
            return _answer_from_histogram(
                query, histogram, population, scan_cost
            )

    points = sample_points(source, query.relation, query.attribute)
    conservative = source.conservative_intervals
    if isinstance(query, FrequencyQuery):
        predicate = Predicate(equals=query.value)
        estimate = estimate_count(
            points,
            population,
            predicate.mask,
            conservative=conservative,
        )
    elif isinstance(query, CountQuery):
        mask = query.predicate.mask if query.predicate else None
        estimate = estimate_count(
            points, population, mask, conservative=conservative
        )
    elif isinstance(query, SumQuery):
        mask = query.predicate.mask if query.predicate else None
        estimate = estimate_sum(
            points, population, mask, conservative=conservative
        )
    elif isinstance(query, AverageQuery):
        mask = query.predicate.mask if query.predicate else None
        estimate = estimate_average(
            points, mask, conservative=conservative
        )
    elif isinstance(query, SelectivityQuery):
        if query.predicate is None:
            raise ValueError("selectivity query needs a predicate")
        selectivity = estimate_selectivity(points, query.predicate)
        return QueryResponse(
            answer=selectivity.selectivity,
            interval=selectivity.interval,
            method="sample",
            is_exact=False,
            exact_cost_estimate=scan_cost,
        )
    else:  # pragma: no cover - exhaustive routing guard
        raise TypeError(f"unsupported query {query!r}")

    return QueryResponse(
        answer=estimate.value,
        interval=estimate.interval,
        method="sample",
        is_exact=False,
        exact_cost_estimate=scan_cost,
    )
