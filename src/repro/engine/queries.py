"""Query types the approximate answer engine understands."""

from __future__ import annotations

from dataclasses import dataclass

from repro.estimators.selectivity import Predicate

__all__ = [
    "AverageQuery",
    "CountQuery",
    "DistinctCountQuery",
    "FrequencyQuery",
    "HotListQuery",
    "JoinSizeQuery",
    "Query",
    "SelectivityQuery",
    "SumQuery",
]


@dataclass(frozen=True)
class _AttributeQuery:
    """Base fields: which relation/attribute the query targets."""

    relation: str
    attribute: str


@dataclass(frozen=True)
class HotListQuery(_AttributeQuery):
    """The ``k`` most frequent values with (approximate) counts."""

    k: int = 10


@dataclass(frozen=True)
class FrequencyQuery(_AttributeQuery):
    """How many rows carry a specific value."""

    value: int = 0


@dataclass(frozen=True)
class CountQuery(_AttributeQuery):
    """How many rows match the predicate (all rows when ``None``)."""

    predicate: Predicate | None = None


@dataclass(frozen=True)
class SumQuery(_AttributeQuery):
    """Sum of the attribute over rows matching the predicate."""

    predicate: Predicate | None = None


@dataclass(frozen=True)
class AverageQuery(_AttributeQuery):
    """Average attribute value over rows matching the predicate."""

    predicate: Predicate | None = None


@dataclass(frozen=True)
class DistinctCountQuery(_AttributeQuery):
    """Number of distinct values of the attribute."""


@dataclass(frozen=True)
class SelectivityQuery(_AttributeQuery):
    """Fraction of rows matching the predicate."""

    predicate: Predicate | None = None


@dataclass(frozen=True)
class JoinSizeQuery:
    """Size of the equi-join of two relation attributes.

    Answered approximately from the hot lists registered on both join
    columns (plus distinct-count synopses where available) -- the
    Section 1.2 join-size use case of hot lists.
    """

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str


Query = (
    HotListQuery
    | FrequencyQuery
    | CountQuery
    | SumQuery
    | AverageQuery
    | DistinctCountQuery
    | SelectivityQuery
    | JoinSizeQuery
)
