"""Epoch-pinned, read-only views of an engine's synopsis state.

A :class:`PinnedEngineView` deep-copies every registered synopsis plus
the row counts and scan costs at one instant, so it keeps answering
queries *as of that instant* while the live engine absorbs further
loads.  The serving layer hands one to each session that asks for
read-snapshot isolation: concurrent batch ingest advances the live
synopses but can never change what a pinned session sees.

The copy shares the answer routing in :mod:`repro.engine.answering`
with the live engine, so a pinned view and a live engine holding
identical synopsis state return byte-identical responses -- the
property the serving concurrency battery checks against a serial
oracle.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Mapping

from repro.engine.answering import answer_approximate
from repro.engine.queries import Query
from repro.engine.registry import SynopsisRole
from repro.engine.responses import QueryResponse

if TYPE_CHECKING:
    from repro.engine.engine import ApproximateAnswerEngine

__all__ = ["PinnedEngineView"]


class PinnedEngineView:
    """A frozen AnswerSource captured from a live engine.

    Build one with :meth:`ApproximateAnswerEngine.pin_view` (or
    :meth:`capture`); never mutate the copied synopses.  Exact queries
    are refused -- exactness requires scanning live base data, which a
    snapshot by definition does not have.
    """

    def __init__(
        self,
        *,
        synopses: Mapping[tuple[str, str, SynopsisRole], object],
        row_counts: Mapping[str, int],
        scan_costs: Mapping[str, int],
        epochs: Mapping[str, tuple[int, int]],
        conservative_intervals: bool,
    ) -> None:
        self._synopses = dict(synopses)
        self._row_counts = dict(row_counts)
        self._scan_costs = dict(scan_costs)
        self._epochs = dict(epochs)
        self.conservative_intervals = conservative_intervals

    @classmethod
    def capture(cls, engine: ApproximateAnswerEngine) -> PinnedEngineView:
        """Deep-copy an engine's answerable state at this instant.

        One shared memo keeps identity: a synopsis registered under
        several roles (a ConciseHotList serving both the sample and the
        hot list) stays one object in the copy, exactly as it is live.
        """
        memo: dict[int, object] = {}
        synopses: dict[tuple[str, str, SynopsisRole], object] = {}
        for relation, attribute, role, synopsis in engine.registry.entries():
            synopses[(relation, attribute, role)] = copy.deepcopy(
                synopsis, memo
            )
        row_counts = {
            name: engine.rows_loaded(name)
            for name in engine.warehouse.relation_names()
        }
        scan_costs = {
            name: engine.warehouse.scan_cost(name)
            for name in engine.warehouse.relation_names()
        }
        epochs = {
            name: (
                engine.warehouse.relation(name).epoch,
                engine._synopsis_epochs.get(name, 0),
            )
            for name in engine.warehouse.relation_names()
        }
        return cls(
            synopses=synopses,
            row_counts=row_counts,
            scan_costs=scan_costs,
            epochs=epochs,
            conservative_intervals=engine.conservative_intervals,
        )

    # -- the AnswerSource protocol ---------------------------------------

    def lookup_synopsis(
        self, relation: str, attribute: str, role: SynopsisRole
    ) -> object | None:
        """The pinned synopsis copy for a key, or ``None``."""
        return self._synopses.get((relation, attribute, role))

    def rows_loaded(self, relation: str) -> int:
        """Net rows the engine had observed at capture time."""
        return self._row_counts.get(relation, 0)

    def scan_cost(self, relation: str) -> int:
        """What a full scan would have cost at capture time."""
        return self._scan_costs.get(relation, 0)

    # -- answering -------------------------------------------------------

    def answer(self, query: Query) -> QueryResponse:
        """Answer approximately from the pinned synopses.

        Deterministic: repeated calls with the same query return the
        same response regardless of ingest into the live engine.
        """
        return answer_approximate(self, query)

    def epoch_token(self, relation: str) -> tuple[int, int]:
        """The (ingest epoch, synopsis epoch) pinned for a relation."""
        try:
            return self._epochs[relation]
        except KeyError:
            raise KeyError(
                f"relation {relation!r} did not exist at capture time"
            ) from None

    def relation_names(self) -> list[str]:
        """Sorted names of the relations that existed at capture."""
        return sorted(self._epochs)
