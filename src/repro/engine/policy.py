"""Answer policies: automating the approximate-vs-exact decision.

Paper Section 1: "The user can then decide whether or not to have an
exact answer computed from the base data, based on the user's desire
for the exact answer and the estimated time for computing an exact
answer."  :class:`AnswerPolicy` encodes that decision rule so a client
can make it programmatically: accept the approximate answer when its
confidence interval is tight enough, escalate to the exact computation
only when it is both needed and affordable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.engine import ApproximateAnswerEngine
from repro.engine.queries import Query
from repro.engine.responses import QueryResponse

__all__ = ["AnswerPolicy", "PolicyDecision", "answer_with_policy"]


@dataclass(frozen=True)
class AnswerPolicy:
    """The client's tolerance for approximation and for exact cost.

    Attributes
    ----------
    max_relative_width:
        Accept an approximate answer whose confidence interval's width
        relative to the estimate is at most this (e.g. 0.1 = ±5%).
        Answers without an interval (hot lists, sketches) are treated
        as acceptable -- they carry their own guarantees.
    max_exact_cost:
        Escalate to the exact computation only if its estimated disk
        cost is at most this; ``None`` means cost is no object.
    """

    max_relative_width: float = 0.1
    max_exact_cost: int | None = None

    def __post_init__(self) -> None:
        if self.max_relative_width < 0:
            raise ValueError("max_relative_width must be non-negative")
        if self.max_exact_cost is not None and self.max_exact_cost < 0:
            raise ValueError("max_exact_cost must be non-negative")

    def accepts(self, response: QueryResponse) -> bool:
        """Whether the approximate response meets the tolerance."""
        if response.is_exact:
            return True
        if response.interval is None:
            return True
        reference = max(abs(float(response.answer)), 1e-12)
        return response.interval.width / reference <= (
            self.max_relative_width
        )

    def can_afford_exact(self, response: QueryResponse) -> bool:
        """Whether escalating to exact is within the cost budget."""
        if self.max_exact_cost is None:
            return True
        return response.exact_cost_estimate <= self.max_exact_cost


@dataclass(frozen=True)
class PolicyDecision:
    """The outcome of a policy-driven answer."""

    response: QueryResponse
    escalated: bool
    reason: str


def answer_with_policy(
    engine: ApproximateAnswerEngine,
    query: Query,
    policy: AnswerPolicy,
) -> PolicyDecision:
    """Answer a query under a policy.

    First gets the approximate answer; if its interval is too wide and
    the exact recomputation is affordable, escalates.  Returns the
    chosen response together with the decision trail.
    """
    approximate = engine.answer(query)
    if policy.accepts(approximate):
        return PolicyDecision(
            response=approximate,
            escalated=False,
            reason="approximate answer within tolerance",
        )
    if not policy.can_afford_exact(approximate):
        return PolicyDecision(
            response=approximate,
            escalated=False,
            reason=(
                "approximate answer too wide but exact recomputation "
                f"({approximate.exact_cost_estimate:,} accesses) "
                "exceeds the cost budget"
            ),
        )
    exact = engine.answer(query, exact=True)
    return PolicyDecision(
        response=exact,
        escalated=True,
        reason="approximate answer too wide; recomputed exactly",
    )
