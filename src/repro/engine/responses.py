"""Response type returned by the approximate answer engine.

A response carries the approximate answer, the accuracy measure the
paper calls for (a confidence interval where the estimator provides
one), and enough provenance for the user to decide "whether or not to
have an exact answer computed from the base data": which method
produced it, whether it is exact, and the estimated base-data cost an
exact answer would incur.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.estimators.intervals import ConfidenceInterval
from repro.hotlist.base import HotListAnswer

__all__ = ["QueryResponse"]


@dataclass(frozen=True)
class QueryResponse:
    """One answer from the engine.

    Attributes
    ----------
    answer:
        The scalar estimate, or a :class:`HotListAnswer` for hot-list
        queries.
    interval:
        Confidence interval where applicable, else ``None``.
    method:
        Which synopsis or path produced the answer (e.g.
        ``"concise-sample"``, ``"fm-sketch"``, ``"exact-scan"``).
    is_exact:
        ``True`` when the answer came from base data (or a synopsis
        that happens to be exact, like an unsaturated full histogram).
    disk_accesses:
        Simulated base-data accesses this answer itself cost (0 for
        synopsis answers).
    exact_cost_estimate:
        Estimated disk accesses an exact recomputation would cost --
        the number the user weighs against the approximation.
    """

    answer: float | HotListAnswer
    interval: ConfidenceInterval | None
    method: str
    is_exact: bool
    disk_accesses: int = 0
    exact_cost_estimate: int = 0

    def __str__(self) -> str:
        if isinstance(self.answer, HotListAnswer):
            body = f"hot list of {len(self.answer)} values"
        elif self.interval is not None:
            body = (
                f"{self.answer:.4g} "
                f"[{self.interval.low:.4g}, {self.interval.high:.4g}] "
                f"@{self.interval.confidence:.0%}"
            )
        else:
            body = f"{self.answer:.6g}"
        kind = "exact" if self.is_exact else "approximate"
        return f"{body} ({kind}, via {self.method})"
