"""The approximate answer engine (paper Figures 1-2).

The engine subscribes to a warehouse's load stream, forwards attribute
values to registered synopses, and answers queries from those synopses
alone -- zero base-data accesses -- returning a
:class:`~repro.engine.responses.QueryResponse` with an accuracy
measure.  Callers can demand exactness (``exact=True``) to model the
user's follow-up decision; the exact path scans base data and is
charged accordingly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.concise import ConciseSample
from repro.core.reservoir import ReservoirSample
from repro.engine import answering
from repro.engine.answering import NoSynopsisError
from repro.engine.cache import EpochToken, QueryResultCache
from repro.engine.queries import (
    AverageQuery,
    CountQuery,
    DistinctCountQuery,
    FrequencyQuery,
    HotListQuery,
    JoinSizeQuery,
    Query,
    SelectivityQuery,
    SumQuery,
)
from repro.engine.registry import (
    DISTINCT,
    HISTOGRAM,
    HOTLIST,
    SAMPLE,
    SynopsisRegistry,
    SynopsisRole,
)
from repro.engine.protocols import DistinctSketch, Histogram
from repro.engine.responses import QueryResponse
from repro.engine.warehouse import DataWarehouse
from repro.hotlist.base import HotListAnswer, HotListReporter
from repro.obs.audit import CalibrationAuditor
from repro.obs.tracing import ActiveTrace, QueryTracer
from repro.stats.frequency import FrequencyTable

if TYPE_CHECKING:
    from repro.engine.pinned import PinnedEngineView

__all__ = ["ApproximateAnswerEngine", "NoSynopsisError"]


class _EngineTap:
    """The engine's warehouse subscription, row- and batch-capable.

    A plain bound method cannot carry the ``observe_batch`` attribute
    the warehouse probes for, so the engine registers this adapter:
    per-row events call the engine's ``_observe`` and whole batches go
    to ``_observe_batch``.
    """

    def __init__(self, engine: "ApproximateAnswerEngine") -> None:
        self._engine = engine

    def __call__(
        self, relation_name: str, row: tuple, is_insert: bool
    ) -> None:
        self._engine._observe(relation_name, row, is_insert)

    def observe_batch(
        self, relation_name: str, columns: dict[str, np.ndarray]
    ) -> None:
        self._engine._observe_batch(relation_name, columns)


class ApproximateAnswerEngine:
    """Routes queries to synopses maintained over the load stream.

    Parameters
    ----------
    warehouse:
        The warehouse whose load stream the engine observes.
    budget_words:
        Optional total memory budget for all registered synopses.
    tracer:
        Optional :class:`~repro.obs.tracing.QueryTracer`; when set
        (at construction or later via the ``tracer`` attribute) every
        :meth:`answer` call is recorded as a query span.  The engine
        never reads a clock itself -- timing lives entirely in the
        tracer.
    cache:
        Optional :class:`~repro.engine.cache.QueryResultCache`; when
        set, approximate answers are memoized and invalidated by the
        ingest epochs of the relations each query reads.  The exact
        path is never cached -- it must scan base data and charge the
        disk accesses every time.
    auditor:
        Optional :class:`~repro.obs.audit.CalibrationAuditor`; when
        set, a seeded fraction of approximate answers (cache hits
        included) is shadowed with the exact path and scored against
        the claimed interval.  Audit shadows charge base-data disk
        accesses -- that is the price of the calibration signal.
    conservative_intervals:
        When true, count/sum/average estimates carry distribution-free
        (Hoeffding / empirical-Bernstein) intervals instead of CLT
        ones: wider, but valid at any finite sample size, so audited
        coverage provably meets the claimed confidence.
    """

    def __init__(
        self,
        warehouse: DataWarehouse,
        budget_words: int | None = None,
        *,
        tracer: QueryTracer | None = None,
        cache: QueryResultCache | None = None,
        auditor: CalibrationAuditor | None = None,
        conservative_intervals: bool = False,
    ) -> None:
        self.warehouse = warehouse
        self.registry = SynopsisRegistry(budget_words)
        self.tracer = tracer
        self.cache = cache
        self.auditor = auditor
        self.conservative_intervals = conservative_intervals
        self._row_counts: dict[str, int] = {}
        self._composites: dict[str, list[tuple[str, ...]]] = {}
        self._synopsis_epochs: dict[str, int] = {}
        warehouse.add_observer(_EngineTap(self))

    # ------------------------------------------------------------------
    # Load-stream observation
    # ------------------------------------------------------------------

    def _observe(self, relation_name: str, row: tuple, is_insert: bool) -> None:
        """Forward one load event to every synopsis on that relation."""
        delta = 1 if is_insert else -1
        self._row_counts[relation_name] = (
            self._row_counts.get(relation_name, 0) + delta
        )
        relation = self.warehouse.relation(relation_name)
        for attribute_index, attribute in enumerate(relation.attributes):
            value = row[attribute_index]
            self._forward(relation_name, attribute, int(value), is_insert)
        for attributes in self._composites.get(relation_name, []):
            from repro.engine.composite import (
                composite_name,
                encode_composite,
            )

            encoded = encode_composite(
                tuple(
                    int(row[relation.attribute_index(attribute)])
                    for attribute in attributes
                )
            )
            self._forward(
                relation_name,
                composite_name(attributes),
                encoded,
                is_insert,
            )

    def _forward(
        self,
        relation_name: str,
        attribute: str,
        value: int,
        is_insert: bool,
    ) -> None:
        """Deliver one attribute value to the synopses registered on it."""
        for _, synopsis in self.registry.for_attribute(
            relation_name, attribute
        ):
            if not hasattr(synopsis, "insert"):
                # Statically built synopses (histograms) do not observe
                # the load stream; they are rebuilt on demand.
                continue
            if is_insert:
                synopsis.insert(value)
            else:
                delete = getattr(synopsis, "delete", None)
                if delete is None:
                    raise RuntimeError(
                        f"synopsis {synopsis!r} cannot handle deletes; "
                        "use a counting sample or remove it before "
                        "deleting from the warehouse"
                    )
                delete(value)

    def _observe_batch(
        self, relation_name: str, columns: dict[str, np.ndarray]
    ) -> None:
        """Forward a whole load batch to every synopsis in one call."""
        length = len(next(iter(columns.values())))
        self._row_counts[relation_name] = (
            self._row_counts.get(relation_name, 0) + length
        )
        relation = self.warehouse.relation(relation_name)
        for attribute in relation.attributes:
            self._forward_batch(
                relation_name, attribute, columns[attribute]
            )
        for attributes in self._composites.get(relation_name, []):
            from repro.engine.composite import (
                composite_name,
                encode_composite,
                encode_composite_array,
            )

            parts = tuple(
                columns[attribute] for attribute in attributes
            )
            name = composite_name(attributes)
            try:
                encoded = encode_composite_array(parts)
            except ValueError:
                # Wider-than-pair tuples overflow int64: encode row by
                # row with Python bigints and use the per-row path.
                for row in zip(*(part.tolist() for part in parts), strict=True):
                    self._forward(
                        relation_name,
                        name,
                        encode_composite(
                            tuple(int(value) for value in row)
                        ),
                        True,
                    )
                continue
            self._forward_batch(relation_name, name, encoded)

    def _forward_batch(
        self,
        relation_name: str,
        attribute: str,
        values: np.ndarray,
    ) -> None:
        """Deliver one attribute column to the synopses registered on it."""
        prepared: np.ndarray | None = None
        for _, synopsis in self.registry.for_attribute(
            relation_name, attribute
        ):
            if not hasattr(synopsis, "insert"):
                # Statically built synopses (histograms) do not observe
                # the load stream; they are rebuilt on demand.
                continue
            if prepared is None:
                prepared = np.asarray(values)
                if prepared.dtype.kind not in "iu":
                    # Per-row forwarding casts with int(); match it.
                    prepared = prepared.astype(np.int64)
            insert_array = getattr(synopsis, "insert_array", None)
            if insert_array is not None:
                insert_array(prepared)
                continue
            insert_many = getattr(synopsis, "insert_many", None)
            if insert_many is not None:
                insert_many(prepared.tolist())
                continue
            insert = synopsis.insert
            rows = prepared.tolist()
            for value in rows:
                insert(value)

    def rows_loaded(self, relation_name: str) -> int:
        """Net rows the engine has observed for a relation."""
        return self._row_counts.get(relation_name, 0)

    def adopt_row_counts(self) -> None:
        """Prime population counts from the warehouse's live rows.

        A fresh engine attached to a recovered warehouse has observed
        no load events, yet sample-scaling estimators need the
        population size; without this the engine would answer as if
        every relation were empty until new loads arrive.
        """
        for name in self.warehouse.relation_names():
            self._row_counts[name] = self.warehouse.relation(name).size

    # ------------------------------------------------------------------
    # Registration conveniences
    # ------------------------------------------------------------------

    def register_sample(
        self,
        relation: str,
        attribute: str,
        sample: ConciseSample | ReservoirSample,
    ) -> None:
        """Register a uniform-sample synopsis for aggregates."""
        self.registry.register(relation, attribute, SAMPLE, sample)
        self.bump_epoch(relation)

    def register_hotlist(
        self, relation: str, attribute: str, reporter: HotListReporter
    ) -> None:
        """Register a hot-list reporter."""
        self.registry.register(relation, attribute, HOTLIST, reporter)
        self.bump_epoch(relation)

    def register_distinct(
        self, relation: str, attribute: str, sketch: DistinctSketch
    ) -> None:
        """Register a distinct-count sketch."""
        self.registry.register(relation, attribute, DISTINCT, sketch)
        self.bump_epoch(relation)

    def register_histogram(
        self, relation: str, attribute: str, histogram: Histogram
    ) -> None:
        """Register a statically built histogram synopsis.

        Histograms do not observe the load stream (they are rebuilt on
        demand from a backing sample); the engine uses them to answer
        range COUNT and SELECTIVITY queries when no uniform sample is
        registered, or via :meth:`refresh_histogram` after loads.
        """
        self.registry.register(relation, attribute, HISTOGRAM, histogram)
        self.bump_epoch(relation)

    def refresh_histogram(
        self, relation: str, attribute: str, histogram: Histogram
    ) -> None:
        """Swap in a freshly rebuilt histogram for an attribute."""
        self.registry.unregister(relation, attribute, HISTOGRAM)
        self.registry.register(relation, attribute, HISTOGRAM, histogram)
        self.bump_epoch(relation)

    def register_composite_hotlist(
        self,
        relation: str,
        attributes: tuple[str, ...],
        reporter: HotListReporter,
    ) -> str:
        """Register a hot list over an ordered attribute tuple.

        Returns the canonical attribute name under which the composite
        is addressable in queries, e.g. ``"store_id+product_id"``.
        Answers carry encoded values; decode them with
        :func:`repro.engine.composite.decode_composite_answer`.
        """
        from repro.engine.composite import composite_name

        table = self.warehouse.relation(relation)
        for attribute in attributes:
            table.attribute_index(attribute)  # validates existence
        name = composite_name(attributes)
        self.registry.register(relation, name, HOTLIST, reporter)
        self._composites.setdefault(relation, [])
        if attributes not in self._composites[relation]:
            self._composites[relation].append(tuple(attributes))
        self.bump_epoch(relation)
        return name

    # ------------------------------------------------------------------
    # Cache epochs
    # ------------------------------------------------------------------

    def bump_epoch(self, relation: str) -> None:
        """Advance a relation's synopsis epoch.

        Invalidates every cached answer over the relation.  The engine
        bumps it automatically when a synopsis is (re-)registered or a
        histogram refreshed; call it manually after mutating a
        registered synopsis out of band (e.g. merging a distributed
        partial sample into it).
        """
        self._synopsis_epochs[relation] = (
            self._synopsis_epochs.get(relation, 0) + 1
        )

    def _epoch_token(self, query: Query) -> EpochToken:
        """Current epochs of every relation the query reads.

        Combines the relation's own ingest epoch (advanced by inserts,
        batches, and deletes -- snapshot restore replaces the relation
        object, which restarts the sequence from its row count) with
        the engine's synopsis epoch (advanced by registrations and
        :meth:`bump_epoch`).
        """
        synopsis_epochs = self._synopsis_epochs
        if isinstance(query, JoinSizeQuery):
            names = sorted({query.left_relation, query.right_relation})
            return tuple(
                (
                    name,
                    (
                        self.warehouse.relation(name).epoch,
                        synopsis_epochs.get(name, 0),
                    ),
                )
                for name in names
            )
        # Single-relation fast path: this runs on every cache hit, so
        # skip the set/sort round trip the join case needs.
        name = query.relation
        return (
            (
                name,
                (
                    self.warehouse.relation(name).epoch,
                    synopsis_epochs.get(name, 0),
                ),
            ),
        )

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def answer(self, query: Query, exact: bool = False) -> QueryResponse:
        """Answer a query, approximately by default.

        With ``exact=True`` the base data is scanned (and the response
        carries the disk cost); otherwise the engine answers purely
        from synopses and raises :class:`NoSynopsisError` when none is
        registered for the query.

        When a cache is attached, approximate answers are served from
        it while the target relations' epochs are unchanged; any
        ingest into a relation invalidates exactly that relation's
        entries.  When a tracer is attached, the call is recorded as
        one query span (including errors, which are re-raised), with
        the cache outcome on the span and child spans for the cache
        lookup, synopsis answering, exact fallback, and audit shadow
        phases.  When an auditor is attached, approximate answers may
        additionally be shadowed with the exact path and scored.
        """
        tracer = self.tracer
        trace = tracer.start_trace() if tracer is not None else None
        cache_status: str | None = None
        try:
            if exact:
                if tracer is not None and trace is not None:
                    with tracer.child(trace, "exact_fallback"):
                        response = self._answer_exact(query)
                else:
                    response = self._answer_exact(query)
            else:
                response, cache_status = self._answer_with_cache(
                    query, tracer, trace
                )
                self._maybe_audit(query, response, tracer, trace)
        except Exception as error:
            if tracer is not None and trace is not None:
                tracer.finish_error(
                    trace, query, error, requested_exact=exact
                )
            raise
        if tracer is not None and trace is not None:
            tracer.finish(
                trace,
                query,
                response,
                requested_exact=exact,
                cache=cache_status,
            )
        return response

    def _answer_with_cache(
        self,
        query: Query,
        tracer: QueryTracer | None,
        trace: ActiveTrace | None,
    ) -> tuple[QueryResponse, str | None]:
        """The approximate path, through the cache when one is attached.

        Returns the response and the span-level cache outcome (``None``
        without a cache; an invalidated lookup reports ``"miss"`` on
        the root span -- the finer ``"invalidated"`` status lives on
        the ``cache_lookup`` child).
        """
        if self.cache is None:
            if tracer is not None and trace is not None:
                with tracer.child(trace, "synopsis_answer"):
                    return self._answer_approximate(query), None
            return self._answer_approximate(query), None
        epochs = self._epoch_token(query)
        if tracer is not None and trace is not None:
            with tracer.child(trace, "cache_lookup") as scope:
                cached, outcome = self.cache.lookup(query, epochs)
                scope.status = outcome
        else:
            cached, outcome = self.cache.lookup(query, epochs)
        if cached is not None:
            return cached, "hit"
        if tracer is not None and trace is not None:
            with tracer.child(trace, "synopsis_answer"):
                response = self._answer_approximate(query)
        else:
            response = self._answer_approximate(query)
        self.cache.put(query, epochs, response)
        return response, "miss"

    def _maybe_audit(
        self,
        query: Query,
        response: QueryResponse,
        tracer: QueryTracer | None,
        trace: ActiveTrace | None,
    ) -> None:
        """Shadow this answer with the exact path if the auditor says so.

        Runs on cache hits too: a stale-but-served answer is exactly
        the kind calibration auditing exists to catch.
        """
        auditor = self.auditor
        if auditor is None or not auditor.should_audit(query):
            return
        if tracer is not None and trace is not None:
            with tracer.child(trace, "audit_shadow") as scope:
                observation = auditor.shadow(
                    query, response, self._answer_exact
                )
                if observation is not None and observation.error is not None:
                    scope.status = "error"
        else:
            auditor.shadow(query, response, self._answer_exact)

    # -- approximate paths ---------------------------------------------
    # The routing itself lives in repro.engine.answering, shared with
    # pinned snapshot views; the engine is one AnswerSource over its
    # live registry and warehouse.

    def lookup_synopsis(
        self, relation: str, attribute: str, role: SynopsisRole
    ) -> object | None:
        """The registered synopsis for a key, or ``None``."""
        return self.registry.lookup(relation, attribute, role)

    def scan_cost(self, relation: str) -> int:
        """Disk accesses a full base-data scan would cost."""
        return self.warehouse.scan_cost(relation)

    def pin_view(self) -> PinnedEngineView:
        """Freeze the current synopsis state into a read-only view.

        The view deep-copies every registered synopsis plus the row
        counts and scan costs, so it keeps answering at this instant's
        ingest epoch while the live engine absorbs further loads --
        the serving layer's read-snapshot isolation.
        """
        from repro.engine.pinned import PinnedEngineView

        return PinnedEngineView.capture(self)

    def _sample_points(self, relation: str, attribute: str) -> np.ndarray:
        return answering.sample_points(self, relation, attribute)

    def _estimate_distinct(self, relation: str, attribute: str) -> float:
        """Best-available distinct-count estimate for a join column."""
        return answering.estimate_distinct_value(self, relation, attribute)

    def _answer_join_size_exact(
        self, query: JoinSizeQuery
    ) -> QueryResponse:
        before = self.warehouse.counters.disk_accesses
        left = self.warehouse.exact_column(
            query.left_relation, query.left_attribute
        )
        right = self.warehouse.exact_column(
            query.right_relation, query.right_attribute
        )
        cost = self.warehouse.counters.disk_accesses - before
        left_values, left_counts = np.unique(left, return_counts=True)
        right_values, right_counts = np.unique(right, return_counts=True)
        _, left_index, right_index = np.intersect1d(
            left_values,
            right_values,
            assume_unique=True,
            return_indices=True,
        )
        size = float(left_counts[left_index] @ right_counts[right_index])
        return QueryResponse(
            answer=size,
            interval=None,
            method="exact-scan",
            is_exact=True,
            disk_accesses=cost,
            exact_cost_estimate=cost,
        )

    def _answer_approximate(self, query: Query) -> QueryResponse:
        return answering.answer_approximate(self, query)

    # -- exact path ------------------------------------------------------

    def _answer_exact(self, query: Query) -> QueryResponse:
        if isinstance(query, JoinSizeQuery):
            return self._answer_join_size_exact(query)
        before = self.warehouse.counters.disk_accesses
        column = self.warehouse.exact_column(query.relation, query.attribute)
        cost = self.warehouse.counters.disk_accesses - before

        if isinstance(query, HotListQuery):
            table = FrequencyTable(column)
            from repro.hotlist.base import HotListEntry

            entries = tuple(
                HotListEntry(value, float(count))
                for value, count in table.top_k(query.k)
            )
            answer: float | HotListAnswer = HotListAnswer(
                k=query.k, entries=entries
            )
        elif isinstance(query, FrequencyQuery):
            answer = float(np.count_nonzero(column == query.value))
        elif isinstance(query, CountQuery):
            mask = (
                query.predicate.mask(column)
                if query.predicate
                else np.ones(len(column), dtype=bool)
            )
            answer = float(mask.sum())
        elif isinstance(query, SumQuery):
            mask = (
                query.predicate.mask(column)
                if query.predicate
                else np.ones(len(column), dtype=bool)
            )
            answer = float(column[mask].sum())
        elif isinstance(query, AverageQuery):
            mask = (
                query.predicate.mask(column)
                if query.predicate
                else np.ones(len(column), dtype=bool)
            )
            matching = column[mask]
            if len(matching) == 0:
                raise ValueError("no row matches the predicate")
            answer = float(matching.mean())
        elif isinstance(query, DistinctCountQuery):
            answer = float(len(np.unique(column)))
        elif isinstance(query, SelectivityQuery):
            if query.predicate is None:
                raise ValueError("selectivity query needs a predicate")
            if len(column) == 0:
                answer = 0.0
            else:
                answer = float(query.predicate.mask(column).mean())
        else:  # pragma: no cover - exhaustive routing guard
            raise TypeError(f"unsupported query {query!r}")

        return QueryResponse(
            answer=answer,
            interval=None,
            method="exact-scan",
            is_exact=True,
            disk_accesses=cost,
            exact_cost_estimate=cost,
        )
