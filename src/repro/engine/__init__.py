"""The approximate answer engine set-up of the paper's Figure 2.

New data loaded into the warehouse "is also observed by an approximate
answer engine.  This engine maintains various summary statistics ...
Queries are sent to the approximate answer engine.  Whenever possible,
the engine uses its synopses to promptly return a query response,
consisting of an approximate answer and an accuracy measure."

* :class:`~repro.engine.relation.Relation` and
  :class:`~repro.engine.warehouse.DataWarehouse` -- the (simulated)
  base-data store, with disk-access accounting.
* :class:`~repro.engine.engine.ApproximateAnswerEngine` -- observes
  warehouse loads, maintains registered synopses within a memory
  budget, and answers queries without touching base data (falling back
  to an exact scan only on request).
* :mod:`~repro.engine.queries` / :mod:`~repro.engine.responses` -- the
  query and response types.
"""

from repro.engine.cache import QueryResultCache
from repro.engine.composite import (
    composite_name,
    decode_composite,
    decode_composite_answer,
    encode_composite,
)
from repro.engine.answering import NoSynopsisError
from repro.engine.engine import ApproximateAnswerEngine
from repro.engine.pinned import PinnedEngineView
from repro.engine.policy import (
    AnswerPolicy,
    PolicyDecision,
    answer_with_policy,
)
from repro.engine.queries import (
    AverageQuery,
    CountQuery,
    DistinctCountQuery,
    FrequencyQuery,
    HotListQuery,
    JoinSizeQuery,
    Query,
    SelectivityQuery,
    SumQuery,
)
from repro.engine.oplog import LoggedBatch, LoggedOperation, OperationLog
from repro.engine.registry import BudgetExceeded, SynopsisRegistry
from repro.engine.relation import Relation
from repro.engine.responses import QueryResponse
from repro.engine.snapshots import restore_synopsis, snapshot_synopsis
from repro.engine.warehouse import DataWarehouse

__all__ = [
    "AnswerPolicy",
    "ApproximateAnswerEngine",
    "AverageQuery",
    "BudgetExceeded",
    "CountQuery",
    "DataWarehouse",
    "DistinctCountQuery",
    "FrequencyQuery",
    "HotListQuery",
    "JoinSizeQuery",
    "LoggedBatch",
    "LoggedOperation",
    "NoSynopsisError",
    "OperationLog",
    "PinnedEngineView",
    "PolicyDecision",
    "Query",
    "answer_with_policy",
    "QueryResponse",
    "QueryResultCache",
    "Relation",
    "SelectivityQuery",
    "SumQuery",
    "SynopsisRegistry",
    "composite_name",
    "decode_composite",
    "decode_composite_answer",
    "encode_composite",
    "restore_synopsis",
    "snapshot_synopsis",
]
