"""Structural interfaces for synopses the engine routes queries to.

The engine is deliberately duck-typed -- any synopsis with the right
maintenance and estimation surface can be registered (Section 1's "a
large number of synopses may be needed").  These :class:`~typing.Protocol`
classes make that surface explicit and checkable: the registration
methods on :class:`~repro.engine.engine.SynopsisEngine` and the oplog
replay accept these interfaces, so mypy verifies a new synopsis class
fits before it is ever registered.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["DistinctSketch", "Histogram", "ReplayTarget"]


@runtime_checkable
class DistinctSketch(Protocol):
    """A COUNT DISTINCT estimator (FM, linear counting, Morris, ...).

    Observes each loaded value via :meth:`insert` and answers with one
    number from :meth:`estimate`; ``footprint`` feeds the registry's
    memory budget.
    """

    @property
    def footprint(self) -> int: ...

    def insert(self, value: int) -> None: ...

    def estimate(self) -> float: ...


@runtime_checkable
class Histogram(Protocol):
    """A bucketed range/equality estimator (equi-depth, v-opt, ...).

    Histograms are statically built from a backing sample rather than
    observing the load stream, so the maintenance surface is absent:
    the engine only queries them.
    """

    @property
    def footprint(self) -> int: ...

    def estimate_range(self, low: float, high: float) -> float: ...

    def estimate_equality(self, value: float) -> float: ...


@runtime_checkable
class ReplayTarget(Protocol):
    """A synopsis an operation log can replay into (footnote 2 recovery).

    Replay feeds both inserts and deletes, so only delete-capable
    synopses qualify (counting samples; Theorem 5).
    """

    def insert(self, value: int) -> None: ...

    def delete(self, value: int) -> None: ...
