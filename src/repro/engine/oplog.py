"""Operation logs: the recovery complement to snapshots (footnote 2).

"For persistence and recovery, combinations of snapshots and/or logs
can be stored on disk."  :class:`OperationLog` records the warehouse
load stream (as an observer) so a synopsis can be recovered as
*snapshot + replay of the log suffix* -- the standard checkpointing
recipe.  The log is an in-memory list with JSON-lines export, which is
all the simulation needs; a real deployment would append to stable
storage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator

from repro.engine.protocols import ReplayTarget

__all__ = ["LoggedOperation", "OperationLog"]


@dataclass(frozen=True)
class LoggedOperation:
    """One logged load event."""

    sequence: int
    relation: str
    row: tuple
    is_insert: bool


class OperationLog:
    """An append-only log of warehouse load events.

    Attach with ``warehouse.add_observer(log.observe)``.  Recovery:
    restore a synopsis from a snapshot taken at sequence ``s``, then
    :meth:`replay_since` ``s`` into it.
    """

    def __init__(self) -> None:
        self._entries: list[LoggedOperation] = []
        self._base = 0  # sequence number of the first retained entry

    def observe(self, relation: str, row: tuple, is_insert: bool) -> None:
        """Warehouse-observer entry point."""
        self._entries.append(
            LoggedOperation(
                sequence=self._base + len(self._entries),
                relation=relation,
                row=tuple(row),
                is_insert=is_insert,
            )
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def next_sequence(self) -> int:
        """The sequence number the next logged event will get.

        Take a snapshot *after* reading this and replay from it to
        recover exactly.
        """
        return self._base + len(self._entries)

    def entries_since(self, sequence: int) -> Iterator[LoggedOperation]:
        """Iterate entries with ``entry.sequence >= sequence``."""
        if sequence < 0:
            raise ValueError("sequence must be non-negative")
        start = max(0, sequence - self._base)
        return iter(self._entries[start:])

    def replay_since(
        self,
        sequence: int,
        relation: str,
        attribute_index: int,
        synopsis: ReplayTarget,
    ) -> int:
        """Replay one relation's logged suffix into a synopsis.

        ``attribute_index`` selects which row component feeds the
        synopsis.  Returns the number of events applied.  Deletes
        require the synopsis to support them (counting samples do).
        """
        applied = 0
        for entry in self.entries_since(sequence):
            if entry.relation != relation:
                continue
            value = int(entry.row[attribute_index])
            if entry.is_insert:
                synopsis.insert(value)
            else:
                synopsis.delete(value)
            applied += 1
        return applied

    def dump_jsonl(self) -> str:
        """The whole log as JSON lines (one event per line)."""
        return "\n".join(
            json.dumps(
                {
                    "sequence": entry.sequence,
                    "relation": entry.relation,
                    "row": list(entry.row),
                    "is_insert": entry.is_insert,
                }
            )
            for entry in self._entries
        )

    @classmethod
    def load_jsonl(cls, payload: str) -> "OperationLog":
        """Rebuild a log from :meth:`dump_jsonl` output."""
        log = cls()
        for line in payload.splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            log._entries.append(
                LoggedOperation(
                    sequence=int(record["sequence"]),
                    relation=record["relation"],
                    row=tuple(record["row"]),
                    is_insert=bool(record["is_insert"]),
                )
            )
        if log._entries:
            log._base = log._entries[0].sequence
        return log

    def export_segment(self, start: int, stop: int) -> str:
        """JSON lines for the entries with ``start <= sequence < stop``.

        The in-memory counterpart of a WAL segment: a contiguous,
        self-describing slice that :meth:`import_entries` can append to
        another log (ship the suffix to a replica, archive it, or feed
        it back after a checkpoint).
        """
        if start > stop:
            raise ValueError("start must not exceed stop")
        return "\n".join(
            json.dumps(
                {
                    "sequence": entry.sequence,
                    "relation": entry.relation,
                    "row": list(entry.row),
                    "is_insert": entry.is_insert,
                }
            )
            for entry in self._entries
            if start <= entry.sequence < stop
        )

    def import_entries(self, payload: str) -> int:
        """Append exported entries, enforcing sequence contiguity.

        Every imported entry must carry exactly the sequence this log
        would assign next -- a gap means a lost segment, and splicing
        over it would silently corrupt replay (Theorem 5's delete
        accounting depends on seeing *every* operation).  Raises
        :class:`~repro.persist.errors.LogGapError` on a gap; returns
        the number of entries appended.
        """
        # Imported lazily: repro.persist imports this module's package.
        from repro.persist.errors import LogGapError

        appended = 0
        for line in payload.splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            sequence = int(record["sequence"])
            if sequence != self.next_sequence:
                raise LogGapError(
                    self.next_sequence, sequence, source="import_entries"
                )
            self._entries.append(
                LoggedOperation(
                    sequence=sequence,
                    relation=record["relation"],
                    row=tuple(record["row"]),
                    is_insert=bool(record["is_insert"]),
                )
            )
            appended += 1
        return appended

    def truncate_before(self, sequence: int) -> int:
        """Drop entries older than ``sequence`` (post-checkpoint GC).

        Returns how many entries were dropped.  Sequence numbers of
        surviving entries are preserved.
        """
        keep_from = len(self._entries)
        for index, entry in enumerate(self._entries):
            if entry.sequence >= sequence:
                keep_from = index
                break
        dropped = keep_from
        self._entries = self._entries[keep_from:]
        self._base += dropped
        return dropped
