"""Operation logs: the recovery complement to snapshots (footnote 2).

"For persistence and recovery, combinations of snapshots and/or logs
can be stored on disk."  :class:`OperationLog` records the warehouse
load stream (as an observer) so a synopsis can be recovered as
*snapshot + replay of the log suffix* -- the standard checkpointing
recipe.  The log is an in-memory list with JSON-lines export, which is
all the simulation needs; a real deployment would append to stable
storage.

The log records two entry shapes.  A :class:`LoggedOperation` is one
row event and occupies one sequence number.  A :class:`LoggedBatch` is
a whole columnar load (`DataWarehouse.load_batch`) kept as its
attribute arrays and occupying the contiguous sequence range
``[sequence, last_sequence]`` -- one entry per batch instead of one
per row, so a batch-heavy workload's log stays small and replay can
drive the vectorized synopsis paths (``insert_array``) instead of a
row loop.  Batches are atomic: suffix queries never split one.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

import numpy as np

from repro.engine.protocols import ReplayTarget

__all__ = ["LoggedBatch", "LoggedOperation", "OperationLog"]


@dataclass(frozen=True)
class LoggedOperation:
    """One logged load event."""

    sequence: int
    relation: str
    row: tuple
    is_insert: bool

    @property
    def last_sequence(self) -> int:
        """The final sequence number this entry occupies (itself)."""
        return self.sequence

    @property
    def length(self) -> int:
        return 1


@dataclass(frozen=True, eq=False)
class LoggedBatch:
    """One logged columnar load, occupying a range of sequence numbers.

    ``columns`` maps attribute names (in relation schema order) to
    equal-length arrays; row *k* of the batch carries sequence
    ``sequence + k``.  Batches are always inserts -- deletes stay
    per-row events.  Equality is identity (``eq=False``): ndarray
    columns have no useful elementwise ``==`` for dataclass equality.
    """

    sequence: int
    relation: str
    columns: dict[str, np.ndarray]

    @property
    def length(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def last_sequence(self) -> int:
        return self.sequence + self.length - 1


LogEntry = LoggedOperation | LoggedBatch


def _entry_record(entry: LogEntry) -> dict[str, Any]:
    """One entry as its JSON-able line record."""
    if isinstance(entry, LoggedBatch):
        # Imported lazily: repro.persist imports this module's package.
        from repro.persist.columns import encode_columns

        return {
            "kind": "batch",
            "sequence": entry.sequence,
            "relation": entry.relation,
            "columns": encode_columns(entry.columns),
        }
    return {
        "sequence": entry.sequence,
        "relation": entry.relation,
        "row": list(entry.row),
        "is_insert": entry.is_insert,
    }


def _record_entry(record: Mapping[str, Any]) -> LogEntry:
    """Rebuild one entry from its JSON line record."""
    if record.get("kind") == "batch":
        from repro.persist.columns import decode_columns

        return LoggedBatch(
            sequence=int(record["sequence"]),
            relation=record["relation"],
            columns=decode_columns(record["columns"]),
        )
    return LoggedOperation(
        sequence=int(record["sequence"]),
        relation=record["relation"],
        row=tuple(record["row"]),
        is_insert=bool(record["is_insert"]),
    )


class OperationLog:
    """An append-only log of warehouse load events.

    Attach with ``warehouse.add_observer(log)`` -- the log is callable
    for per-row events and exposes :meth:`observe_batch`, so
    ``load_batch`` hands it whole batches (one entry each).
    ``warehouse.add_observer(log.observe)`` still works but sees
    batches exploded into per-row events.  Recovery: restore a
    synopsis from a snapshot taken at sequence ``s``, then
    :meth:`replay_since` ``s`` into it.
    """

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self._next = 0  # sequence number the next event will get

    def observe(self, relation: str, row: tuple, is_insert: bool) -> None:
        """Warehouse-observer entry point (one row event)."""
        self._entries.append(
            LoggedOperation(
                sequence=self._next,
                relation=relation,
                row=tuple(row),
                is_insert=is_insert,
            )
        )
        self._next += 1

    def __call__(self, relation: str, row: tuple, is_insert: bool) -> None:
        self.observe(relation, row, is_insert)

    def observe_batch(
        self, relation: str, columns: Mapping[str, np.ndarray]
    ) -> None:
        """Batch-observer entry point: one entry for the whole load."""
        materialised = {
            name: np.asarray(values) for name, values in columns.items()
        }
        length = (
            len(next(iter(materialised.values()))) if materialised else 0
        )
        if length == 0:
            return
        self._entries.append(
            LoggedBatch(
                sequence=self._next,
                relation=relation,
                columns=materialised,
            )
        )
        self._next += length

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def next_sequence(self) -> int:
        """The sequence number the next logged event will get.

        Take a snapshot *after* reading this and replay from it to
        recover exactly.
        """
        return self._next

    def entries_since(self, sequence: int) -> Iterator[LogEntry]:
        """Iterate entries whose range reaches ``sequence`` or later.

        Batches are atomic: a batch covering ``sequence`` mid-range is
        yielded whole (its ``last_sequence >= sequence``); callers that
        need the exact suffix slice off ``sequence - entry.sequence``
        leading rows, as :meth:`replay_since` does.
        """
        if sequence < 0:
            raise ValueError("sequence must be non-negative")
        start = bisect_left(
            self._entries, sequence, key=lambda entry: entry.last_sequence
        )
        return iter(self._entries[start:])

    def replay_since(
        self,
        sequence: int,
        relation: str,
        attribute_index: int,
        synopsis: ReplayTarget,
    ) -> int:
        """Replay one relation's logged suffix into a synopsis.

        ``attribute_index`` selects which row component (schema-order
        column for batches) feeds the synopsis.  Returns the number of
        row events applied.  Batch entries feed the synopsis's
        ``insert_array`` fast path when it has one; a batch straddling
        ``sequence`` contributes only its unseen suffix rows.  Deletes
        require the synopsis to support them (counting samples do).
        """
        applied = 0
        for entry in self.entries_since(sequence):
            if entry.relation != relation:
                continue
            if isinstance(entry, LoggedBatch):
                values = list(entry.columns.values())[attribute_index]
                skip = sequence - entry.sequence
                if skip > 0:
                    values = values[skip:]
                insert_array = getattr(synopsis, "insert_array", None)
                if insert_array is not None:
                    insert_array(np.asarray(values))
                else:
                    for value in values.tolist():
                        synopsis.insert(int(value))
                applied += len(values)
                continue
            value = int(entry.row[attribute_index])
            if entry.is_insert:
                synopsis.insert(value)
            else:
                synopsis.delete(value)
            applied += 1
        return applied

    def dump_jsonl(self) -> str:
        """The whole log as JSON lines (one entry per line)."""
        return "\n".join(
            json.dumps(_entry_record(entry)) for entry in self._entries
        )

    @classmethod
    def load_jsonl(cls, payload: str) -> "OperationLog":
        """Rebuild a log from :meth:`dump_jsonl` output."""
        log = cls()
        for line in payload.splitlines():
            if not line.strip():
                continue
            log._entries.append(_record_entry(json.loads(line)))
        if log._entries:
            log._next = log._entries[-1].last_sequence + 1
        return log

    def export_segment(self, start: int, stop: int) -> str:
        """JSON lines for the entries with ``start <= sequence`` and
        ``last_sequence < stop``.

        The in-memory counterpart of a WAL segment: a contiguous,
        self-describing slice that :meth:`import_entries` can append to
        another log (ship the suffix to a replica, archive it, or feed
        it back after a checkpoint).  Batches are atomic, so one
        straddling either boundary is excluded -- pick boundaries on
        batch edges (checkpoint sequences always are).
        """
        if start > stop:
            raise ValueError("start must not exceed stop")
        return "\n".join(
            json.dumps(_entry_record(entry))
            for entry in self._entries
            if start <= entry.sequence and entry.last_sequence < stop
        )

    def import_entries(self, payload: str) -> int:
        """Append exported entries, enforcing sequence contiguity.

        Every imported entry must *begin* at exactly the sequence this
        log would assign next -- a gap means a lost segment, and
        splicing over it would silently corrupt replay (Theorem 5's
        delete accounting depends on seeing *every* operation).  Batch
        entries occupy their whole ``[sequence, last_sequence]`` range,
        so the next entry must start just past it.  Raises
        :class:`~repro.persist.errors.LogGapError` on a gap; returns
        the number of entries appended.
        """
        # Imported lazily: repro.persist imports this module's package.
        from repro.persist.errors import LogGapError

        appended = 0
        for line in payload.splitlines():
            if not line.strip():
                continue
            entry = _record_entry(json.loads(line))
            if entry.sequence != self._next:
                raise LogGapError(
                    self._next, entry.sequence, source="import_entries"
                )
            self._entries.append(entry)
            self._next = entry.last_sequence + 1
            appended += 1
        return appended

    def truncate_before(self, sequence: int) -> int:
        """Drop entries that end before ``sequence`` (post-checkpoint GC).

        Returns how many entries were dropped.  Sequence numbers of
        surviving entries are preserved; a batch overlapping
        ``sequence`` survives whole (batches are atomic).
        """
        keep_from = len(self._entries)
        for index, entry in enumerate(self._entries):
            if entry.last_sequence >= sequence:
                keep_from = index
                break
        dropped = keep_from
        self._entries = self._entries[keep_from:]
        return dropped
