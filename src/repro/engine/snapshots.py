"""Synopsis snapshots: serialise and restore engine state.

The paper's footnote 2: "Various synopses can be swapped in and out of
memory as needed.  For persistence and recovery, combinations of
snapshots and/or logs can be stored on disk."  This module implements
the snapshot half for the sample synopses: each supported synopsis can
be dumped to a plain-JSON-able dict and restored to an equivalent
object.

Restoring is *statistically* equivalent, not bitwise: a restored
sample carries the same sample contents, threshold, and counters, but
a fresh RNG stream (the paper's algorithms only require the invariant
state -- sample + threshold -- to continue correctly; Theorem 2's
induction is over that state, not the generator).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.core.reservoir import ReservoirSample
from repro.randkit.coins import CostCounters

__all__ = ["restore_synopsis", "snapshot_synopsis", "dumps", "loads"]

_KIND_CONCISE = "concise-sample"
_KIND_COUNTING = "counting-sample"
_KIND_RESERVOIR = "reservoir-sample"


def _counters_state(counters: CostCounters) -> dict[str, int]:
    return {
        "flips": counters.flips,
        "lookups": counters.lookups,
        "threshold_raises": counters.threshold_raises,
        "inserts": counters.inserts,
        "deletes": counters.deletes,
        "disk_accesses": counters.disk_accesses,
    }


def _restore_counters(state: dict[str, int]) -> CostCounters:
    return CostCounters(**state)


def snapshot_synopsis(synopsis: Any) -> dict:
    """Dump a supported synopsis to a JSON-able dict.

    Supported: :class:`ConciseSample`, :class:`CountingSample`,
    :class:`ReservoirSample`.  Raises :class:`TypeError` otherwise.
    """
    if isinstance(synopsis, ConciseSample):
        return {
            "kind": _KIND_CONCISE,
            "footprint_bound": synopsis.footprint_bound,
            "threshold": synopsis.threshold,
            "counts": [
                [value, count] for value, count in synopsis.pairs()
            ],
            "total_inserted": synopsis.total_inserted,
            "counters": _counters_state(synopsis.counters),
        }
    if isinstance(synopsis, CountingSample):
        return {
            "kind": _KIND_COUNTING,
            "footprint_bound": synopsis.footprint_bound,
            "threshold": synopsis.threshold,
            "counts": [
                [value, count] for value, count in synopsis.pairs()
            ],
            "total_inserted": synopsis._inserted,
            "total_deleted": synopsis._deleted,
            "counters": _counters_state(synopsis.counters),
        }
    if isinstance(synopsis, ReservoirSample):
        return {
            "kind": _KIND_RESERVOIR,
            "capacity": synopsis.capacity,
            "points": synopsis.points(),
            "seen": synopsis.total_inserted,
            "counters": _counters_state(synopsis.counters),
        }
    raise TypeError(
        f"cannot snapshot synopsis of type {type(synopsis).__name__}"
    )


def restore_synopsis(state: dict, *, seed: int | None = None) -> Any:
    """Rebuild a synopsis from a snapshot dict.

    ``seed`` re-seeds the restored object's randomness (continuation
    runs should pass a fresh seed; tests may pin one).
    """
    kind = state.get("kind")
    counters = _restore_counters(state["counters"])
    if kind == _KIND_CONCISE:
        sample = ConciseSample.from_state(
            {int(v): int(c) for v, c in state["counts"]},
            threshold=float(state["threshold"]),
            footprint_bound=int(state["footprint_bound"]),
            total_inserted=int(
                # Older snapshots predate the per-synopsis n and used
                # the shared ledger's insert count as the relation size.
                state.get("total_inserted", state["counters"]["inserts"])
            ),
            seed=seed,
        )
        sample.counters = counters
        # from_state starts a fresh admission skipper; re-point it at
        # the restored ledger so future flips are charged correctly.
        sample._admission._counters = counters
        return sample
    if kind == _KIND_COUNTING:
        sample = CountingSample(
            int(state["footprint_bound"]), seed=seed, counters=counters
        )
        for value, count in state["counts"]:
            sample._counts[int(value)] = int(count)
            sample._footprint += 1 if count == 1 else 2
        threshold = float(state["threshold"])
        sample._threshold = threshold
        sample._inserted = int(
            state.get("total_inserted", state["counters"]["inserts"])
        )
        sample._deleted = int(
            state.get("total_deleted", state["counters"]["deletes"])
        )
        if threshold > 1.0:
            sample._admission.raise_threshold(threshold)
        sample.check_invariants()
        return sample
    if kind == _KIND_RESERVOIR:
        sample = ReservoirSample(
            int(state["capacity"]), seed=seed, counters=counters
        )
        sample._reservoir = [int(v) for v in state["points"]]
        sample._seen = int(state["seen"])
        sample.check_invariants()
        return sample
    raise ValueError(f"unknown snapshot kind {kind!r}")


def dumps(synopsis: Any) -> str:
    """Snapshot to a JSON string."""
    return json.dumps(snapshot_synopsis(synopsis))


def loads(payload: str, *, seed: int | None = None) -> Any:
    """Restore from a JSON string."""
    return restore_synopsis(json.loads(payload), seed=seed)
