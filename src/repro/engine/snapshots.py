"""Synopsis snapshots: serialise and restore engine state.

The paper's footnote 2: "Various synopses can be swapped in and out of
memory as needed.  For persistence and recovery, combinations of
snapshots and/or logs can be stored on disk."  This module implements
the snapshot half for the sample synopses by dispatching to each
synopsis class's ``to_dict`` / ``from_dict`` pair (reprolint rule
RL007 checks that every such pair round-trips the same field set).

Restoring is *statistically* equivalent, not bitwise: a restored
sample carries the same sample contents, threshold, and counters, but
a fresh RNG stream (the paper's algorithms only require the invariant
state -- sample + threshold -- to continue correctly; Theorem 2's
induction is over that state, not the generator).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.core.reservoir import ReservoirSample

__all__ = ["restore_synopsis", "snapshot_synopsis", "dumps", "loads"]

Snapshotable = ConciseSample | CountingSample | ReservoirSample

_SNAPSHOT_TYPES: tuple[type[Snapshotable], ...] = (
    ConciseSample,
    CountingSample,
    ReservoirSample,
)


def snapshot_synopsis(synopsis: Snapshotable) -> dict[str, Any]:
    """Dump a supported synopsis to a JSON-able dict.

    Supported: :class:`ConciseSample`, :class:`CountingSample`,
    :class:`ReservoirSample`.  Raises :class:`TypeError` otherwise.
    """
    if isinstance(synopsis, _SNAPSHOT_TYPES):
        return synopsis.to_dict()
    raise TypeError(
        f"cannot snapshot synopsis of type {type(synopsis).__name__}"
    )


def restore_synopsis(
    state: dict[str, Any], *, seed: int | None = None
) -> Snapshotable:
    """Rebuild a synopsis from a snapshot dict.

    ``seed`` re-seeds the restored object's randomness (continuation
    runs should pass a fresh seed; tests may pin one).
    """
    kind = state.get("kind")
    for synopsis_type in _SNAPSHOT_TYPES:
        if kind == synopsis_type.SNAPSHOT_KIND:
            return synopsis_type.from_dict(state, seed=seed)
    raise ValueError(f"unknown snapshot kind {kind!r}")


def dumps(synopsis: Snapshotable) -> str:
    """Snapshot to a JSON string."""
    return json.dumps(snapshot_synopsis(synopsis))


def loads(payload: str, *, seed: int | None = None) -> Snapshotable:
    """Restore from a JSON string."""
    return restore_synopsis(json.loads(payload), seed=seed)
