"""Synopsis registration and memory budgeting.

"To handle many base tables and many types of queries, a large number
of synopses may be needed ... synopses that are frequently used to
respond to queries should be memory-resident.  Thus we evaluate the
effectiveness of a synopsis as a function of its footprint" (Section 1).

The registry tracks every synopsis the engine maintains, keyed by
(relation, attribute, role), and enforces a total footprint budget in
words at registration time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol

__all__ = ["BudgetExceeded", "SynopsisRegistry", "SynopsisRole"]


class BudgetExceeded(RuntimeError):
    """Raised when registering a synopsis would exceed the budget."""


class _HasFootprint(Protocol):
    @property
    def footprint(self) -> int: ...


# The roles the engine routes queries by.  A single synopsis object may
# be registered under several roles (a ConciseHotList's sample also
# serves as the uniform sample for aggregates, for example).
SynopsisRole = str

SAMPLE: SynopsisRole = "sample"
HOTLIST: SynopsisRole = "hotlist"
DISTINCT: SynopsisRole = "distinct"
HISTOGRAM: SynopsisRole = "histogram"

_KNOWN_ROLES = frozenset({SAMPLE, HOTLIST, DISTINCT, HISTOGRAM})


@dataclass(frozen=True)
class _Registration:
    relation: str
    attribute: str
    role: SynopsisRole
    synopsis: object
    reserved_words: int


class SynopsisRegistry:
    """Keyed synopsis store with a words-of-memory budget.

    Parameters
    ----------
    budget_words:
        Total words the registered synopses may reserve; ``None``
        disables budgeting.

    Budget accounting is by *reserved* words -- a synopsis's footprint
    bound -- rather than its instantaneous footprint, because the
    engine must guarantee the memory even at the synopsis's fullest.
    """

    def __init__(self, budget_words: int | None = None) -> None:
        if budget_words is not None and budget_words < 0:
            raise ValueError("budget must be non-negative")
        self.budget_words = budget_words
        self._entries: dict[tuple[str, str, SynopsisRole], _Registration] = {}

    def register(
        self,
        relation: str,
        attribute: str,
        role: SynopsisRole,
        synopsis: _HasFootprint,
        reserved_words: int | None = None,
    ) -> None:
        """Register a synopsis under a (relation, attribute, role) key.

        ``reserved_words`` defaults to the synopsis's ``footprint_bound``
        when it has one, else its current footprint.
        """
        if role not in _KNOWN_ROLES:
            raise ValueError(f"unknown role {role!r}")
        key = (relation, attribute, role)
        if key in self._entries:
            raise ValueError(f"synopsis already registered for {key}")
        if reserved_words is None:
            reserved_words = getattr(
                synopsis, "footprint_bound", None
            ) or synopsis.footprint
        if reserved_words < 0:
            raise ValueError("reserved_words must be non-negative")
        already_reserved = any(
            entry.synopsis is synopsis for entry in self._entries.values()
        )
        if already_reserved:
            # The same object under another role shares its reservation.
            reserved_words = 0
        if self.budget_words is not None:
            if self.reserved_total() + reserved_words > self.budget_words:
                raise BudgetExceeded(
                    f"registering {reserved_words} words would exceed the "
                    f"{self.budget_words}-word budget "
                    f"(already reserved: {self.reserved_total()})"
                )
        self._entries[key] = _Registration(
            relation, attribute, role, synopsis, reserved_words
        )

    def unregister(
        self, relation: str, attribute: str, role: SynopsisRole
    ) -> None:
        """Remove a registration, freeing its reservation."""
        key = (relation, attribute, role)
        if key not in self._entries:
            raise KeyError(f"no synopsis registered for {key}")
        del self._entries[key]

    def lookup(
        self, relation: str, attribute: str, role: SynopsisRole
    ) -> object | None:
        """The synopsis for a key, or ``None``."""
        entry = self._entries.get((relation, attribute, role))
        return entry.synopsis if entry else None

    def for_attribute(
        self, relation: str, attribute: str
    ) -> Iterator[tuple[SynopsisRole, object]]:
        """All (role, synopsis) registered for one attribute."""
        for key, entry in self._entries.items():
            if key[0] == relation and key[1] == attribute:
                yield key[2], entry.synopsis

    def entries(
        self,
    ) -> Iterator[tuple[str, str, SynopsisRole, object]]:
        """Every registration as ``(relation, attribute, role, synopsis)``.

        Deterministic (registration order); the same synopsis object
        appears once per role it is registered under.
        """
        for key, entry in self._entries.items():
            yield key[0], key[1], key[2], entry.synopsis

    def all_synopses(self) -> Iterator[object]:
        """Every distinct registered synopsis object."""
        seen: set[int] = set()
        for entry in self._entries.values():
            if id(entry.synopsis) not in seen:
                seen.add(id(entry.synopsis))
                yield entry.synopsis

    def reserved_total(self) -> int:
        """Words currently reserved (distinct synopses counted once)."""
        seen: set[int] = set()
        total = 0
        for entry in self._entries.values():
            if id(entry.synopsis) not in seen:
                seen.add(id(entry.synopsis))
                total += entry.reserved_words
        return total

    def footprint_total(self) -> int:
        """Instantaneous words used by all registered synopses."""
        return sum(
            synopsis.footprint  # type: ignore[attr-defined]
            for synopsis in self.all_synopses()
        )

    def __len__(self) -> int:
        return len(self._entries)
