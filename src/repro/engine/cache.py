"""Epoch-invalidated LRU cache for approximate query answers.

Synopses change only when the load stream does, so an approximate
answer stays valid until the next ingest touching its relation(s).
The cache exploits that: entries are keyed on the (frozen, hashable)
query itself and stamped with the *epoch token* of every relation the
query reads.  A lookup whose stored token no longer matches the
current one is dropped lazily -- writes never walk the cache, they
just advance an epoch counter, so invalidation is O(1) per ingest and
exact per relation (a load into ``orders`` leaves cached answers over
``customers`` warm).

Capacity is bounded with LRU eviction.  Cache traffic is exported to
the metrics registry as ``repro_query_cache_{hits,misses,
invalidations,evictions}_total`` counters labeled by query type.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["QueryResultCache"]

#: An epoch token: per relation, the (ingest epoch, synopsis epoch)
#: pair current when the answer was computed.
EpochToken = tuple[tuple[str, tuple[int, int]], ...]

#: Counter names per outcome, spelled out as literals so the metric
#: registry stays statically auditable (reprolint RL014) against the
#: docs/observability.md catalogue.
_COUNTER_NAMES = {
    "hits": (
        "repro_query_cache_hits_total",
        "Query-result cache hits, by query type",
    ),
    "misses": (
        "repro_query_cache_misses_total",
        "Query-result cache misses, by query type",
    ),
    "invalidations": (
        "repro_query_cache_invalidations_total",
        "Query-result cache invalidations, by query type",
    ),
    "evictions": (
        "repro_query_cache_evictions_total",
        "Query-result cache evictions, by query type",
    ),
}


class QueryResultCache:
    """LRU map from query to answer, invalidated by relation epochs.

    Parameters
    ----------
    capacity:
        Maximum live entries; least-recently-used entries are evicted
        beyond it.
    registry:
        Metrics sink; defaults to the process-wide active registry
        (a no-op registry unless observability was enabled).
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._registry = registry if registry is not None else get_registry()
        self._entries: OrderedDict[
            Hashable, tuple[EpochToken, Any]
        ] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime hit/miss/invalidation/eviction counts."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "invalidations": self._invalidations,
            "evictions": self._evictions,
            "size": len(self._entries),
        }

    def get(self, key: Hashable, epochs: EpochToken) -> Any | None:
        """The cached answer for ``key`` if still current, else None.

        ``epochs`` is the *current* epoch token of the relations the
        query reads; a stored entry whose token differs is stale and
        is dropped (counted as an invalidation plus a miss).
        """
        answer, _ = self.lookup(key, epochs)
        return answer

    def lookup(
        self, key: Hashable, epochs: EpochToken
    ) -> tuple[Any | None, str]:
        """Like :meth:`get`, but also report how the lookup resolved.

        The second element is ``"hit"``, ``"miss"``, or
        ``"invalidated"`` (stored entry existed but its epoch token
        was stale) -- the status the engine stamps on the
        ``cache_lookup`` child span.  An invalidated lookup still
        counts as both an invalidation and a miss in the metrics,
        exactly as :meth:`get` always has.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            self._count("misses", key)
            return None, "miss"
        stored_epochs, answer = entry
        if stored_epochs != epochs:
            del self._entries[key]
            self._invalidations += 1
            self._misses += 1
            self._count("invalidations", key)
            self._count("misses", key)
            return None, "invalidated"
        self._entries.move_to_end(key)
        self._hits += 1
        self._count("hits", key)
        return answer, "hit"

    def put(self, key: Hashable, epochs: EpochToken, answer: Any) -> None:
        """Store an answer computed at the given epoch token."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (epochs, answer)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
            self._count("evictions", key)

    def clear(self) -> None:
        """Drop every entry (counters keep their lifetime totals)."""
        self._entries.clear()

    def _count(self, outcome: str, key: Hashable) -> None:
        name, help_text = _COUNTER_NAMES[outcome]
        self._registry.counter(
            name,
            help_text,
            {"query": type(key).__name__},
        ).inc()
