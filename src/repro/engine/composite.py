"""Hot lists over attribute pairs/tuples (paper footnote 4).

"For simplicity, we describe our algorithms ... in terms of a single
attribute, although the approaches apply equally well to pairs of
attributes, etc."  The engine supports this by packing each row's
values for a declared attribute tuple into a single integer and
feeding the ordinary synopses; this module provides the packing and
the answer-decoding helpers.

Unlike :mod:`repro.itemsets.encoding` (sorted, distinct items), the
composite encoding is for *ordered* tuples whose components may
repeat.
"""

from __future__ import annotations

import numpy as np

from repro.hotlist.base import HotListAnswer

__all__ = [
    "composite_name",
    "decode_composite",
    "decode_composite_answer",
    "encode_composite",
    "encode_composite_array",
]

_COMPONENT_BITS = 24
_COMPONENT_MASK = (1 << _COMPONENT_BITS) - 1
MAX_COMPONENT = _COMPONENT_MASK


def composite_name(attributes: tuple[str, ...]) -> str:
    """The canonical registry name of an attribute tuple."""
    if len(attributes) < 2:
        raise ValueError("a composite needs at least two attributes")
    return "+".join(attributes)


def encode_composite(values: tuple[int, ...]) -> int:
    """Pack an ordered tuple of small non-negative ints into one int."""
    if len(values) < 2:
        raise ValueError("a composite needs at least two components")
    encoded = 1  # sentinel bit keeps leading zero components distinct
    for value in values:
        if not 0 <= value <= MAX_COMPONENT:
            raise ValueError(
                f"component {value} out of range [0, {MAX_COMPONENT}]"
            )
        encoded = (encoded << _COMPONENT_BITS) | value
    return encoded


def encode_composite_array(
    components: tuple[np.ndarray, ...],
) -> np.ndarray:
    """Vectorized :func:`encode_composite` over whole columns.

    Only pairs fit: the sentinel bit plus two 24-bit components needs
    49 bits, within int64; three components need 73 and would
    overflow.  Raises :class:`ValueError` for arity >= 3 so callers
    can fall back to the per-row Python-int encoding.
    """
    if len(components) < 2:
        raise ValueError("a composite needs at least two components")
    if len(components) > 2:
        raise ValueError(
            "vectorized encoding supports only attribute pairs "
            "(wider tuples overflow int64)"
        )
    first = np.asarray(components[0], dtype=np.int64)
    second = np.asarray(components[1], dtype=np.int64)
    for column in (first, second):
        if column.size and (
            column.min() < 0 or column.max() > MAX_COMPONENT
        ):
            raise ValueError(
                f"component out of range [0, {MAX_COMPONENT}]"
            )
    sentinel = np.int64(1) << np.int64(2 * _COMPONENT_BITS)
    return sentinel | (first << np.int64(_COMPONENT_BITS)) | second


def decode_composite(encoded: int, arity: int) -> tuple[int, ...]:
    """Invert :func:`encode_composite` for a known tuple arity."""
    if arity < 2:
        raise ValueError("arity must be at least two")
    components = []
    for _ in range(arity):
        components.append(encoded & _COMPONENT_MASK)
        encoded >>= _COMPONENT_BITS
    if encoded != 1:
        raise ValueError("not a composite of the given arity")
    return tuple(reversed(components))


def decode_composite_answer(
    answer: HotListAnswer, arity: int
) -> list[tuple[tuple[int, ...], float]]:
    """Decode a hot-list answer over composites into value tuples."""
    return [
        (decode_composite(entry.value, arity), entry.estimated_count)
        for entry in answer
    ]
