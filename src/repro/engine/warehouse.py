"""The data warehouse: base data plus load-stream observers.

Implements the data flow of the paper's Figure 2: new data loaded into
the warehouse is *also* observed by the approximate answer engine,
which updates its synopses without ever reading base data back.  Exact
computations scan the base data and are charged one simulated disk
access per row scanned, making the cost asymmetry the paper motivates
visible in the counters.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import numpy as np

from repro.engine.relation import Relation, RelationError
from repro.randkit.coins import CostCounters

__all__ = ["DataWarehouse"]

# (relation name, normalised row, is_insert)
LoadObserver = Callable[[str, tuple, bool], None]

# Observers may additionally expose
# ``observe_batch(relation_name, columns)`` taking a mapping from
# attribute name to a whole numpy array of that attribute's values for
# the batch; :meth:`DataWarehouse.load_batch` calls it once per batch
# instead of once per row.  Plain callables still receive the per-row
# fallback, so row-oriented observers (the operation log) keep working.


class DataWarehouse:
    """Relations plus an observer hook for streaming loads."""

    def __init__(self, counters: CostCounters | None = None) -> None:
        self._relations: dict[str, Relation] = {}
        self._observers: list[LoadObserver] = []
        self.counters = counters if counters is not None else CostCounters()

    # ------------------------------------------------------------------
    # Schema and observers
    # ------------------------------------------------------------------

    def create_relation(self, name: str, attributes: list[str]) -> Relation:
        """Create and register an empty relation."""
        if name in self._relations:
            raise RelationError(f"relation {name!r} already exists")
        relation = Relation(name, attributes)
        self._relations[name] = relation
        return relation

    def attach_relation(self, relation: Relation) -> Relation:
        """Register an already-built relation (recovery's restore path)."""
        if relation.name in self._relations:
            raise RelationError(
                f"relation {relation.name!r} already exists"
            )
        self._relations[relation.name] = relation
        return relation

    def relation_names(self) -> list[str]:
        """Sorted names of every registered relation."""
        return sorted(self._relations)

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise RelationError(f"no relation named {name!r}") from None

    def add_observer(self, observer: LoadObserver) -> None:
        """Subscribe to the load stream (the Figure-2 tap)."""
        self._observers.append(observer)

    def remove_observer(self, observer: LoadObserver) -> None:
        """Unsubscribe a previously added observer."""
        self._observers.remove(observer)

    def _notify(
        self, notify_one: Callable[[LoadObserver], None]
    ) -> None:
        """Run a notification against every observer, isolating errors.

        The relation mutation has already completed when this runs; a
        raising observer must not detach the other observers from the
        load stream (their synopses would silently diverge from the
        base data).  Every observer is notified, then the first error
        is re-raised.
        """
        first_error: Exception | None = None
        for observer in self._observers:
            try:
                notify_one(observer)
            except Exception as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def insert(self, relation_name: str, row: Mapping[str, int] | tuple) -> None:
        """Insert one row and notify observers."""
        relation = self.relation(relation_name)
        normalised = relation.insert(row)
        self.counters.inserts += 1
        self._notify(
            lambda observer: observer(relation_name, normalised, True)
        )

    def delete(self, relation_name: str, row: Mapping[str, int] | tuple) -> None:
        """Delete one row and notify observers."""
        relation = self.relation(relation_name)
        normalised = relation.delete(row)
        self.counters.deletes += 1
        self._notify(
            lambda observer: observer(relation_name, normalised, False)
        )

    def load(
        self,
        relation_name: str,
        rows: Iterable[Mapping[str, int] | tuple],
    ) -> int:
        """Bulk-insert rows; returns how many were loaded."""
        loaded = 0
        for row in rows:
            self.insert(relation_name, row)
            loaded += 1
        return loaded

    def load_batch(
        self,
        relation_name: str,
        columns: Mapping[str, "np.ndarray"],
    ) -> int:
        """Bulk-insert whole attribute arrays; returns rows loaded.

        The columnar fast path: the relation is updated with one
        ``np.unique`` and batch-capable observers (those exposing
        ``observe_batch``) receive the whole batch in one call.
        Row-oriented observers fall back to one callback per row, so
        the operation-log / deletion flow is unaffected.
        """
        relation = self.relation(relation_name)
        normalised = relation.insert_batch(columns)
        length = (
            len(next(iter(normalised.values()))) if normalised else 0
        )
        if length == 0:
            return 0
        self.counters.inserts += length
        row_view: list[tuple] | None = None

        def notify_one(observer: LoadObserver) -> None:
            nonlocal row_view
            batch = getattr(observer, "observe_batch", None)
            if batch is not None:
                batch(relation_name, normalised)
                return
            if row_view is None:
                row_view = list(
                    zip(
                        *(
                            normalised[attribute].tolist()
                            for attribute in relation.attributes
                        ),
                        strict=True,
                    )
                )
            for row in row_view:
                observer(relation_name, row, True)

        self._notify(notify_one)
        return length

    # ------------------------------------------------------------------
    # Exact answers (expensive: charged per scanned row)
    # ------------------------------------------------------------------

    def scan_cost(self, relation_name: str) -> int:
        """Disk accesses a full scan of the relation would cost."""
        return self.relation(relation_name).size

    def exact_column(self, relation_name: str, attribute: str) -> np.ndarray:
        """A full-scan copy of one attribute, charged to the counters."""
        relation = self.relation(relation_name)
        self.counters.disk_accesses += relation.size
        return relation.column(attribute)
