"""In-memory relations standing in for warehouse base data.

The paper's algorithms never read base data on the update path, so an
in-memory relation preserves every measured quantity; what matters is
that *exact* query answers are visibly expensive, which the warehouse
models by charging disk accesses per scanned row.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = ["RELATION_FORMAT_VERSION", "Relation", "RelationError"]

#: Bumped when the serialised relation layout changes; readers reject
#: payloads from a newer format.
RELATION_FORMAT_VERSION = 1


class RelationError(RuntimeError):
    """Raised on schema violations or inconsistent updates."""


class Relation:
    """A multiset of rows over a fixed list of attributes.

    Rows are mappings from attribute name to integer/float values;
    internally they are normalised to tuples in schema order.  Deletes
    are by full row value (the common warehouse case of retracting a
    previously loaded fact).
    """

    def __init__(self, name: str, attributes: list[str]) -> None:
        if not attributes:
            raise RelationError("a relation needs at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise RelationError("duplicate attribute names")
        self.name = name
        self.attributes = list(attributes)
        self._rows: Counter[tuple] = Counter()
        self._size = 0
        self._epoch = 0

    def _normalise(self, row: Mapping[str, int] | tuple) -> tuple:
        if isinstance(row, tuple):
            if len(row) != len(self.attributes):
                raise RelationError(
                    f"row arity {len(row)} != schema arity "
                    f"{len(self.attributes)}"
                )
            return row
        try:
            return tuple(row[attribute] for attribute in self.attributes)
        except KeyError as missing:
            raise RelationError(f"row missing attribute {missing}") from None

    def insert(self, row: Mapping[str, int] | tuple) -> tuple:
        """Insert one row; returns the normalised tuple."""
        normalised = self._normalise(row)
        self._rows[normalised] += 1
        self._size += 1
        self._epoch += 1
        return normalised

    def insert_batch(
        self, columns: Mapping[str, "np.ndarray"]
    ) -> dict[str, np.ndarray]:
        """Insert many rows given as whole attribute arrays.

        ``columns`` must provide one equal-length array per schema
        attribute.  The multiset is updated with one ``np.unique`` over
        the stacked rows instead of one hash update per row.  Returns
        the normalised columns (schema order, as numpy arrays) for the
        caller to fan out to observers.
        """
        try:
            arrays = [
                np.asarray(columns[attribute])
                for attribute in self.attributes
            ]
        except KeyError as missing:
            raise RelationError(
                f"batch missing attribute {missing}"
            ) from None
        extra = set(columns) - set(self.attributes)
        if extra:
            raise RelationError(
                f"batch has unknown attributes {sorted(extra)!r}"
            )
        length = len(arrays[0])
        if any(len(array) != length for array in arrays):
            raise RelationError("batch columns differ in length")
        if length == 0:
            return dict(zip(self.attributes, arrays, strict=True))
        self._epoch += 1
        if all(array.dtype.kind in "iu" for array in arrays):
            # Factorise each column to dense codes and combine them
            # into one int64 row key: per-column int sorts are much
            # faster than np.unique(axis=0)'s void-dtype row sort.
            codes = np.zeros(length, dtype=np.int64)
            capacity = 1
            for array in arrays:
                uniques, inverse = np.unique(
                    array, return_inverse=True
                )
                if capacity > (2**62) // max(len(uniques), 1):
                    break
                capacity *= len(uniques)
                codes = codes * np.int64(len(uniques)) + inverse
            else:
                _, first_index, multiplicities = np.unique(
                    codes, return_index=True, return_counts=True
                )
                gathered = zip(
                    *(
                        array[first_index].tolist()
                        for array in arrays
                    ),
                    strict=True,
                )
                for row, count in zip(
                    gathered, multiplicities.tolist(), strict=True
                ):
                    self._rows[row] += count
                self._size += length
                return dict(zip(self.attributes, arrays, strict=True))
            # Key space overflowed int64: fall back to row hashing.
            self._rows.update(
                zip(*(array.tolist() for array in arrays), strict=True)
            )
        else:
            # Mixed/float columns: keep each component's native Python
            # type so tuples match what per-row inserts would store.
            self._rows.update(
                zip(*(array.tolist() for array in arrays), strict=True)
            )
        self._size += length
        return dict(zip(self.attributes, arrays, strict=True))

    def delete(self, row: Mapping[str, int] | tuple) -> tuple:
        """Delete one occurrence of a row; raises if absent."""
        normalised = self._normalise(row)
        current = self._rows.get(normalised, 0)
        if current <= 0:
            raise RelationError(f"delete of absent row {normalised}")
        if current == 1:
            del self._rows[normalised]
        else:
            self._rows[normalised] = current - 1
        self._size -= 1
        self._epoch += 1
        return normalised

    def __len__(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        """Number of live rows."""
        return self._size

    @property
    def epoch(self) -> int:
        """Monotone ingest epoch: bumped by every mutation.

        Each :meth:`insert`, :meth:`insert_batch`, and :meth:`delete`
        advances the counter (a batch counts as one epoch).  Consumers
        that memoize derived results -- the engine's query-result
        cache above all -- compare stored epochs against the current
        one to detect staleness without subscribing to the stream.
        """
        return self._epoch

    def attribute_index(self, attribute: str) -> int:
        """Schema position of an attribute."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise RelationError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def column(self, attribute: str) -> np.ndarray:
        """All live values of one attribute (a full scan).

        Row order is not meaningful for a multiset; values are grouped
        by row identity.
        """
        index = self.attribute_index(attribute)
        if self._size == 0:
            return np.empty(0, dtype=np.int64)
        values = np.empty(self._size, dtype=np.float64)
        cursor = 0
        all_integral = True
        for row, count in self._rows.items():
            value = row[index]
            values[cursor : cursor + count] = value
            cursor += count
            all_integral = all_integral and float(value).is_integer()
        if all_integral:
            return values.astype(np.int64)
        return values

    def rows(self) -> Iterable[tuple]:
        """Iterate live rows (each repeated by its multiplicity)."""
        for row, count in self._rows.items():
            for _ in range(count):
                yield row

    # ------------------------------------------------------------------
    # Snapshots (the checkpoint payload for base data)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The relation as a JSON-able dict (multiset form)."""
        return {
            "format_version": RELATION_FORMAT_VERSION,
            "name": self.name,
            "attributes": list(self.attributes),
            "rows": [
                [list(row), count] for row, count in self._rows.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Relation":
        """Rebuild a relation from :meth:`to_dict` output."""
        version = int(payload.get("format_version", 0))
        if version > RELATION_FORMAT_VERSION:
            raise RelationError(
                f"relation snapshot format {version} is newer than this "
                f"build reads (up to {RELATION_FORMAT_VERSION})"
            )
        relation = cls(
            str(payload["name"]), list(payload["attributes"])
        )
        for values, count in payload.get("rows", []):
            row = tuple(values)
            if len(row) != len(relation.attributes):
                raise RelationError(
                    f"snapshot row arity {len(row)} != schema arity "
                    f"{len(relation.attributes)}"
                )
            if int(count) < 1:
                raise RelationError(
                    f"snapshot row {row} has multiplicity {count}"
                )
            relation._rows[row] = int(count)
            relation._size += int(count)
        # A restored relation starts a fresh epoch sequence; seed it
        # with the row count so it never trivially equals a new empty
        # relation's epoch 0.
        relation._epoch = relation._size
        return relation
