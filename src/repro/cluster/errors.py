"""Typed errors for the sharded-warehouse front."""

from __future__ import annotations

__all__ = ["ClusterError", "ShardCrashed", "ShardUnavailable"]


class ClusterError(Exception):
    """Base class for coordinator-side failures."""


class ShardCrashed(ClusterError):
    """A worker process died mid-conversation.

    The coordinator raises this internally when a socket to a shard
    breaks; callers normally never see it because the coordinator
    absorbs the crash into degraded answering and (when auto-restart
    is on) respawns the worker.
    """

    def __init__(self, shard: int, reason: str) -> None:
        super().__init__(f"shard {shard} crashed: {reason}")
        self.shard = shard
        self.reason = reason


class ShardUnavailable(ClusterError):
    """An operation needed a shard that is down and did not recover.

    Raised by operations that cannot honestly degrade -- ingest must
    reach the partition owner, and a lossless Theorem-2/5 merge needs
    every shard's synopsis.
    """

    def __init__(self, shard: int, operation: str) -> None:
        super().__init__(
            f"shard {shard} is unavailable for {operation!r}"
        )
        self.shard = shard
        self.operation = operation
