"""The scatter/gather coordinator over a fleet of shard workers.

:class:`ShardedWarehouse` owns N worker processes
(:mod:`repro.cluster.worker`), each with a private WAL/checkpoint
directory, and presents the single-process warehouse API: create
relations, register synopses, load columnar batches, answer queries.
Batches are split by value-hash partitioning
(:mod:`repro.cluster.partition`) and scattered; answers are gathered
and combined with the estimator algebra of
:mod:`repro.cluster.gather`, or -- for frequency and equality
aggregates on the partition attribute -- routed to the single owner
shard.

Failover contract
-----------------
A dead worker (socket EOF, reset, or request timeout) is detected at
the next conversation with it.  The coordinator marks the shard down,
counts a failover, and -- with ``auto_restart`` (the default) --
respawns the worker, whose boot *is* WAL replay: it rejoins with every
acknowledged batch and registration restored.  While a shard is down,
queries are served **degraded** from the survivors and the returned
:class:`~repro.cluster.gather.ClusterAnswer` says so via
``shards_responding < shards_total``.  Operations that cannot honestly
degrade -- ingest to the dead owner, registration, lossless
Theorem-2/5 merges -- wait for recovery and raise
:class:`~repro.cluster.errors.ShardUnavailable` if it never comes.

Ingest is *not* atomic across shards: if a worker dies mid-scatter the
survivors keep the rows they acknowledged and
:class:`~repro.cluster.errors.ShardCrashed` reports the partition that
was lost (its shard recovers to the last acknowledged batch).

Randomness discipline (RL016): every seed handed to a worker --
recovery seeds per incarnation, synopsis seeds per registration, merge
seeds per gather -- is derived through
:func:`repro.randkit.spawn_seeds` chains from the coordinator's one
master seed.  No RNG object crosses a process boundary.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.cluster.errors import ClusterError, ShardCrashed, ShardUnavailable
from repro.cluster.gather import (
    ClusterAnswer,
    merge_hotlist_responses,
    merge_ratio_responses,
    merge_scalar_responses,
)
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.partition import partition_columns, shard_of_value
from repro.cluster.worker import (
    HELLO_ID,
    MAX_FRAME_BYTES,
    ShardConfig,
    worker_main,
)
from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.engine.queries import (
    AverageQuery,
    CountQuery,
    DistinctCountQuery,
    FrequencyQuery,
    HotListQuery,
    JoinSizeQuery,
    Query,
    SelectivityQuery,
    SumQuery,
)
from repro.engine.snapshots import restore_synopsis
from repro.faults.plan import FaultPlan
from repro.obs.clock import monotonic
from repro.obs.metrics import MetricsRegistry
from repro.persist.columns import encode_columns
from repro.randkit import spawn_seeds
from repro.serving import codec
from repro.serving.protocol import (
    FrameDecoder,
    ProtocolError,
    encode_request,
    parse_reply,
)

__all__ = ["ShardedWarehouse"]

_RECV_BYTES = 1 << 16


class _ShardHandle:
    """Coordinator-side state of one worker: process, socket, lock.

    The lock serializes conversations on the socket, so concurrent
    coordinator calls (an ingest thread racing a query thread) each
    get a clean request/reply exchange.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Any = None
        self.sock: socket.socket | None = None
        self.decoder: FrameDecoder | None = None
        self.lock = threading.Lock()
        self.state = "down"  # "up" | "down" | "recovering"
        self.incarnation = 0
        self.request_count = 0
        self.ready = threading.Event()
        self.last_hello: dict[str, Any] | None = None


class ShardedWarehouse:
    """A multi-process warehouse behind one scatter/gather front."""

    def __init__(
        self,
        shards: int,
        directory: str | Path,
        *,
        seed: int = 0,
        sync_every: int = 1,
        registry: MetricsRegistry | None = None,
        start_method: str | None = None,
        fault_plans: Mapping[int, FaultPlan] | None = None,
        request_timeout: float = 30.0,
        auto_restart: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        self._shards = shards
        self._directory = Path(directory)
        self._sync_every = sync_every
        self._request_timeout = request_timeout
        self._auto_restart = auto_restart
        # Fault plans apply to the first incarnation only: a respawned
        # worker boots clean, which is what lets failover tests kill a
        # shard once and watch it come back.
        self._fault_plans = dict(fault_plans or {})
        self._ctx = multiprocessing.get_context(
            start_method or "forkserver"
        )
        self.metrics = ClusterMetrics(registry)
        # Seed tree: one master fans out to per-shard masters (whose
        # children seed each incarnation's recovery), a registration
        # master, and a merge master.  spawn_seeds everywhere (RL016).
        tree = spawn_seeds(seed, shards + 2)
        self._shard_masters = tree[:shards]
        self._registration_master = tree[shards]
        self._merge_master = tree[shards + 1]
        self._registration_count = 0
        self._merge_count = 0
        self._state_lock = threading.Lock()
        self._handles = [_ShardHandle(index) for index in range(shards)]
        self._pool = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="repro-cluster"
        )
        # relation -> partition attributes; (relation, attribute) ->
        # registration spec ({"kind", "hotlist"}).
        self._partition_by: dict[str, tuple[str, ...]] = {}
        self._synopses: dict[tuple[str, str], dict[str, Any]] = {}
        self._closed = False
        self.metrics.shards_total.set(shards)
        self.metrics.shards_up.set(0)
        self.metrics.degraded.set(1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardedWarehouse":
        """Spawn every worker and block until all have recovered."""
        list(
            self._pool.map(
                lambda handle: self._boot_shard(handle),
                self._handles,
            )
        )
        failed = [h.index for h in self._handles if h.state != "up"]
        if failed:
            raise ShardUnavailable(failed[0], "start")
        return self

    def __enter__(self) -> "ShardedWarehouse":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Say goodbye to every live worker and reap the processes."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            with handle.lock:
                if handle.sock is not None and handle.state == "up":
                    try:
                        self._converse(handle, "bye", {})
                    except (ClusterError, OSError):
                        pass
                self._teardown_locked(handle)
        self._pool.shutdown(wait=True)
        self.metrics.shards_up.set(0)

    def _teardown_locked(self, handle: _ShardHandle) -> None:
        if handle.sock is not None:
            try:
                handle.sock.close()
            except OSError:
                pass
            handle.sock = None
        if handle.process is not None:
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5)
            handle.process = None
        handle.state = "down"
        handle.ready.clear()

    # ------------------------------------------------------------------
    # Spawning and failover
    # ------------------------------------------------------------------

    def _recovery_seed(self, index: int, incarnation: int) -> int:
        chain = spawn_seeds(self._shard_masters[index], incarnation + 1)
        return chain[incarnation]

    def _boot_shard(self, handle: _ShardHandle) -> None:
        """Spawn one worker and wait for its hello (blocking)."""
        incarnation = handle.incarnation
        plan = (
            self._fault_plans.get(handle.index)
            if incarnation == 0
            else None
        )
        config = ShardConfig(
            index=handle.index,
            shards=self._shards,
            directory=str(self._directory / f"shard-{handle.index:02d}"),
            recovery_seed=self._recovery_seed(handle.index, incarnation),
            sync_every=self._sync_every,
            fault_plan=plan,
        )
        parent, child = socket.socketpair()
        process = self._ctx.Process(
            target=worker_main, args=(config, child), daemon=True
        )
        process.start()
        child.close()
        parent.settimeout(self._request_timeout)
        decoder = FrameDecoder(
            max_frame_bytes=MAX_FRAME_BYTES,
            source=f"coordinator<-shard-{handle.index}",
        )
        hello: dict[str, Any] | None = None
        try:
            while hello is None:
                data = parent.recv(_RECV_BYTES)
                if not data:
                    raise ShardCrashed(
                        handle.index, "died during recovery"
                    )
                for payload in decoder.feed(data):
                    reply_id, result, error = parse_reply(payload)
                    if reply_id == HELLO_ID and result is not None:
                        hello = result
                        break
        except (OSError, ProtocolError, ShardCrashed):
            parent.close()
            process.join(timeout=5)
            with handle.lock:
                handle.state = "down"
                handle.ready.clear()
            return
        with handle.lock:
            handle.process = process
            handle.sock = parent
            handle.decoder = decoder
            handle.incarnation = incarnation + 1
            handle.last_hello = hello
            handle.state = "up"
            handle.ready.set()
        self._refresh_health_gauges()

    def _on_shard_death(self, handle: _ShardHandle, reason: str) -> None:
        """Handle-lock held: mark down, count, and maybe respawn."""
        if handle.state != "up":
            return
        handle.state = "down"
        handle.ready.clear()
        self.metrics.failovers_total.inc()
        if handle.sock is not None:
            try:
                handle.sock.close()
            except OSError:
                pass
            handle.sock = None
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
        self._refresh_health_gauges()
        if self._auto_restart and not self._closed:
            handle.state = "recovering"
            self.metrics.restarts_total.inc()
            thread = threading.Thread(
                target=self._boot_shard,
                args=(handle,),
                name=f"repro-cluster-respawn-{handle.index}",
                daemon=True,
            )
            thread.start()

    def _refresh_health_gauges(self) -> None:
        up = sum(1 for h in self._handles if h.state == "up")
        self.metrics.shards_up.set(up)
        self.metrics.degraded.set(0 if up == self._shards else 1)

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def shards_up(self) -> int:
        return sum(1 for h in self._handles if h.state == "up")

    def wait_until_healthy(self, timeout: float | None = None) -> bool:
        """Block until every shard is up (or the timeout expires)."""
        deadline = None if timeout is None else monotonic() + timeout
        for handle in self._handles:
            remaining: float | None = None
            if deadline is not None:
                remaining = max(0.0, deadline - monotonic())
            if not handle.ready.wait(remaining):
                return False
        return True

    def kill_shard(self, index: int) -> None:
        """Hard-kill one worker (test hook; detection is lazy)."""
        handle = self._handles[index]
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5)

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _converse(
        self,
        handle: _ShardHandle,
        op: str,
        params: dict[str, Any],
    ) -> dict[str, Any]:
        """One request/reply exchange; handle lock must be held."""
        sock = handle.sock
        decoder = handle.decoder
        if sock is None or decoder is None or handle.state != "up":
            raise ShardUnavailable(handle.index, op)
        handle.request_count += 1
        request_id = (
            f"{handle.index}:{handle.incarnation}:{handle.request_count}"
        )
        try:
            sock.sendall(encode_request(request_id, op, params))
            while True:
                data = sock.recv(_RECV_BYTES)
                if not data:
                    raise ShardCrashed(handle.index, "socket closed")
                for payload in decoder.feed(data):
                    reply_id, result, error = parse_reply(payload)
                    if reply_id != request_id:
                        continue  # stale frame from a dead exchange
                    if error is not None:
                        code, message = error
                        raise _RemoteError(code, message)
                    assert result is not None
                    return result
        except (TimeoutError, socket.timeout) as exc:
            self._on_shard_death(handle, f"timeout: {exc}")
            raise ShardCrashed(handle.index, "request timed out")
        except (OSError, ProtocolError, ShardCrashed) as exc:
            self._on_shard_death(handle, str(exc))
            raise ShardCrashed(handle.index, str(exc))

    def _request(
        self,
        handle: _ShardHandle,
        op: str,
        params: dict[str, Any],
    ) -> dict[str, Any]:
        """One locked exchange with latency + outcome metrics."""
        started = monotonic()
        try:
            with handle.lock:
                result = self._converse(handle, op, params)
        except _RemoteError:
            self.metrics.requests_total(op, "error").inc()
            raise
        except ClusterError:
            self.metrics.requests_total(op, "crash").inc()
            raise
        elapsed = monotonic() - started
        if op == "ingest":
            self.metrics.shard_ingest_seconds(handle.index).observe(
                elapsed
            )
        elif op in ("query", "query_batch"):
            self.metrics.shard_query_seconds(handle.index).observe(
                elapsed
            )
        self.metrics.requests_total(op, "ok").inc()
        return result

    def _up_handles(self) -> list[_ShardHandle]:
        return [h for h in self._handles if h.state == "up"]

    def _scatter(
        self,
        op: str,
        params_of: Callable[[_ShardHandle], dict[str, Any] | None],
        handles: Sequence[_ShardHandle],
    ) -> list[tuple[_ShardHandle, dict[str, Any]]]:
        """Fan one op out; gather the successes, absorb the crashes."""
        targets = [
            (handle, params)
            for handle in handles
            for params in (params_of(handle),)
            if params is not None
        ]
        self.metrics.scatter_fanout.set(len(targets))

        def one(
            item: tuple[_ShardHandle, dict[str, Any]],
        ) -> tuple[_ShardHandle, dict[str, Any]] | None:
            handle, params = item
            try:
                return handle, self._request(handle, op, params)
            except ShardCrashed:
                return None
            except ShardUnavailable:
                return None

        replies = list(self._pool.map(one, targets))
        return [reply for reply in replies if reply is not None]

    def _require_all(self, operation: str) -> list[_ShardHandle]:
        """All shards, waiting out in-flight recoveries."""
        if not self.wait_until_healthy(timeout=self._request_timeout):
            for handle in self._handles:
                if handle.state != "up":
                    raise ShardUnavailable(handle.index, operation)
        return list(self._handles)

    # ------------------------------------------------------------------
    # Warehouse API
    # ------------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        attributes: Sequence[str],
        *,
        partition_by: Sequence[str] | None = None,
    ) -> None:
        """Create a relation on every shard (requires a full fleet)."""
        attributes = tuple(str(a) for a in attributes)
        key = tuple(partition_by) if partition_by else attributes[:1]
        for attr in key:
            if attr not in attributes:
                raise ValueError(
                    f"partition attribute {attr!r} is not in {name!r}"
                )
        handles = self._require_all("create_relation")
        replies = self._scatter(
            "create_relation",
            lambda _h: {"relation": name, "attributes": attributes},
            handles,
        )
        if len(replies) != len(handles):
            missing = {h.index for h in handles} - {
                h.index for h, _ in replies
            }
            raise ShardUnavailable(min(missing), "create_relation")
        self._partition_by[name] = key

    def register_synopsis(
        self,
        relation: str,
        attribute: str,
        *,
        kind: str = "concise-sample",
        footprint_bound: int = 1000,
        hotlist: bool = False,
    ) -> None:
        """Register one synopsis (plus optional hot list) fleet-wide.

        Per-shard sample seeds come from a fresh ``spawn_seeds`` chain
        per registration, so shard samples are mutually independent
        and reproducible from the coordinator's master seed alone.
        """
        handles = self._require_all("register")
        self._registration_count += 1
        chain = spawn_seeds(
            self._registration_master, self._registration_count
        )
        shard_seeds = spawn_seeds(
            chain[self._registration_count - 1], 2 * self._shards
        )

        def params(handle: _ShardHandle) -> dict[str, Any]:
            base = 2 * handle.index
            return {
                "relation": relation,
                "attribute": attribute,
                "kind": kind,
                "footprint_bound": footprint_bound,
                "seeds": shard_seeds[base : base + 2],
                "hotlist": hotlist,
            }

        replies = self._scatter("register", params, handles)
        if len(replies) != len(handles):
            missing = {h.index for h in handles} - {
                h.index for h, _ in replies
            }
            raise ShardUnavailable(min(missing), "register")
        self._synopses[(relation, attribute)] = {
            "kind": kind,
            "hotlist": hotlist,
            "footprint_bound": footprint_bound,
        }

    def load_batch(
        self,
        relation: str,
        columns: Mapping[str, np.ndarray],
    ) -> int:
        """Partition one columnar batch and scatter it to its owners.

        Returns the number of rows acknowledged.  Raises
        :class:`ShardCrashed` if an owner died mid-batch (its rows are
        lost until re-sent; the other shards keep theirs) and
        :class:`ShardUnavailable` if an owner stayed down past the
        request timeout.
        """
        partition_by = self._partition_by.get(relation)
        if partition_by is None:
            raise KeyError(f"unknown relation {relation!r}")
        pieces = partition_columns(columns, partition_by, self._shards)
        targets = [
            (self._handles[shard], piece)
            for shard, piece in enumerate(pieces)
            if piece
        ]
        for handle, _piece in targets:
            if handle.state != "up" and not handle.ready.wait(
                self._request_timeout
            ):
                raise ShardUnavailable(handle.index, "ingest")
        self.metrics.scatter_fanout.set(len(targets))

        def one(item: tuple[_ShardHandle, dict[str, np.ndarray]]) -> int:
            handle, piece = item
            rows = len(next(iter(piece.values())))
            result = self._request(
                handle,
                "ingest",
                {
                    "relation": relation,
                    "columns": encode_columns(dict(piece)),
                },
            )
            self.metrics.ingest_rows_total(handle.index).inc(rows)
            return int(result["rows"])

        return sum(self._pool.map(one, targets))

    def checkpoint(self) -> None:
        """Force a checkpoint on every live shard."""
        self._scatter("checkpoint", lambda _h: {}, self._up_handles())

    def stats(self) -> dict[int, dict[str, Any]]:
        """Per-shard worker stats, keyed by shard index."""
        replies = self._scatter("stats", lambda _h: {}, self._up_handles())
        return {handle.index: result for handle, result in replies}

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------

    def answer(self, query: Query) -> ClusterAnswer:
        """Answer one query: routed to the owner shard when the
        partition key pins the value, scattered and gathered otherwise.
        """
        if isinstance(query, JoinSizeQuery):
            raise ClusterError(
                "join-size queries are not supported on a sharded "
                "warehouse; merge the synopses and ask one engine"
            )
        owner = self._route(query)
        if owner is not None:
            handle = self._handles[owner]
            if handle.state == "up" or handle.ready.wait(
                self._request_timeout
            ):
                try:
                    result = self._request(
                        handle,
                        "query",
                        {"query": codec.encode_query(query)},
                    )
                except ShardCrashed:
                    pass  # fall through to a degraded scatter
                else:
                    # The owner holds every row with this value, so a
                    # routed answer has full coverage.
                    return ClusterAnswer(
                        response=codec.decode_response(
                            result["response"]
                        ),
                        shards_responding=self._shards,
                        shards_total=self._shards,
                    )
        if isinstance(query, AverageQuery):
            return self._answer_average(query)
        if isinstance(query, SelectivityQuery):
            return self._answer_selectivity(query)
        return self._answer_scatter(query)

    def answer_batch(
        self, queries: Sequence[Query]
    ) -> list[ClusterAnswer]:
        """Answer many queries, batching routed ones per owner shard.

        Routed queries to the same owner travel in one
        ``query_batch`` frame -- the fan-out path that makes query
        throughput scale with the shard count.
        """
        routed: dict[int, list[int]] = {}
        answers: list[ClusterAnswer | None] = [None] * len(queries)
        for position, query in enumerate(queries):
            owner = self._route(query)
            if owner is not None and self._handles[owner].state == "up":
                routed.setdefault(owner, []).append(position)
            else:
                answers[position] = self.answer(query)

        def one_owner(item: tuple[int, list[int]]) -> None:
            owner, positions = item
            handle = self._handles[owner]
            payloads = [
                codec.encode_query(queries[position])
                for position in positions
            ]
            try:
                result = self._request(
                    handle, "query_batch", {"queries": payloads}
                )
            except ClusterError:
                for position in positions:
                    answers[position] = self.answer(queries[position])
                return
            for position, entry in zip(
                positions, result["answers"], strict=True
            ):
                answers[position] = ClusterAnswer(
                    response=codec.decode_response(entry["response"]),
                    shards_responding=self._shards,
                    shards_total=self._shards,
                )

        list(self._pool.map(one_owner, routed.items()))
        assert all(answer is not None for answer in answers)
        return [answer for answer in answers if answer is not None]

    def _route(self, query: Query) -> int | None:
        """The owner shard when the partition key pins one value."""
        if self._shards == 1:
            return 0
        relation = getattr(query, "relation", None)
        if relation is None:
            return None
        key = self._partition_by.get(relation)
        if key is None or len(key) != 1:
            return None
        if getattr(query, "attribute", None) != key[0]:
            return None
        if isinstance(query, FrequencyQuery):
            return shard_of_value(int(query.value), self._shards)
        if isinstance(query, (CountQuery, SumQuery)):
            predicate = query.predicate
            if predicate is not None and predicate.equals is not None:
                return shard_of_value(
                    int(predicate.equals), self._shards
                )
        return None

    def _answer_scatter(self, query: Query) -> ClusterAnswer:
        handles = self._up_handles()
        if isinstance(query, DistinctCountQuery):
            key = self._partition_by.get(query.relation, ())
            if tuple(key) != (query.attribute,):
                raise ClusterError(
                    "distinct counts only merge across shards when "
                    "the attribute is the partition key (per-shard "
                    "value sets must be disjoint)"
                )
        replies = self._scatter(
            "query",
            lambda _h: {"query": codec.encode_query(query)},
            handles,
        )
        if not replies:
            raise ShardUnavailable(0, "query")
        responses = [
            codec.decode_response(result["response"])
            for _handle, result in replies
        ]
        responding = len(replies)
        if isinstance(query, HotListQuery):
            answer = merge_hotlist_responses(
                responses, query.k, responding, self._shards
            )
        else:
            answer = merge_scalar_responses(
                responses, responding, self._shards
            )
        if answer.degraded:
            self.metrics.degraded_answers_total.inc()
        return answer

    def _answer_average(self, query: AverageQuery) -> ClusterAnswer:
        """AVERAGE = scattered SUM over scattered COUNT (or exact
        per-shard row counts when there is no predicate)."""
        sum_query = SumQuery(
            query.relation, query.attribute, query.predicate
        )
        count_query = CountQuery(
            query.relation, query.attribute, query.predicate
        )
        payloads = [
            codec.encode_query(sum_query),
            codec.encode_query(count_query),
        ]
        replies = self._scatter(
            "query_batch",
            lambda _h: {"queries": payloads},
            self._up_handles(),
        )
        if not replies:
            raise ShardUnavailable(0, "query")
        numerators = []
        denominators = []
        for _handle, result in replies:
            sum_entry, count_entry = result["answers"]
            numerators.append(
                codec.decode_response(sum_entry["response"])
            )
            if query.predicate is None:
                denominators.append(float(sum_entry["relation_rows"]))
            else:
                count = codec.decode_response(count_entry["response"])
                denominators.append(float(count.answer))
        answer = merge_ratio_responses(
            numerators,
            denominators,
            len(replies),
            self._shards,
            method="cluster:average",
        )
        if answer.degraded:
            self.metrics.degraded_answers_total.inc()
        return answer

    def _answer_selectivity(
        self, query: SelectivityQuery
    ) -> ClusterAnswer:
        """SELECTIVITY = scattered predicate COUNT over exact rows."""
        count_query = CountQuery(
            query.relation, query.attribute, query.predicate
        )
        payload = {"query": codec.encode_query(count_query)}
        replies = self._scatter(
            "query", lambda _h: payload, self._up_handles()
        )
        if not replies:
            raise ShardUnavailable(0, "query")
        numerators = [
            codec.decode_response(result["response"])
            for _handle, result in replies
        ]
        denominators = [
            float(result["relation_rows"]) for _handle, result in replies
        ]
        answer = merge_ratio_responses(
            numerators,
            denominators,
            len(replies),
            self._shards,
            method="cluster:selectivity",
        )
        if answer.degraded:
            self.metrics.degraded_answers_total.inc()
        return answer

    # ------------------------------------------------------------------
    # Theorem-2/5 synopsis gathering
    # ------------------------------------------------------------------

    def merged_synopsis(
        self,
        relation: str,
        attribute: str,
        *,
        role: int = 0,
        footprint_bound: int | None = None,
    ) -> ConciseSample | CountingSample:
        """Gather every shard's synopsis and merge per Theorem 2/5.

        Needs the full fleet (a partial merge would silently drop a
        partition); waits out recoveries first.  The merged footprint
        bound defaults to the sum of the shard bounds, matching the
        equal-total-footprint comparison of the statistical tests.
        """
        handles = self._require_all("synopsis")
        params = {
            "relation": relation,
            "attribute": attribute,
            "role": role,
        }
        replies = self._scatter("synopsis", lambda _h: params, handles)
        if len(replies) != len(handles):
            missing = {h.index for h in handles} - {
                h.index for h, _ in replies
            }
            raise ShardUnavailable(min(missing), "synopsis")
        self._merge_count += 1
        chain = spawn_seeds(self._merge_master, self._merge_count)
        seeds = spawn_seeds(chain[self._merge_count - 1], len(replies) + 1)
        states = [
            result["state"]
            for _handle, result in sorted(
                replies, key=lambda reply: reply[0].index
            )
        ]
        restored = [
            restore_synopsis(state, seed=seeds[i])
            for i, state in enumerate(states)
        ]
        bound = footprint_bound
        if bound is None:
            bound = sum(
                synopsis.footprint_bound for synopsis in restored
            )
        first = restored[0]
        if isinstance(first, CountingSample):
            counting = [s for s in restored if isinstance(s, CountingSample)]
            if len(counting) != len(restored):
                raise ClusterError("mixed synopsis kinds across shards")
            from repro.core.merge import merge_counting

            return merge_counting(
                counting, seed=seeds[-1], footprint_bound=bound
            )
        if isinstance(first, ConciseSample):
            concise = [s for s in restored if isinstance(s, ConciseSample)]
            if len(concise) != len(restored):
                raise ClusterError("mixed synopsis kinds across shards")
            from repro.core.merge import merge_concise

            return merge_concise(
                concise, seed=seeds[-1], footprint_bound=bound
            )
        raise ClusterError(
            f"cannot merge {type(first).__name__} synopses"
        )

    # ------------------------------------------------------------------
    # Introspection helpers (tests, obs report)
    # ------------------------------------------------------------------

    def shard_states(self) -> list[str]:
        """The per-shard coordinator view ("up"/"down"/"recovering")."""
        return [handle.state for handle in self._handles]

    def hello_of(self, index: int) -> dict[str, Any] | None:
        """The most recent hello frame of one shard (None before boot)."""
        return self._handles[index].last_hello


class _RemoteError(ClusterError):
    """A worker answered with a protocol-level error envelope."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
