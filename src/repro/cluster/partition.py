"""Value-hash partitioning of ingest batches across shards.

Every relation declares a *partition key* -- one attribute, or an
attribute pair packed through the same 24-bit composite encoding the
engine uses for attribute-tuple hot lists
(:func:`repro.engine.composite.encode_composite_array`), so a pair
key's shard assignment agrees with the composite value the synopses
see.  The packed key is mixed through a splitmix64 finalizer and
reduced modulo the shard count.

Value-hashing (rather than round-robin) buys the coordinator routing
power: all rows carrying one key value live on exactly one shard, so

* a frequency query (or an equality-predicate aggregate) on the
  partition attribute needs only the owner shard;
* per-shard value sets are disjoint, making distinct-style answers and
  hot-list unions additive across shards.

Which shard sees which elements is immaterial to the *merged law* --
admission coins are i.i.d. per element (Theorem 2) -- so partitioning
only affects balance and routing, never correctness.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.engine.composite import encode_composite_array

__all__ = [
    "partition_columns",
    "partition_keys",
    "shard_of_keys",
    "shard_of_value",
]

# splitmix64 finalizer constants (Steele, Lea & Flood 2014).  A full
# avalanche mix, so consecutive key values spread uniformly across
# shards instead of striping.
_MIX_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULT_2 = np.uint64(0x94D049BB133111EB)
_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)


def _mix(keys: np.ndarray) -> np.ndarray:
    """Splitmix64-finalize an int64 key array (vectorized)."""
    mixed = keys.astype(np.uint64)
    with np.errstate(over="ignore"):
        mixed ^= mixed >> _SHIFT_30
        mixed *= _MIX_MULT_1
        mixed ^= mixed >> _SHIFT_27
        mixed *= _MIX_MULT_2
        mixed ^= mixed >> _SHIFT_31
    return mixed


def partition_keys(
    columns: Mapping[str, np.ndarray],
    partition_by: Sequence[str],
) -> np.ndarray:
    """The int64 partition key of every row in a columnar batch.

    One attribute uses the column verbatim; a pair is packed with
    :func:`~repro.engine.composite.encode_composite_array` (sentinel
    bit plus two 24-bit components), so pair-keyed shard placement is
    a pure function of the composite value.
    """
    if len(partition_by) == 1:
        return np.asarray(columns[partition_by[0]], dtype=np.int64)
    if len(partition_by) == 2:
        return encode_composite_array(
            tuple(np.asarray(columns[name]) for name in partition_by)
        )
    raise ValueError(
        "partition keys support one attribute or a pair, got "
        f"{len(partition_by)}"
    )


def shard_of_keys(keys: np.ndarray, shards: int) -> np.ndarray:
    """The owning shard index of every key (vectorized)."""
    if shards < 1:
        raise ValueError("shards must be positive")
    if shards == 1:
        return np.zeros(len(keys), dtype=np.int64)
    return (_mix(np.asarray(keys, dtype=np.int64)) % np.uint64(shards)).astype(
        np.int64
    )


def shard_of_value(value: int, shards: int) -> int:
    """The shard owning one partition-key value (query routing)."""
    return int(shard_of_keys(np.array([value], dtype=np.int64), shards)[0])


def partition_columns(
    columns: Mapping[str, np.ndarray],
    partition_by: Sequence[str],
    shards: int,
) -> list[dict[str, np.ndarray]]:
    """Split a columnar batch into one sub-batch per shard.

    Returns a list of length ``shards``; entries for shards that
    receive no rows are empty dicts.  Row order within a shard
    preserves stream order (stable selection), so each shard ingests a
    subsequence of the original stream.
    """
    arrays = {name: np.asarray(values) for name, values in columns.items()}
    if shards == 1:
        return [arrays]
    length = len(next(iter(arrays.values()))) if arrays else 0
    if length == 0:
        return [{} for _ in range(shards)]
    owners = shard_of_keys(partition_keys(arrays, partition_by), shards)
    pieces: list[dict[str, np.ndarray]] = []
    for shard in range(shards):
        mask = owners == shard
        if not mask.any():
            pieces.append({})
            continue
        pieces.append(
            {name: values[mask] for name, values in arrays.items()}
        )
    return pieces
