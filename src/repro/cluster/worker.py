"""One warehouse shard: a worker process over framed socket IPC.

Each worker owns a full single-process stack -- a
:class:`~repro.engine.warehouse.DataWarehouse`, an
:class:`~repro.engine.engine.ApproximateAnswerEngine`, and a
:class:`~repro.persist.recovery.RecoveryManager` over the shard's own
WAL/checkpoint directory -- and serves its coordinator over one socket
speaking the CRC-framed envelopes of :mod:`repro.serving.protocol`
(the torn/corrupt triage of the WAL framing, inherited verbatim).

Startup *is* recovery: the worker always rebuilds from its directory
(an empty store recovers to an empty warehouse), re-registers every
checkpointed synopsis binding with a fresh engine, and only then sends
its hello frame.  A respawned worker therefore rejoins with exactly
its WAL-recovered state, and the coordinator's failover path is the
ordinary startup path.

Registration convention: for each ``register`` op the worker binds the
aggregate sample first and the hot-list reporter's backing sample
second (same relation/attribute).  Binding order is preserved through
checkpoints, so a recovering worker can tell the two roles apart
without any side-channel state.

Fault injection rides the storage seam: a
:class:`~repro.faults.plan.FaultPlan` in the shard config wraps the
store's filesystem in a :class:`~repro.faults.injector.FaultyFilesystem`;
a planned crash kind terminates the process immediately (``os._exit``,
modelling ``kill -9`` -- no WAL close, no flush), which is how the
tests kill shards deterministically.
"""

from __future__ import annotations

import os
import socket
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.engine.engine import ApproximateAnswerEngine
from repro.engine.answering import NoSynopsisError
from repro.engine.snapshots import Snapshotable, snapshot_synopsis
from repro.faults.injector import FaultyFilesystem, SimulatedCrash
from repro.faults.plan import FaultPlan
from repro.hotlist.concise import ConciseHotList
from repro.hotlist.counting import CountingHotList
from repro.persist.checkpoint import CheckpointStore
from repro.persist.columns import decode_columns, encode_columns
from repro.persist.fsio import LocalFileSystem
from repro.persist.recovery import RecoveryManager
from repro.serving import codec
from repro.serving.protocol import (
    BAD_REQUEST,
    INTERNAL,
    NO_SYNOPSIS,
    QUERY_ERROR,
    FrameDecoder,
    ProtocolError,
    encode_error,
    encode_result,
    parse_request,
)

__all__ = [
    "HELLO_ID",
    "MAX_FRAME_BYTES",
    "ShardConfig",
    "worker_main",
]

#: Ingest frames carry whole columnar batches; allow well past the
#: serving default (1 MiB) before the oversize guard trips.
MAX_FRAME_BYTES = 64 << 20

#: The reserved request id of the worker's unsolicited ready frame.
HELLO_ID = "__hello__"

_RECV_BYTES = 1 << 16


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker process needs to boot (picklable).

    ``recovery_seed`` re-seeds restored synopsis randomness; the
    coordinator derives it -- and every synopsis seed it later sends
    in ``register`` ops -- via :func:`repro.randkit.spawn_seeds`, so
    no RNG object ever crosses the process boundary (RL016).
    """

    index: int
    shards: int
    directory: str
    recovery_seed: int
    sync_every: int = 1
    fault_plan: FaultPlan | None = None


class _ShardRuntime:
    """The worker's live state: store, manager, warehouse, engine."""

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        filesystem = None
        if config.fault_plan is not None:
            filesystem = FaultyFilesystem(
                LocalFileSystem(), config.fault_plan
            )
        self.store = CheckpointStore(
            config.directory,
            filesystem,
            sync_every=config.sync_every,
        )
        self.manager = RecoveryManager(self.store)
        state = self.manager.recover(seed=config.recovery_seed)
        self.warehouse = state.warehouse
        self.engine = ApproximateAnswerEngine(self.warehouse)
        # The fresh engine saw none of the recovered loads; prime its
        # population counts so sample scaling survives the restart.
        self.engine.adopt_row_counts()
        self.recovered_sequence = state.sequence
        self.replayed = state.replayed
        self._register_recovered()
        self.manager.attach(self.warehouse)

    def _register_recovered(self) -> None:
        """Re-register checkpointed bindings with the fresh engine.

        Per (relation, attribute) and in binding order: the first
        synopsis is the aggregate sample, the second the hot-list
        reporter's backing sample (see the module docstring).
        """
        seen: dict[tuple[str, str], int] = {}
        for binding in self.manager.bindings:
            key = (binding.relation, binding.attribute)
            role = seen.get(key, 0)
            seen[key] = role + 1
            if role == 0:
                self.engine.register_sample(
                    binding.relation, binding.attribute, binding.synopsis
                )
            else:
                self.engine.register_hotlist(
                    binding.relation,
                    binding.attribute,
                    _wrap_hotlist(binding.synopsis),
                )

    # ------------------------------------------------------------------
    # Op handlers
    # ------------------------------------------------------------------

    def hello(self) -> dict[str, Any]:
        return {
            "op": "hello",
            "shard": self.config.index,
            "sequence": self.recovered_sequence,
            "replayed": self.replayed,
        }

    def create_relation(self, params: dict[str, Any]) -> dict[str, Any]:
        name = str(params["relation"])
        attributes = tuple(str(a) for a in params["attributes"])
        self.warehouse.create_relation(name, attributes)
        return {"relation": name}

    def register(self, params: dict[str, Any]) -> dict[str, Any]:
        relation = str(params["relation"])
        attribute = str(params["attribute"])
        kind = str(params["kind"])
        bound = int(params["footprint_bound"])
        seeds = [int(seed) for seed in params["seeds"]]
        hotlist = bool(params.get("hotlist", False))
        if kind == "concise-sample":
            sample: Snapshotable = ConciseSample(bound, seed=seeds[0])
        elif kind == "counting-sample":
            sample = CountingSample(bound, seed=seeds[0])
        else:
            raise ValueError(f"unknown synopsis kind {kind!r}")
        self.engine.register_sample(relation, attribute, sample)
        self.manager.bind(relation, attribute, sample)
        if hotlist:
            if len(seeds) < 2:
                raise ValueError("hot-list registration needs two seeds")
            if kind == "concise-sample":
                reporter: ConciseHotList | CountingHotList = (
                    ConciseHotList(bound, seed=seeds[1])
                )
            else:
                reporter = CountingHotList(bound, seed=seeds[1])
            self.engine.register_hotlist(relation, attribute, reporter)
            self.manager.bind(relation, attribute, reporter.sample)
        # Bindings become durable with the checkpoint; without it a
        # crash before the first post-registration checkpoint would
        # recover relations but silently drop the synopses.
        sequence = self.manager.checkpoint()
        return {"sequence": sequence}

    def ingest(self, params: dict[str, Any]) -> dict[str, Any]:
        relation = str(params["relation"])
        columns = decode_columns(params["columns"])
        rows = self.warehouse.load_batch(relation, columns)
        return {"rows": rows, "sequence": self.manager.sequence}

    def query(self, params: dict[str, Any]) -> dict[str, Any]:
        query = codec.decode_query(params["query"])
        response = self.engine.answer(query)
        relation = getattr(query, "relation", None)
        return {
            "response": codec.encode_response(response),
            "relation_rows": (
                self.engine.rows_loaded(relation)
                if relation is not None
                else 0
            ),
        }

    def query_batch(self, params: dict[str, Any]) -> dict[str, Any]:
        answers = [
            self.query({"query": payload})
            for payload in params["queries"]
        ]
        return {"answers": answers}

    def synopsis(self, params: dict[str, Any]) -> dict[str, Any]:
        relation = str(params["relation"])
        attribute = str(params["attribute"])
        role = int(params.get("role", 0))
        occurrence = 0
        for binding in self.manager.bindings:
            if (binding.relation, binding.attribute) != (
                relation,
                attribute,
            ):
                continue
            if occurrence == role:
                return {"state": snapshot_synopsis(binding.synopsis)}
            occurrence += 1
        raise NoSynopsisError(
            f"no synopsis bound for {relation}.{attribute} role {role}"
        )

    def stats(self, params: dict[str, Any]) -> dict[str, Any]:
        return {
            "shard": self.config.index,
            "sequence": self.manager.sequence,
            "rows": {
                name: self.engine.rows_loaded(name)
                for name in self.warehouse.relation_names()
            },
            "bindings": len(self.manager.bindings),
        }

    def checkpoint(self, params: dict[str, Any]) -> dict[str, Any]:
        return {"sequence": self.manager.checkpoint()}


_HANDLERS = {
    "create_relation": _ShardRuntime.create_relation,
    "register": _ShardRuntime.register,
    "ingest": _ShardRuntime.ingest,
    "query": _ShardRuntime.query,
    "query_batch": _ShardRuntime.query_batch,
    "synopsis": _ShardRuntime.synopsis,
    "stats": _ShardRuntime.stats,
    "checkpoint": _ShardRuntime.checkpoint,
}


def _wrap_hotlist(
    sample: Snapshotable,
) -> ConciseHotList | CountingHotList:
    """A reporter sharing (not copying) a recovered backing sample."""
    if isinstance(sample, CountingSample):
        reporter: ConciseHotList | CountingHotList = CountingHotList(
            sample.footprint_bound, seed=0
        )
    elif isinstance(sample, ConciseSample):
        reporter = ConciseHotList(sample.footprint_bound, seed=0)
    else:
        raise ValueError(
            f"{type(sample).__name__} cannot back a hot list"
        )
    # The constructor's fresh sample is discarded; the reporter serves
    # from -- and the engine live-feeds -- the recovered one.
    reporter.sample = sample  # type: ignore[assignment]
    return reporter


def _error_code(error: Exception) -> str:
    if isinstance(error, NoSynopsisError):
        return NO_SYNOPSIS
    if isinstance(error, (ValueError, KeyError, TypeError)):
        return BAD_REQUEST
    return QUERY_ERROR


def worker_main(config: ShardConfig, channel: socket.socket) -> None:
    """The worker process entry point: recover, hello, serve, die.

    Runs until the coordinator sends ``bye`` (graceful: detach the
    WAL, close the store) or the socket closes.  A
    :class:`~repro.faults.injector.SimulatedCrash` from the fault plan
    -- and any ``crash`` op -- terminates the process immediately
    without cleanup, modelling a hard kill.
    """
    try:
        runtime = _ShardRuntime(config)
    except SimulatedCrash:
        os._exit(2)
        return  # pragma: no cover - unreachable
    decoder = FrameDecoder(
        max_frame_bytes=MAX_FRAME_BYTES,
        source=f"shard-{config.index}",
    )
    channel.sendall(encode_result(HELLO_ID, runtime.hello()))
    try:
        while True:
            data = channel.recv(_RECV_BYTES)
            if not data:
                return
            try:
                payloads = decoder.feed(data)
            except ProtocolError:
                return  # corrupt inbound stream: nothing safe to say
            for payload in payloads:
                try:
                    request_id, op, params = parse_request(payload)
                except ProtocolError as error:
                    channel.sendall(
                        encode_error(None, error.code, error.message)
                    )
                    continue
                if op == "bye":
                    channel.sendall(encode_result(request_id, {}))
                    runtime.manager.detach()
                    runtime.store.close()
                    return
                if op == "crash":
                    os._exit(2)
                handler = _HANDLERS.get(op)
                if handler is None:
                    channel.sendall(
                        encode_error(
                            request_id, BAD_REQUEST, f"unknown op {op!r}"
                        )
                    )
                    continue
                try:
                    result = handler(runtime, params)
                except SimulatedCrash:
                    os._exit(2)
                except Exception as error:  # noqa: BLE001 - wire boundary
                    channel.sendall(
                        encode_error(
                            request_id, _error_code(error), str(error)
                        )
                    )
                else:
                    channel.sendall(encode_result(request_id, result))
    except (BrokenPipeError, ConnectionResetError, OSError):
        return
    finally:
        channel.close()


def encode_ingest_columns(
    columns: dict[str, np.ndarray],
) -> dict[str, Any]:
    """Coordinator-side helper: columns as a JSON-able wire payload.

    Thin alias over the WAL's columnar codec so the ingest wire format
    and the batch WAL record format can never drift apart.
    """
    return encode_columns(columns)
