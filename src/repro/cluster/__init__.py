"""Multi-process sharded warehouse (scatter/gather over framed IPC).

The paper's Theorem-2/5 subsample merges make concise and counting
synopses losslessly mergeable, which the repo already exploits inside
one process (:mod:`repro.core.sharded`).  This package takes the same
BlinkDB-style shape across *processes*: ``k`` warehouse shards, each a
worker process owning its own WAL/checkpoint directory through the
existing :mod:`repro.persist` stack, coordinated by a
:class:`~repro.cluster.coordinator.ShardedWarehouse` front that
scatters value-hash-partitioned ingest batches, gathers per-shard
synopsis answers, and merges them -- true multi-core scaling instead
of GIL-limited threads.

Failover is part of the contract: the coordinator detects a dead
shard, respawns it (the worker replays its own WAL via
:class:`~repro.persist.recovery.RecoveryManager`), and keeps serving
from the survivors in degraded mode -- every answer carries a
``shards_responding/shards_total`` pair so intervals stay honest.
"""

from repro.cluster.coordinator import ShardedWarehouse
from repro.cluster.errors import (
    ClusterError,
    ShardCrashed,
    ShardUnavailable,
)
from repro.cluster.gather import ClusterAnswer
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.partition import (
    partition_columns,
    partition_keys,
    shard_of_keys,
    shard_of_value,
)
from repro.cluster.worker import ShardConfig

__all__ = [
    "ClusterAnswer",
    "ClusterError",
    "ClusterMetrics",
    "ShardConfig",
    "ShardCrashed",
    "ShardUnavailable",
    "ShardedWarehouse",
    "partition_columns",
    "partition_keys",
    "shard_of_keys",
    "shard_of_value",
]
