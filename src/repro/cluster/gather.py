"""Combining per-shard answers into one honest cluster answer.

Value-hash partitioning (:mod:`repro.cluster.partition`) makes the
coordinator's estimator algebra simple: every row -- and every
occurrence of a given key value -- lives on exactly one shard, so

* COUNT / SUM / FREQUENCY estimates are **additive**: the cluster
  estimate is the sum of per-shard estimates, each unbiased for its
  own partition.  Independent per-shard confidence intervals combine
  by root-sum-of-squares of the half-widths (the variance of a sum of
  independent estimators), at the weakest per-shard confidence.
* AVERAGE and SELECTIVITY are **ratios of additive parts**; the
  coordinator scatters the parts and forms the ratio, with the
  conservative interval quotient.
* HOT LISTS union without double counting: a value's sampled mass is
  all on its owner shard, so per-shard reports concatenate and the
  global top-k is the top-k of the union (the per-partition scheme of
  the BlinkDB deployment shape).

This mirrors, at the estimator level, what the Theorem-2/5 synopsis
merges (:mod:`repro.core.merge`) do at the sample level; the
coordinator also exposes those directly via
:meth:`~repro.cluster.coordinator.ShardedWarehouse.merged_synopsis`.

Every combined answer is wrapped in :class:`ClusterAnswer`, which
carries ``shards_responding`` / ``shards_total``: with dead shards the
estimate covers only the surviving partitions, and the flag is how
that honesty reaches the client.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.engine.responses import QueryResponse
from repro.estimators.intervals import ConfidenceInterval
from repro.hotlist.base import HotListAnswer, HotListEntry

__all__ = [
    "ClusterAnswer",
    "combine_intervals",
    "merge_hotlist_responses",
    "merge_ratio_responses",
    "merge_scalar_responses",
]


@dataclass(frozen=True)
class ClusterAnswer:
    """One cluster-level answer with its coverage annotation.

    ``shards_responding < shards_total`` means the estimate covers
    only the partitions of the shards that answered -- the degraded
    mode of the failover contract.  The wrapped
    :class:`~repro.engine.responses.QueryResponse` stays wire-codable
    through :mod:`repro.serving.codec` unchanged.
    """

    response: QueryResponse
    shards_responding: int
    shards_total: int

    @property
    def degraded(self) -> bool:
        """Whether any configured shard is missing from the answer."""
        return self.shards_responding < self.shards_total

    @property
    def answer(self) -> object:
        """The combined point estimate (scalar or hot-list)."""
        return self.response.answer

    @property
    def interval(self) -> ConfidenceInterval | None:
        """The combined confidence interval, when every part had one."""
        return self.response.interval


def combine_intervals(
    intervals: Sequence[ConfidenceInterval | None],
    centers: Sequence[float],
    total: float,
) -> ConfidenceInterval | None:
    """Interval of a sum of independent per-shard estimates.

    Half-widths add in quadrature; the combined confidence is the
    weakest shard's.  Returns ``None`` unless every responding shard
    produced an interval (a partial interval would overstate
    precision).
    """
    if not intervals or any(entry is None for entry in intervals):
        return None
    spread = 0.0
    for interval, center in zip(intervals, centers, strict=True):
        assert interval is not None
        half = max(interval.high - center, center - interval.low)
        spread += half * half
    half = math.sqrt(spread)
    confidence = min(interval.confidence for interval in intervals if interval)
    return ConfidenceInterval(
        low=total - half, high=total + half, confidence=confidence
    )


def _combined_method(responses: Sequence[QueryResponse]) -> str:
    methods = sorted({response.method for response in responses})
    return "cluster:" + "+".join(methods) if methods else "cluster"


def merge_scalar_responses(
    responses: Sequence[QueryResponse],
    responding: int,
    total: int,
) -> ClusterAnswer:
    """Sum additive scalar answers (COUNT / SUM / FREQUENCY)."""
    centers = [float(response.answer) for response in responses]
    combined = sum(centers)
    interval = combine_intervals(
        [response.interval for response in responses], centers, combined
    )
    return ClusterAnswer(
        response=QueryResponse(
            answer=combined,
            interval=interval,
            method=_combined_method(responses),
            is_exact=bool(responses)
            and all(response.is_exact for response in responses)
            and responding == total,
            disk_accesses=sum(r.disk_accesses for r in responses),
            exact_cost_estimate=sum(
                r.exact_cost_estimate for r in responses
            ),
        ),
        shards_responding=responding,
        shards_total=total,
    )


def merge_ratio_responses(
    numerators: Sequence[QueryResponse],
    denominators: Sequence[float],
    responding: int,
    total: int,
    *,
    method: str,
) -> ClusterAnswer:
    """A ratio of an additive estimate over an exact denominator.

    AVERAGE scatters per-shard SUMs over the exact per-shard row
    counts; SELECTIVITY scatters predicate COUNTs likewise.  The
    denominator is exact (warehouse row counts), so the interval is
    just the numerator's, scaled.
    """
    centers = [float(response.answer) for response in numerators]
    numerator = sum(centers)
    denominator = sum(denominators)
    if denominator <= 0:
        ratio, interval = 0.0, None
    else:
        ratio = numerator / denominator
        summed = combine_intervals(
            [response.interval for response in numerators],
            centers,
            numerator,
        )
        interval = (
            None
            if summed is None
            else ConfidenceInterval(
                low=summed.low / denominator,
                high=summed.high / denominator,
                confidence=summed.confidence,
            )
        )
    return ClusterAnswer(
        response=QueryResponse(
            answer=ratio,
            interval=interval,
            method=method,
            is_exact=False,
            disk_accesses=sum(r.disk_accesses for r in numerators),
            exact_cost_estimate=sum(
                r.exact_cost_estimate for r in numerators
            ),
        ),
        shards_responding=responding,
        shards_total=total,
    )


def merge_hotlist_responses(
    responses: Sequence[QueryResponse],
    k: int,
    responding: int,
    total: int,
) -> ClusterAnswer:
    """Global top-``k`` from disjoint per-shard hot lists.

    Shards own disjoint value sets, so entries concatenate; summing
    per value is still performed defensively (it is a no-op under the
    partitioning invariant).  Ties break toward the smaller value for
    determinism across gather orders.
    """
    weights: dict[int, float] = {}
    for response in responses:
        answer = response.answer
        if not isinstance(answer, HotListAnswer):
            raise TypeError(
                f"expected hot-list answers, got {type(answer).__name__}"
            )
        for entry in answer.entries:
            weights[int(entry.value)] = (
                weights.get(int(entry.value), 0.0)
                + float(entry.estimated_count)
            )
    ranked = sorted(weights.items(), key=lambda item: (-item[1], item[0]))
    entries = tuple(
        HotListEntry(value, count) for value, count in ranked[:k]
    )
    return ClusterAnswer(
        response=QueryResponse(
            answer=HotListAnswer(k=k, entries=entries),
            interval=None,
            method=_combined_method(responses),
            is_exact=False,
        ),
        shards_responding=responding,
        shards_total=total,
    )
