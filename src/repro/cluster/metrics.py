"""The coordinator's instrument bundle.

One object acquiring every ``repro_cluster_*`` series from a
:class:`~repro.obs.metrics.MetricsRegistry` (the process-wide null
registry by default, so an uninstrumented cluster costs nothing).
Worker processes keep their own registries -- their WAL/recovery
traffic shows up as ordinary ``repro_wal_*``/``repro_recovery_*``
series *inside* the worker; everything here is measured at the
coordinator, including per-shard round-trip latencies.  Every name has
a documented row in ``docs/observability.md`` -- RL014 cross-checks
the two.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = ["ClusterMetrics"]


class ClusterMetrics:
    """Counters, gauges, and histograms for one coordinator."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else get_registry()
        registry = self._registry
        self.shards_total: Gauge = registry.gauge(
            "repro_cluster_shards_total",
            "Shards the coordinator was built with",
        )
        self.shards_up: Gauge = registry.gauge(
            "repro_cluster_shards_up",
            "Shards currently serving (hello received, socket healthy)",
        )
        self.degraded: Gauge = registry.gauge(
            "repro_cluster_degraded",
            "1 while any shard is down or recovering, else 0",
        )
        self.scatter_fanout: Gauge = registry.gauge(
            "repro_cluster_scatter_fanout",
            "Shards targeted by the most recent scatter",
        )
        self.failovers_total: Counter = registry.counter(
            "repro_cluster_failovers_total",
            "Shard deaths detected by the coordinator",
        )
        self.restarts_total: Counter = registry.counter(
            "repro_cluster_restarts_total",
            "Worker processes respawned after a failover",
        )
        self.degraded_answers_total: Counter = registry.counter(
            "repro_cluster_degraded_answers_total",
            "Answers produced with fewer shards than configured",
        )

    def requests_total(self, op: str, outcome: str) -> Counter:
        """The per-op request counter series."""
        return self._registry.counter(
            "repro_cluster_requests_total",
            "Coordinator operations, by op and outcome",
            {"op": op, "outcome": outcome},
        )

    def ingest_rows_total(self, shard: int) -> Counter:
        """Rows scattered to one shard over the cluster's lifetime."""
        return self._registry.counter(
            "repro_cluster_ingest_rows_total",
            "Rows scattered to each shard",
            {"shard": str(shard)},
        )

    def shard_ingest_seconds(self, shard: int) -> Histogram:
        """Round-trip ingest latency of one shard, coordinator-side."""
        return self._registry.histogram(
            "repro_cluster_shard_ingest_seconds",
            "Per-shard ingest round-trip latency",
            {"shard": str(shard)},
        )

    def shard_query_seconds(self, shard: int) -> Histogram:
        """Round-trip query latency of one shard, coordinator-side."""
        return self._registry.histogram(
            "repro_cluster_shard_query_seconds",
            "Per-shard query round-trip latency",
            {"shard": str(shard)},
        )
