"""Deterministic, seedable storage fault injection.

The crash-consistency battery drives :mod:`repro.persist` through a
:class:`~repro.faults.injector.FaultyFilesystem`, which fails chosen
storage operations -- kill a write mid-record, flip a bit, crash at an
fsync -- according to a pure-data :class:`~repro.faults.plan.FaultPlan`.
Everything is a function of (plan, workload): the same plan reproduces
the same wreckage byte for byte.
"""

from repro.faults.injector import FaultyFilesystem, SimulatedCrash
from repro.faults.plan import (
    BIT_FLIP,
    CRASH,
    CRASH_KINDS,
    FAULT_KINDS,
    FSYNC_CRASH,
    FSYNC_ERROR,
    TORN_WRITE,
    TRANSIENT_KINDS,
    WRITE_ERROR,
    Fault,
    FaultPlan,
)

__all__ = [
    "BIT_FLIP",
    "CRASH",
    "CRASH_KINDS",
    "FAULT_KINDS",
    "FSYNC_CRASH",
    "FSYNC_ERROR",
    "Fault",
    "FaultPlan",
    "FaultyFilesystem",
    "SimulatedCrash",
    "TORN_WRITE",
    "TRANSIENT_KINDS",
    "WRITE_ERROR",
]
