"""Fault plans: *which* storage operation fails, and *how*.

A plan is pure data -- a mapping from global operation index (as
counted by :class:`~repro.faults.injector.FaultyFilesystem`) to a fault
kind -- plus the seed that drives the fault's internal randomness
(torn-write prefix length, bit-flip position).  Two runs with the same
plan against the same workload fail identically, which is what lets
the crash-consistency battery sweep *every* fault point exhaustively.

Fault kinds
-----------

``CRASH``
    The process dies before the operation happens.  Nothing is
    written; :class:`~repro.faults.injector.SimulatedCrash` is raised.
``TORN_WRITE``
    A write is cut mid-record: a strict prefix of the buffer reaches
    the file, then the process dies.
``BIT_FLIP``
    Silent corruption: one bit of the written buffer is flipped, the
    write "succeeds", and the workload continues none the wiser.
``FSYNC_CRASH``
    The process dies at a durability point (the data may well have
    reached the disk -- recovery must cope with both outcomes).
``FSYNC_ERROR`` / ``WRITE_ERROR``
    A transient :class:`~repro.persist.errors.TransientIOError`; the
    retry layer is expected to absorb it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.randkit.rng import ReproRandom

__all__ = [
    "BIT_FLIP",
    "CRASH",
    "CRASH_KINDS",
    "FAULT_KINDS",
    "FSYNC_CRASH",
    "FSYNC_ERROR",
    "Fault",
    "FaultPlan",
    "TORN_WRITE",
    "TRANSIENT_KINDS",
    "WRITE_ERROR",
]

CRASH = "crash"
TORN_WRITE = "torn-write"
BIT_FLIP = "bit-flip"
FSYNC_CRASH = "fsync-crash"
FSYNC_ERROR = "fsync-error"
WRITE_ERROR = "write-error"

FAULT_KINDS = frozenset(
    {CRASH, TORN_WRITE, BIT_FLIP, FSYNC_CRASH, FSYNC_ERROR, WRITE_ERROR}
)
#: Kinds that terminate the run with a SimulatedCrash.
CRASH_KINDS = frozenset({CRASH, TORN_WRITE, FSYNC_CRASH})
#: Kinds the retry layer is allowed to absorb.
TRANSIENT_KINDS = frozenset({FSYNC_ERROR, WRITE_ERROR})


@dataclass(frozen=True)
class Fault:
    """One injected failure at one global operation index."""

    operation_index: int
    kind: str

    def __post_init__(self) -> None:
        if self.operation_index < 0:
            raise ValueError("operation_index must be non-negative")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults keyed by operation index.

    ``seed`` drives the *parameters* of the faults (how many bytes of
    a torn write survive, which bit flips), so the whole failure is a
    pure function of (plan, workload).
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        indices = [fault.operation_index for fault in self.faults]
        if len(indices) != len(set(indices)):
            raise ValueError("at most one fault per operation index")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: a healthy run."""
        return cls()

    @classmethod
    def single(cls, index: int, kind: str, *, seed: int = 0) -> "FaultPlan":
        """One fault at one operation index."""
        return cls(faults=(Fault(index, kind),), seed=seed)

    @classmethod
    def random(
        cls,
        rng: ReproRandom,
        operation_count: int,
        kinds: frozenset[str] = CRASH_KINDS,
    ) -> "FaultPlan":
        """One seeded fault somewhere in ``[0, operation_count)``.

        ``operation_count`` is typically taken from a healthy run's
        :attr:`~repro.faults.injector.FaultyFilesystem.operations`.
        """
        if operation_count < 1:
            raise ValueError("operation_count must be positive")
        if not kinds:
            raise ValueError("kinds must be non-empty")
        index = rng.choice_index(operation_count)
        ordered = sorted(kinds)
        kind = ordered[rng.choice_index(len(ordered))]
        return cls(
            faults=(Fault(index, kind),),
            seed=rng.fork().seed or 0,
        )

    def lookup(self) -> dict[int, Fault]:
        """The plan as an index-to-fault mapping."""
        return {fault.operation_index: fault for fault in self.faults}
