"""The fault injector: a ``FileSystem`` that fails on schedule.

:class:`FaultyFilesystem` wraps any real
:class:`~repro.persist.fsio.FileSystem` and counts every *faultable*
operation -- ``write``, ``fsync``, ``sync_directory``, ``replace``,
``remove`` -- with one global, monotonically increasing index.  When
the index matches a :class:`~repro.faults.plan.Fault` in the plan, the
operation fails in the planned way instead of (or in addition to)
happening.

Determinism is the whole point: the operation index is a pure function
of the workload, and the fault's internal randomness (torn-prefix
length, flipped bit) comes from a :class:`~repro.randkit.rng.ReproRandom`
seeded by the plan.  Sweeping ``FaultPlan.single(i, kind)`` for every
``i`` observed in a healthy run therefore exercises *every* crash
point exactly once.

A planned crash raises :class:`SimulatedCrash`.  Test harnesses catch
it where a real deployment would lose the process; nothing in
``repro.persist`` catches it (the retry layer only absorbs
:class:`~repro.persist.errors.TransientIOError`).
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO, cast

from repro.faults.plan import (
    BIT_FLIP,
    CRASH,
    FSYNC_CRASH,
    FSYNC_ERROR,
    TORN_WRITE,
    WRITE_ERROR,
    Fault,
    FaultPlan,
)
from repro.persist.errors import TransientIOError
from repro.persist.fsio import FileSystem
from repro.randkit.rng import ReproRandom

__all__ = ["FaultyFilesystem", "SimulatedCrash"]


class SimulatedCrash(RuntimeError):
    """The simulated process death: raised at a planned crash point.

    Carries the operation index and fault kind so a test can assert
    *which* crash it survived.
    """

    def __init__(self, operation_index: int, kind: str) -> None:
        super().__init__(
            f"simulated crash ({kind}) at storage operation "
            f"{operation_index}"
        )
        self.operation_index = operation_index
        self.kind = kind


class _FaultyFile:
    """A write handle that routes writes through the injector."""

    def __init__(self, inner: BinaryIO, owner: "FaultyFilesystem") -> None:
        self._inner = inner
        self._owner = owner

    @property
    def inner(self) -> BinaryIO:
        return self._inner

    def write(self, data: bytes) -> int:
        return self._owner._write(self._inner, data)

    def read(self, size: int = -1) -> bytes:
        return self._inner.read(size)

    def flush(self) -> None:
        self._inner.flush()

    def fileno(self) -> int:
        return self._inner.fileno()

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def __enter__(self) -> "_FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FaultyFilesystem:
    """A :class:`FileSystem` wrapper that fails chosen operations.

    Parameters
    ----------
    inner:
        The real filesystem doing the work between faults.
    plan:
        The fault schedule.  :meth:`FaultPlan.none` gives a healthy
        run whose :attr:`operations` count enumerates the fault
        points for a subsequent sweep.
    """

    def __init__(self, inner: FileSystem, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._faults = plan.lookup()
        self._rng = ReproRandom(plan.seed)
        self._operations = 0

    @property
    def operations(self) -> int:
        """Faultable operations attempted so far (the sweep domain)."""
        return self._operations

    @property
    def plan(self) -> FaultPlan:
        """The schedule this injector is executing."""
        return self._plan

    def _take(self) -> tuple[int, Fault | None]:
        index = self._operations
        self._operations += 1
        return index, self._faults.get(index)

    # ------------------------------------------------------------------
    # Faultable operations
    # ------------------------------------------------------------------

    def _write(self, handle: BinaryIO, data: bytes) -> int:
        index, fault = self._take()
        if fault is None:
            return handle.write(data)
        if fault.kind in (WRITE_ERROR, FSYNC_ERROR):
            raise TransientIOError(
                f"injected transient write failure at operation {index}"
            )
        if fault.kind == CRASH:
            raise SimulatedCrash(index, fault.kind)
        if fault.kind == TORN_WRITE:
            # A strict prefix reaches the file, then the process dies.
            prefix = (
                self._rng.choice_index(len(data)) if len(data) > 1 else 0
            )
            if prefix:
                handle.write(data[:prefix])
            raise SimulatedCrash(index, fault.kind)
        if fault.kind == BIT_FLIP:
            position = self._rng.choice_index(len(data)) if data else 0
            bit = self._rng.choice_index(8)
            mutated = bytearray(data)
            if mutated:
                mutated[position] ^= 1 << bit
            return handle.write(bytes(mutated))
        # FSYNC_CRASH scheduled onto a write: still a crash, so
        # exhaustive sweeps never silently no-op.
        raise SimulatedCrash(index, fault.kind)

    def fsync(self, handle: BinaryIO) -> None:
        index, fault = self._take()
        if fault is not None:
            if fault.kind in (FSYNC_ERROR, WRITE_ERROR):
                raise TransientIOError(
                    f"injected transient fsync failure at operation {index}"
                )
            if fault.kind in (FSYNC_CRASH, CRASH, TORN_WRITE):
                raise SimulatedCrash(index, fault.kind)
            # BIT_FLIP on an fsync: nothing to corrupt, fall through.
        inner = handle.inner if isinstance(handle, _FaultyFile) else handle
        self._inner.fsync(inner)

    def sync_directory(self, directory: Path) -> None:
        index, fault = self._take()
        if fault is not None:
            if fault.kind in (FSYNC_ERROR, WRITE_ERROR):
                raise TransientIOError(
                    "injected transient directory-sync failure at "
                    f"operation {index}"
                )
            if fault.kind in (FSYNC_CRASH, CRASH, TORN_WRITE):
                raise SimulatedCrash(index, fault.kind)
        self._inner.sync_directory(directory)

    def replace(self, source: Path, destination: Path) -> None:
        index, fault = self._take()
        if fault is not None:
            if fault.kind in (WRITE_ERROR, FSYNC_ERROR):
                raise TransientIOError(
                    f"injected transient rename failure at operation {index}"
                )
            if fault.kind != BIT_FLIP:
                # Any crash kind: die before the rename happens, so the
                # temporary survives and the final name never appears.
                raise SimulatedCrash(index, fault.kind)
        self._inner.replace(source, destination)

    def remove(self, path: Path) -> None:
        index, fault = self._take()
        if fault is not None:
            if fault.kind in (WRITE_ERROR, FSYNC_ERROR):
                raise TransientIOError(
                    f"injected transient unlink failure at operation {index}"
                )
            if fault.kind != BIT_FLIP:
                raise SimulatedCrash(index, fault.kind)
        self._inner.remove(path)

    # ------------------------------------------------------------------
    # Pass-through operations (reads and metadata never fault)
    # ------------------------------------------------------------------

    def open(self, path: Path, mode: str) -> BinaryIO:
        handle = self._inner.open(path, mode)
        return cast(BinaryIO, _FaultyFile(handle, self))

    def read_bytes(self, path: Path) -> bytes:
        return self._inner.read_bytes(path)

    def listdir(self, directory: Path) -> list[str]:
        return self._inner.listdir(directory)

    def makedirs(self, directory: Path) -> None:
        self._inner.makedirs(directory)

    def exists(self, path: Path) -> bool:
        return self._inner.exists(path)

    def size(self, path: Path) -> int:
        return self._inner.size(path)
