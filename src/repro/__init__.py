"""repro -- concise samples, counting samples, and approximate query answers.

A production-quality reproduction of Gibbons & Matias, "New
Sampling-Based Summary Statistics for Improving Approximate Query
Answers" (SIGMOD 1998): the concise-sample and counting-sample synopsis
data structures with their incremental maintenance algorithms, the four
approximate hot-list algorithms, and the approximate-answer-engine
set-up they plug into -- plus the classical companion synopses,
sampling-based estimators, and workload generators needed to reproduce
every table and figure of the paper's evaluation.

Quick start::

    from repro import ConciseSample
    from repro.streams import zipf_stream

    sample = ConciseSample(footprint_bound=1000, seed=0)
    sample.insert_array(zipf_stream(500_000, 5000, 1.5, seed=1))
    print(sample.sample_size, "points in", sample.footprint, "words")

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    BackingSample,
    BinarySearchRaise,
    ConciseSample,
    CountingSample,
    MultiplicativeRaise,
    ReservoirSample,
    SingletonBoundRaise,
    ThresholdPolicy,
    counting_to_concise,
    offline_concise_sample,
)
from repro.hotlist import (
    ConciseHotList,
    CountingHotList,
    FullHistogramHotList,
    HotListAnswer,
    SortedConciseHotList,
    TraditionalHotList,
    evaluate_hotlist,
)
from repro.randkit import CostCounters

__version__ = "1.0.0"

__all__ = [
    "BackingSample",
    "BinarySearchRaise",
    "ConciseHotList",
    "ConciseSample",
    "CostCounters",
    "CountingHotList",
    "CountingSample",
    "FullHistogramHotList",
    "HotListAnswer",
    "MultiplicativeRaise",
    "ReservoirSample",
    "SingletonBoundRaise",
    "SortedConciseHotList",
    "ThresholdPolicy",
    "TraditionalHotList",
    "counting_to_concise",
    "evaluate_hotlist",
    "offline_concise_sample",
    "__version__",
]
