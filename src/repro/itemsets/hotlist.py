"""Incremental hot lists over the k-itemsets of a transaction stream.

Each observed basket contributes every one of its ``C(|basket|, k)``
size-``k`` itemsets as one insert into a counting sample keyed by the
encoded itemset.  The counting-sample machinery then does exactly what
the paper describes for newly-popular itemsets: "If tau is the
estimated itemset count of the smallest itemset in the hot list, then
we add each new item with probability 1/tau.  Thus, although we cannot
afford to maintain counts that will detect when a newly-popular
itemset has now occurred tau or more times, we probabilistically expect
to have tau occurrences of the itemset before we (tentatively) add the
itemset to the hot list."
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.core.counting import CountingSample
from repro.core.thresholds import ThresholdPolicy
from repro.hotlist.base import HotListAnswer, kth_largest, order_entries
from repro.itemsets.encoding import decode_itemset, encode_itemset
from repro.randkit.coins import CostCounters
from repro.stats.theory import compensation_constant, counting_report_cutoff

__all__ = ["ItemsetHotList"]


class ItemsetHotList:
    """Approximate top-k itemsets from a stream of baskets.

    Parameters
    ----------
    itemset_size:
        The ``k`` of "k-itemsets" (2 = pairs, 3 = triples, ...).
    footprint_bound:
        Memory words for the underlying counting sample.
    max_basket_items:
        Baskets longer than this are truncated to their first items
        (combinatorial blow-up guard); ``None`` disables the guard.
    seed, policy, counters:
        As for :class:`~repro.core.counting.CountingSample`.
    """

    def __init__(
        self,
        itemset_size: int,
        footprint_bound: int,
        *,
        max_basket_items: int | None = 30,
        seed: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        if itemset_size < 1:
            raise ValueError("itemset_size must be positive")
        if max_basket_items is not None and max_basket_items < itemset_size:
            raise ValueError(
                "max_basket_items must be at least itemset_size"
            )
        self.itemset_size = itemset_size
        self.max_basket_items = max_basket_items
        self.sample = CountingSample(
            footprint_bound, seed=seed, policy=policy, counters=counters
        )
        self._baskets_observed = 0

    @property
    def footprint(self) -> int:
        """Words used by the underlying counting sample."""
        return self.sample.footprint

    @property
    def baskets_observed(self) -> int:
        """Baskets processed so far."""
        return self._baskets_observed

    @property
    def itemsets_observed(self) -> int:
        """Individual k-itemset occurrences processed so far."""
        return self.sample.total_inserted

    def observe(self, basket: tuple[int, ...]) -> None:
        """Process one basket (a tuple of distinct item ids)."""
        self._baskets_observed += 1
        items = tuple(sorted(set(basket)))
        if self.max_basket_items is not None:
            items = items[: self.max_basket_items]
        if len(items) < self.itemset_size:
            return
        for itemset in combinations(items, self.itemset_size):
            self.sample.insert(encode_itemset(itemset))

    def observe_many(self, baskets: Iterable[tuple[int, ...]]) -> None:
        """Process a stream of baskets in order."""
        for basket in baskets:
            self.observe(basket)

    def estimated_count(self, itemset: tuple[int, ...]) -> float:
        """Compensated occurrence estimate for one itemset (0 if the
        itemset is not in the synopsis)."""
        encoded = encode_itemset(tuple(sorted(itemset)))
        count = self.sample.count_of(encoded)
        if count == 0:
            return 0.0
        threshold = self.sample.threshold
        if threshold <= 1.0:
            return float(count)
        return count + max(0.0, compensation_constant(threshold))

    def report(self, k: int) -> HotListAnswer:
        """The ``k`` most frequent itemsets with estimated counts.

        Entry values are *encoded* itemsets; use
        :meth:`report_itemsets` for decoded tuples.
        """
        if k < 1:
            raise ValueError("k must be positive")
        counts = self.sample.as_dict()
        if not counts:
            return HotListAnswer(k=k)
        threshold = self.sample.threshold
        if threshold <= 1.0:
            cutoff = float(kth_largest(counts.values(), k))
            compensation = 0.0
        else:
            cutoff = max(
                float(kth_largest(counts.values(), k)),
                counting_report_cutoff(threshold),
            )
            compensation = max(0.0, compensation_constant(threshold))
        estimates = {
            value: count + compensation
            for value, count in counts.items()
            if count >= cutoff
        }
        return HotListAnswer(k=k, entries=order_entries(estimates))

    def report_itemsets(self, k: int) -> list[tuple[tuple[int, ...], float]]:
        """Decoded ``(itemset, estimated count)`` pairs, hottest first."""
        return [
            (decode_itemset(entry.value), entry.estimated_count)
            for entry in self.report(k)
        ]

    def support(self, itemset: tuple[int, ...]) -> float:
        """Estimated support: occurrences / baskets observed."""
        if self._baskets_observed == 0:
            return 0.0
        return self.estimated_count(itemset) / self._baskets_observed
