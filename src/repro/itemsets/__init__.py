"""Hot lists over k-itemsets and association rules (paper Section 1.2).

"Hot lists can be maintained on singleton values, pairs of values,
triples, etc.; e.g., they can be maintained on k-itemsets for any
specified k, and used to produce association rules [AS94, BMUT97]."

This package provides exactly that: a market-basket transaction
generator with planted frequent itemsets, an incremental
counting-sample hot list over the k-itemsets of a transaction stream,
and an association-rule deriver on top of it.  It is the paper's
"probabilistic counting scheme to identify newly-popular itemsets"
applied at itemset granularity: no candidate generation pass over base
data, one bounded-footprint synopsis, accuracy degrading gracefully
with the threshold.
"""

from repro.itemsets.encoding import decode_itemset, encode_itemset
from repro.itemsets.hotlist import ItemsetHotList
from repro.itemsets.rules import AssociationRule, derive_rules
from repro.itemsets.transactions import BasketGenerator

__all__ = [
    "AssociationRule",
    "BasketGenerator",
    "ItemsetHotList",
    "decode_itemset",
    "derive_rules",
    "encode_itemset",
]
