"""Market-basket transaction streams with planted frequent itemsets.

The association-rule literature the paper cites ([AS94]) evaluates on
basket data whose interesting structure is co-occurrence.  This
generator produces baskets from a Zipf-popular catalogue and *plants*
a configurable set of true frequent itemsets: with the given
probability, a basket includes a whole planted itemset, so ground
truth for the k-itemset hot list is known by construction.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.randkit.rng import numpy_generator
from repro.streams.zipf import ZipfDistribution

__all__ = ["BasketGenerator"]


class BasketGenerator:
    """Reproducible market-basket transactions.

    Parameters
    ----------
    catalogue_size:
        Number of distinct items.
    planted:
        Itemsets (tuples of distinct item ids) to plant, with their
        per-basket inclusion probabilities: ``[(items, probability)]``.
    basket_size_mean:
        Mean number of background items per basket (geometric).
    skew:
        Zipf parameter of background item popularity.
    seed:
        Master seed.
    """

    def __init__(
        self,
        catalogue_size: int = 1000,
        planted: Sequence[tuple[tuple[int, ...], float]] = (),
        basket_size_mean: float = 4.0,
        skew: float = 0.8,
        seed: int = 0,
    ) -> None:
        if catalogue_size < 1:
            raise ValueError("catalogue_size must be positive")
        if basket_size_mean < 1.0:
            raise ValueError("basket_size_mean must be at least 1")
        for items, probability in planted:
            if not 0.0 <= probability <= 1.0:
                raise ValueError("plant probability must be in [0, 1]")
            if len(set(items)) != len(items):
                raise ValueError("planted itemset has duplicates")
            if any(not 1 <= item <= catalogue_size for item in items):
                raise ValueError("planted item outside the catalogue")
        self.catalogue_size = catalogue_size
        self.planted = [
            (tuple(sorted(items)), probability)
            for items, probability in planted
        ]
        self.basket_size_mean = basket_size_mean
        self.skew = skew
        self.seed = seed
        self._popularity = ZipfDistribution(catalogue_size, skew)

    def baskets(self, n: int) -> Iterator[tuple[int, ...]]:
        """Generate ``n`` baskets as sorted tuples of distinct items."""
        rng = numpy_generator(self.seed)
        sizes = rng.geometric(1.0 / self.basket_size_mean, size=n)
        background = self._popularity.sample(
            int(sizes.sum()), self.seed + 1
        )
        plant_draws = rng.random((n, max(1, len(self.planted))))
        cursor = 0
        for index in range(n):
            size = int(sizes[index])
            items = set(
                background[cursor : cursor + size].tolist()
            )
            cursor += size
            for plant_index, (itemset, probability) in enumerate(
                self.planted
            ):
                if plant_draws[index, plant_index] < probability:
                    items.update(itemset)
            yield tuple(sorted(items))

    def expected_support(self, itemset: tuple[int, ...]) -> float:
        """Lower-bound expected support (fraction of baskets) of a
        planted itemset: its own plant probability.  Background
        co-occurrence adds a little more."""
        key = tuple(sorted(itemset))
        for items, probability in self.planted:
            if items == key:
                return probability
        return 0.0
