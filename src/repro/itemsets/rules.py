"""Association rules from itemset hot lists ([AS94] via Section 1.2).

Given a hot list over k-itemsets and one over the individual items
(both maintained incrementally, both bounded-footprint), derive rules
``antecedent -> consequent`` with estimated support and confidence.
Unlike Apriori this needs no passes over base data -- the trade-off is
that only itemsets hot enough to survive the synopses can appear in
rules, which is precisely the hot-list contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.itemsets.hotlist import ItemsetHotList

__all__ = ["AssociationRule", "derive_rules"]


@dataclass(frozen=True)
class AssociationRule:
    """One association rule with estimated quality measures."""

    antecedent: tuple[int, ...]
    consequent: tuple[int, ...]
    support: float
    confidence: float

    def __str__(self) -> str:
        left = ", ".join(map(str, self.antecedent))
        right = ", ".join(map(str, self.consequent))
        return (
            f"{{{left}}} -> {{{right}}} "
            f"(support {self.support:.3f}, "
            f"confidence {self.confidence:.3f})"
        )


def derive_rules(
    itemsets: ItemsetHotList,
    items: ItemsetHotList,
    *,
    top_k: int = 50,
    min_support: float = 0.01,
    min_confidence: float = 0.3,
) -> list[AssociationRule]:
    """Derive single-consequent rules from the hot k-itemsets.

    Parameters
    ----------
    itemsets:
        A hot list over k-itemsets (k >= 2).
    items:
        A hot list over individual items (``itemset_size == 1``) fed
        the same basket stream; it supplies antecedent supports.
    top_k:
        How many hot itemsets to consider.
    min_support / min_confidence:
        The usual quality thresholds.

    Rules whose antecedent support cannot be estimated (the antecedent
    fell out of the item synopsis) are skipped rather than reported
    with a fabricated confidence.
    """
    if itemsets.itemset_size < 2:
        raise ValueError("rules need itemsets of size at least 2")
    if items.itemset_size != itemsets.itemset_size - 1:
        raise ValueError(
            "antecedent hot list must track itemsets one smaller"
        )
    if itemsets.baskets_observed == 0:
        return []

    rules = []
    for itemset, estimated_count in itemsets.report_itemsets(top_k):
        support = estimated_count / itemsets.baskets_observed
        if support < min_support:
            continue
        for consequent_index in range(len(itemset)):
            consequent = (itemset[consequent_index],)
            antecedent = (
                itemset[:consequent_index]
                + itemset[consequent_index + 1 :]
            )
            antecedent_count = items.estimated_count(antecedent)
            if antecedent_count <= 0:
                continue
            confidence = min(1.0, estimated_count / antecedent_count)
            if confidence < min_confidence:
                continue
            rules.append(
                AssociationRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support=support,
                    confidence=confidence,
                )
            )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support))
    return rules
