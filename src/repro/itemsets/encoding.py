"""Bijective encoding of small itemsets into single integers.

The sample synopses key on integers; a sorted k-itemset is packed into
one integer with a fixed per-item width so the same concise/counting
machinery works unchanged at itemset granularity.
"""

from __future__ import annotations

__all__ = ["decode_itemset", "encode_itemset"]

_ITEM_BITS = 24
_ITEM_MASK = (1 << _ITEM_BITS) - 1
MAX_ITEM = _ITEM_MASK


def encode_itemset(items: tuple[int, ...]) -> int:
    """Pack a sorted tuple of distinct item ids into one integer.

    Items must be in ``[1, 2^24 - 1]`` and strictly increasing; the
    leading 1-bits of the packing make the encoding prefix-free across
    itemset sizes, so a pair can never collide with a triple.
    """
    if not items:
        raise ValueError("itemset must be non-empty")
    encoded = 1  # sentinel high bit: makes sizes self-delimiting
    previous = 0
    for item in items:
        if not 0 < item <= MAX_ITEM:
            raise ValueError(f"item {item} out of range [1, {MAX_ITEM}]")
        if item <= previous:
            raise ValueError("items must be strictly increasing")
        previous = item
        encoded = (encoded << _ITEM_BITS) | item
    return encoded


def decode_itemset(encoded: int) -> tuple[int, ...]:
    """Invert :func:`encode_itemset`."""
    if encoded < 1:
        raise ValueError("not an encoded itemset")
    items = []
    while encoded > 1:
        items.append(encoded & _ITEM_MASK)
        encoded >>= _ITEM_BITS
    if encoded != 1:
        raise ValueError("not an encoded itemset")
    return tuple(reversed(items))
