"""Merging shard synopses built over partitions of one stream.

Sharded ingestion (BlinkDB-style partition parallelism) builds one
synopsis per partition and needs a merge at query time.  Theorem 2
makes this provably correct for concise samples: a concise sample at
threshold ``tau`` subsampled so every point survives with probability
``tau / tau*`` is a concise sample at threshold ``tau*``.  Raising all
shards to the *maximum* shard threshold and unioning the survivor
multisets therefore yields exactly the sample that a single maintenance
run at threshold ``tau*`` over the concatenated stream would produce --
each stream element independently survives with probability
``1 / tau*`` regardless of which shard saw it.

Counting samples merge with one documented caveat: the merged count of
a value is the **sum of the per-shard observed tails** (after each
shard re-runs its admission tail at ``tau*`` via Theorem 5), whereas a
single-stream counting sample pays only one admission delay per value.
The merged counts are therefore stochastically slightly smaller for
values split across shards; hot values (the ones counting samples
exist to track) are admitted almost immediately on every shard, so the
gap is bounded by ``k``-shards worth of admission delay.  For a merge
with the exact single-stream law, convert shards to concise samples
first (:func:`repro.core.convert.counting_to_concise`) and use
:func:`merge_concise`.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.core.base import SynopsisError
from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample, subsample_tail_counts
from repro.core.thresholds import ThresholdPolicy
from repro.obs import probe as obs_probe
from repro.randkit.coins import CostCounters

__all__ = ["merge_concise", "merge_counting"]


def _shard_arrays(
    counts: dict[int, int],
) -> tuple[np.ndarray, np.ndarray]:
    size = len(counts)
    values = np.fromiter(counts.keys(), np.int64, size)
    tallies = np.fromiter(counts.values(), np.int64, size)
    return values, tallies


def merge_concise(
    samples: Sequence[ConciseSample],
    *,
    seed: int | None = None,
    footprint_bound: int | None = None,
    policy: ThresholdPolicy | None = None,
    counters: CostCounters | None = None,
) -> ConciseSample:
    """Merge shard concise samples into one concise sample.

    Every shard is raised to the maximum shard threshold by Theorem-2
    subsampling (each point survives with probability
    ``tau_shard / tau*``, drawn as per-run binomial survivors), then
    the survivor multisets are unioned.  If the union overflows the
    result's footprint bound, the ordinary shrink loop raises the
    threshold further.  The input shards are not modified.

    Parameters
    ----------
    samples:
        Shard samples; at least one.
    seed:
        Seed for the merge's own randomness (subsampling draws).
    footprint_bound:
        Bound for the merged sample; defaults to the largest shard
        bound.
    policy, counters:
        As for :class:`~repro.core.concise.ConciseSample`.
    """
    if not samples:
        raise SynopsisError("merge requires at least one sample")
    bound = (
        footprint_bound
        if footprint_bound is not None
        else max(s.footprint_bound for s in samples)
    )
    target = max(s.threshold for s in samples)
    merged = ConciseSample(
        bound, seed=seed, policy=policy, counters=counters
    )
    coins = merged._coins()
    union: Counter[int] = Counter()
    for shard in samples:
        values, tallies = _shard_arrays(shard._counts)
        survivors = coins.binomial_survivors(
            tallies, shard.threshold / target
        )
        alive = survivors > 0
        for value, count in zip(
            values[alive].tolist(), survivors[alive].tolist(), strict=True
        ):
            union[value] += count
    merged._counts = dict(union)
    merged._footprint = sum(
        1 if c == 1 else 2 for c in union.values()
    )
    merged._sample_size = sum(union.values())
    merged._threshold = float(target)
    merged._inserted = sum(s.total_inserted for s in samples)
    if target > 1.0:
        merged._admission.raise_threshold(float(target))
    if merged._footprint > merged.footprint_bound:
        merged._shrink(batch=True)
    if obs_probe.PROBE is not None:
        obs_probe.PROBE.on_merge(ConciseSample.SNAPSHOT_KIND, len(samples))
    return merged


def merge_counting(
    samples: Sequence[CountingSample],
    *,
    seed: int | None = None,
    footprint_bound: int | None = None,
    policy: ThresholdPolicy | None = None,
    counters: CostCounters | None = None,
) -> CountingSample:
    """Merge shard counting samples into one counting sample.

    Each shard re-runs its admission tails at the maximum shard
    threshold (the Theorem-5 subsample, vectorized), then surviving
    per-shard observed counts are summed.  See the module docstring
    for the admission-delay caveat versus a single-stream sample.
    The input shards are not modified.
    """
    if not samples:
        raise SynopsisError("merge requires at least one sample")
    bound = (
        footprint_bound
        if footprint_bound is not None
        else max(s.footprint_bound for s in samples)
    )
    target = max(s.threshold for s in samples)
    merged = CountingSample(
        bound, seed=seed, policy=policy, counters=counters
    )
    coins = merged._coins()
    union: Counter[int] = Counter()
    for shard in samples:
        values, tallies = _shard_arrays(shard._counts)
        if target > shard.threshold:
            new_counts = subsample_tail_counts(
                tallies,
                shard.threshold / target,
                target,
                coins.uniforms(len(tallies)),
            )
        else:
            new_counts = tallies
        alive = new_counts > 0
        for value, count in zip(
            values[alive].tolist(), new_counts[alive].tolist(), strict=True
        ):
            union[value] += count
    merged._counts = dict(union)
    merged._footprint = sum(
        1 if c == 1 else 2 for c in union.values()
    )
    merged._threshold = float(target)
    merged._inserted = sum(s._inserted for s in samples)
    merged._deleted = sum(s._deleted for s in samples)
    if target > 1.0:
        merged._admission.raise_threshold(float(target))
    if merged._footprint > merged.footprint_bound:
        merged._shrink(batch=True)
    if obs_probe.PROBE is not None:
        obs_probe.PROBE.on_merge(
            CountingSample.SNAPSHOT_KIND, len(samples)
        )
    return merged
