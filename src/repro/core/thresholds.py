"""Threshold-raise policies for concise and counting samples.

When a sample's footprint exceeds its bound, the maintenance algorithms
raise the entry threshold from ``tau`` to some ``tau'`` and subject the
current sample to the stricter threshold (Sections 3.1 and 4.1).  The
paper notes "complete flexibility in deciding ... what the new
threshold should be" and discusses the trade-off:

* a large raise evicts more than necessary (smaller sample-size, fewer
  raises),
* a small raise risks not decreasing the footprint at all (the raise
  procedure repeats), and
* smarter selection -- binary search on the expected footprint
  decrease, or a bound via the singleton count -- costs a more
  elaborate algorithm.

The paper's experiments raise by 10% each time
(:class:`MultiplicativeRaise` with factor 1.1, the default everywhere
in this library); the alternatives here feed the threshold-policy
ablation benchmark.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Mapping, Protocol

__all__ = [
    "BinarySearchRaise",
    "MultiplicativeRaise",
    "SingletonBoundRaise",
    "ThresholdPolicy",
]


class _SampleState(Protocol):
    """The view of a sample a policy may inspect."""

    @property
    def threshold(self) -> float: ...

    @property
    def footprint(self) -> int: ...

    @property
    def footprint_bound(self) -> int: ...

    def count_histogram(self) -> Mapping[int, int]:
        """Map from per-value count to how many values have that count."""


class ThresholdPolicy(ABC):
    """Strategy for choosing the next, strictly higher threshold."""

    @abstractmethod
    def next_threshold(self, sample: _SampleState) -> float:
        """The new threshold ``tau' > tau`` to evict under."""


class MultiplicativeRaise(ThresholdPolicy):
    """Raise the threshold by a constant factor (paper default 1.1)."""

    def __init__(self, factor: float = 1.1) -> None:
        if factor <= 1.0:
            raise ValueError("factor must exceed 1")
        self.factor = factor

    def next_threshold(self, sample: _SampleState) -> float:
        return sample.threshold * self.factor

    def __repr__(self) -> str:
        return f"MultiplicativeRaise(factor={self.factor})"


def expected_footprint_decrease(
    count_histogram: Mapping[int, int], keep_probability: float
) -> float:
    """Expected footprint decrease of a concise-sample eviction sweep.

    Each sample point survives independently with ``keep_probability``
    (= ``tau / tau'``).  A singleton frees one word when evicted; a
    ``(value, count)`` pair frees one word when exactly one point
    survives and two when none do.
    """
    if not 0.0 <= keep_probability <= 1.0:
        raise ValueError("keep probability must be in [0, 1]")
    q = keep_probability
    decrease = 0.0
    for count, how_many in count_histogram.items():
        if count <= 0:
            continue
        p_zero = (1.0 - q) ** count
        if count == 1:
            decrease += how_many * p_zero
        else:
            p_one = count * q * (1.0 - q) ** (count - 1)
            decrease += how_many * (p_one + 2.0 * p_zero)
    return decrease


class SingletonBoundRaise(ThresholdPolicy):
    """Set ``tau'`` so the singleton evictions alone suffice.

    The paper sketches "setting the threshold so that ``(1 - tau/tau')``
    times the number of singletons is a lower bound on the desired
    decrease in the footprint".  Each evicted singleton frees exactly
    one word, so ``tau' = tau / (1 - desired / singletons)`` guarantees
    the expected decrease.  Falls back to a multiplicative raise when
    there are too few singletons for the bound to be usable.
    """

    def __init__(
        self,
        decrease_fraction: float = 0.05,
        fallback_factor: float = 2.0,
    ) -> None:
        if not 0.0 < decrease_fraction < 1.0:
            raise ValueError("decrease_fraction must be in (0, 1)")
        if fallback_factor <= 1.0:
            raise ValueError("fallback_factor must exceed 1")
        self.decrease_fraction = decrease_fraction
        self.fallback_factor = fallback_factor

    def next_threshold(self, sample: _SampleState) -> float:
        desired = max(
            1.0,
            self.decrease_fraction * sample.footprint,
            sample.footprint - sample.footprint_bound,
        )
        singletons = sample.count_histogram().get(1, 0)
        if singletons <= desired:
            return sample.threshold * self.fallback_factor
        return sample.threshold / (1.0 - desired / singletons)

    def __repr__(self) -> str:
        return (
            f"SingletonBoundRaise(decrease_fraction={self.decrease_fraction},"
            f" fallback_factor={self.fallback_factor})"
        )


class BinarySearchRaise(ThresholdPolicy):
    """Binary-search ``tau'`` for a target expected footprint decrease.

    The paper's "binary search to find a threshold that will create the
    desired decrease in the footprint".  Searches the raise factor in
    ``(1, max_factor]`` for the smallest factor whose expected decrease
    (under the concise eviction model) meets the target; the same model
    is a close upper bound for counting samples, whose eviction is at
    least as aggressive.
    """

    def __init__(
        self,
        decrease_fraction: float = 0.05,
        max_factor: float = 64.0,
        iterations: int = 40,
    ) -> None:
        if not 0.0 < decrease_fraction < 1.0:
            raise ValueError("decrease_fraction must be in (0, 1)")
        if max_factor <= 1.0:
            raise ValueError("max_factor must exceed 1")
        if iterations < 1:
            raise ValueError("iterations must be positive")
        self.decrease_fraction = decrease_fraction
        self.max_factor = max_factor
        self.iterations = iterations

    def next_threshold(self, sample: _SampleState) -> float:
        histogram = sample.count_histogram()
        desired = max(
            1.0,
            self.decrease_fraction * sample.footprint,
            sample.footprint - sample.footprint_bound,
        )
        low, high = 1.0, self.max_factor
        max_decrease = expected_footprint_decrease(histogram, 1.0 / high)
        if max_decrease < desired:
            # Even the strongest allowed raise falls short in
            # expectation; take it and let the caller re-raise.
            return sample.threshold * self.max_factor
        for _ in range(self.iterations):
            middle = math.sqrt(low * high)  # geometric bisection
            decrease = expected_footprint_decrease(histogram, 1.0 / middle)
            if decrease >= desired:
                high = middle
            else:
                low = middle
        return sample.threshold * high

    def __repr__(self) -> str:
        return (
            f"BinarySearchRaise(decrease_fraction={self.decrease_fraction},"
            f" max_factor={self.max_factor})"
        )
