"""Offline/static construction of a concise sample (paper Section 3).

The offline algorithm extracts a concise sample of footprint ``m``
directly from a static relation: sample tuples at random and fold them
into the concise representation until adding one more sample point
would push the footprint to ``m + 1`` (that last point is discarded)
or the whole relation has been consumed.

The paper's experiments plot this as "concise offline" -- "the
intrinsic sample-size of concise samples for the given distribution" --
and measure the online algorithm's penalty against it.  Each sampled
tuple costs a simulated disk access (the paper notes a cost of
Theta(m') disk reads), charged to ``counters.disk_accesses``.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SynopsisError
from repro.core.concise import ConciseSample
from repro.randkit.coins import CostCounters
from repro.randkit.rng import numpy_generator

__all__ = ["offline_concise_sample"]


def offline_concise_sample(
    values: np.ndarray,
    footprint_bound: int,
    seed: int,
    *,
    with_replacement: bool = False,
    counters: CostCounters | None = None,
) -> ConciseSample:
    """Extract a concise sample of bounded footprint from static data.

    Parameters
    ----------
    values:
        The full attribute column of the relation.
    footprint_bound:
        ``m``, the footprint bound of the resulting sample.
    seed:
        Randomness for the tuple selection order.
    with_replacement:
        ``False`` (default) samples tuples without replacement -- the
        semantics of a uniform sample view, and what the incremental
        algorithm converges to.  ``True`` models repeated independent
        random disk probes (the literal Section-3 procedure).
    counters:
        Optional ledger; ``disk_accesses`` and ``lookups`` are charged
        per selected tuple.

    Returns
    -------
    ConciseSample
        A sample whose footprint is at most ``footprint_bound``; its
        ``sample_size`` is the maximal number of points the
        representation could absorb.
    """
    if footprint_bound < 2:
        raise SynopsisError("footprint_bound must be at least 2")
    n = len(values)
    ledger = counters if counters is not None else CostCounters()
    rng = numpy_generator(seed)
    if n == 0:
        return ConciseSample.from_state(
            {}, 1.0, footprint_bound, counters=ledger
        )
    if with_replacement:
        # Cap at n draws, as the paper's procedure does.
        order = rng.integers(0, n, size=n)
    else:
        order = rng.permutation(n)

    counts: dict[int, int] = {}
    footprint = 0
    taken = 0
    for index in order.tolist():
        value = int(values[index])
        ledger.disk_accesses += 1
        ledger.lookups += 1
        current = counts.get(value, 0)
        added_words = 1 if current <= 1 else 0
        if footprint + added_words > footprint_bound:
            # Adding this point would overflow the footprint: the
            # point is ignored and extraction stops.
            break
        counts[value] = current + 1
        footprint += added_words
        taken += 1

    return ConciseSample.from_state(
        counts,
        threshold=max(1.0, n / taken) if taken else 1.0,
        footprint_bound=footprint_bound,
        total_inserted=n,
        counters=ledger,
    )
