"""Conversion of a counting sample into a concise sample (Section 4).

A counting sample is not a uniform random sample -- counts after
admission are exact, not sampled -- but it can be turned into one
without touching the base data: for each ``(value, count)`` pair, flip
``count - 1`` coins with heads probability ``1/tau`` and keep one point
per heads, plus the one point that earned admission.  The result is
distributed exactly as a concise sample at threshold ``tau``.
"""

from __future__ import annotations

from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.randkit.coins import CostCounters, EvictionSkipper
from repro.randkit.rng import ReproRandom

__all__ = ["counting_to_concise"]


def counting_to_concise(
    counting: CountingSample,
    seed: int,
    *,
    counters: CostCounters | None = None,
) -> ConciseSample:
    """Derive a concise sample from a counting sample.

    The counting sample is left untouched.  The returned concise
    sample inherits the footprint bound, threshold, and relation size;
    its footprint can only be equal or smaller (counts shrink, and a
    pair whose resampled count reaches 1 reverts to a singleton).

    Parameters
    ----------
    counting:
        The source counting sample.
    seed:
        Randomness for the resampling coin flips.
    counters:
        Optional ledger for the conversion cost (flips are charged with
        skip-based accounting: one per retained extra point).
    """
    rng = ReproRandom(seed)
    ledger = counters if counters is not None else CostCounters()
    threshold = counting.threshold
    keep_probability = 1.0 / threshold
    counts: dict[int, int] = {}
    if threshold <= 1.0:
        # Every occurrence was counted from the start; the counting
        # sample already is an exact (and hence uniform) sample.
        counts = counting.as_dict()
    else:
        # One skip-sweeper treats "heads" as the rare event across the
        # concatenated runs of subsequent occurrences.
        sweeper = EvictionSkipper(rng, ledger, keep_probability)
        for value, count in counting.pairs():
            kept_extra = sweeper.evictions_within(count - 1)
            counts[value] = 1 + kept_extra

    return ConciseSample.from_state(
        counts,
        threshold=threshold,
        footprint_bound=counting.footprint_bound,
        total_inserted=counting.total_inserted,
        counters=ledger,
        seed=rng.fork().seed,
    )
