"""Sharded synopsis construction over stream partitions.

:class:`ShardedSynopsis` partitions each ingested batch across ``k``
shard synopses built in parallel (thread workers; the vectorized
``insert_array`` paths spend their time in numpy, which releases the
GIL) and merges the shards on query via the Theorem-2 /Theorem-5
subsample merges in :mod:`repro.core.merge`.  This is the BlinkDB-style
deployment shape: one synopsis per partition, combined at answer time.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.core.base import SynopsisError
from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.core.merge import merge_concise, merge_counting
from repro.core.thresholds import ThresholdPolicy
from repro.obs import probe as obs_probe
from repro.randkit.rng import spawn_seeds

__all__ = ["MergeFn", "ShardedSynopsis"]

# The signature shared by merge_concise / merge_counting: shards in,
# one combined synopsis out.
MergeFn = Callable[..., ConciseSample | CountingSample]


class ShardedSynopsis:
    """``k`` shard synopses fed round-partitioned batches, merged on query.

    Build via :meth:`concise` or :meth:`counting`; feed with
    :meth:`insert_array`; read the combined synopsis with
    :meth:`merged` (cached until the next ingest).

    Examples
    --------
    >>> sharded = ShardedSynopsis.concise(
    ...     shards=4, footprint_bound=64, seed=11
    ... )
    >>> sharded.insert_array(np.arange(10_000) % 97)
    >>> merged = sharded.merged()
    >>> merged.footprint <= 64
    True
    """

    def __init__(
        self,
        shards: Sequence[ConciseSample] | Sequence[CountingSample],
        merge: MergeFn,
        *,
        merge_seed: int,
        footprint_bound: int,
        policy: ThresholdPolicy | None,
        parallel: bool = True,
    ) -> None:
        if not shards:
            raise SynopsisError("at least one shard is required")
        self.shards = list(shards)
        self._merge = merge
        self._merge_seed = merge_seed
        self._footprint_bound = footprint_bound
        self._policy = policy
        self._parallel = parallel and len(self.shards) > 1
        self._cached_merge: ConciseSample | CountingSample | None = None

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def concise(
        cls,
        shards: int,
        footprint_bound: int,
        *,
        seed: int = 0,
        policy: ThresholdPolicy | None = None,
        parallel: bool = True,
    ) -> "ShardedSynopsis":
        """``shards`` concise samples, each with its own footprint bound."""
        shard_seeds, merge_seed = cls._seed_plan(seed, shards)
        return cls(
            [
                ConciseSample(footprint_bound, seed=s, policy=policy)
                for s in shard_seeds
            ],
            merge_concise,
            merge_seed=merge_seed,
            footprint_bound=footprint_bound,
            policy=policy,
            parallel=parallel,
        )

    @classmethod
    def counting(
        cls,
        shards: int,
        footprint_bound: int,
        *,
        seed: int = 0,
        policy: ThresholdPolicy | None = None,
        parallel: bool = True,
    ) -> "ShardedSynopsis":
        """``shards`` counting samples, each with its own footprint bound."""
        shard_seeds, merge_seed = cls._seed_plan(seed, shards)
        return cls(
            [
                CountingSample(footprint_bound, seed=s, policy=policy)
                for s in shard_seeds
            ],
            merge_counting,
            merge_seed=merge_seed,
            footprint_bound=footprint_bound,
            policy=policy,
            parallel=parallel,
        )

    @staticmethod
    def _seed_plan(seed: int, shards: int) -> tuple[list[int], int]:
        """Per-shard seeds plus the merge seed.

        Degenerate ``shards=1`` keeps the master seed itself so the
        lone shard is byte-identical to the unsharded synopsis built
        with the same seed (and :meth:`merged` short-circuits to it).
        """
        if shards == 1:
            return [seed], spawn_seeds(seed, 1)[0]
        seeds = spawn_seeds(seed, shards + 1)
        return seeds[:shards], seeds[shards]

    # ------------------------------------------------------------------
    # Ingest / query
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def total_inserted(self) -> int:
        """Total stream elements observed across all shards."""
        return sum(s.total_inserted for s in self.shards)

    @property
    def footprint(self) -> int:
        """Sum of shard footprints (the pre-merge storage cost)."""
        return sum(s.footprint for s in self.shards)

    def insert_array(self, values: np.ndarray) -> None:
        """Partition a batch across shards and ingest in parallel.

        Contiguous splits (``np.array_split``) keep each shard's input
        a subsequence of the stream; which shard sees which elements is
        immaterial to the merged law because admission coins are i.i.d.
        per element.
        """
        values = np.asarray(values)
        if len(values) == 0:
            return
        self._cached_merge = None
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_shard_ingest(
                self.shards[0].SNAPSHOT_KIND,
                len(self.shards),
                len(values),
            )
        pieces = np.array_split(values, len(self.shards))
        if self._parallel:
            with ThreadPoolExecutor(
                max_workers=len(self.shards)
            ) as pool:
                list(
                    pool.map(
                        lambda pair: pair[0].insert_array(pair[1]),
                        zip(self.shards, pieces, strict=True),
                    )
                )
        else:
            for shard, piece in zip(self.shards, pieces, strict=True):
                shard.insert_array(piece)

    def merged(self) -> ConciseSample | CountingSample:
        """The merged synopsis (cached until the next ingest).

        Degenerate single-shard instances return the shard itself:
        there is nothing to merge, and running the Theorem-2/5
        machinery anyway would redraw admission coins and break
        byte-identity with the unsharded synopsis.
        """
        if (
            len(self.shards) == 1
            and self.shards[0].footprint_bound == self._footprint_bound
        ):
            return self.shards[0]
        if self._cached_merge is None:
            self._cached_merge = self._merge(
                self.shards,
                seed=self._merge_seed,
                footprint_bound=self._footprint_bound,
                policy=self._policy,
            )
        return self._cached_merge

    def check_invariants(self) -> None:
        """Validate every shard and the merged result."""
        for shard in self.shards:
            shard.check_invariants()
        self.merged().check_invariants()
