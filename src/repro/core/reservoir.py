"""Traditional samples via reservoir sampling (Vitter [Vit85]).

This is the baseline synopsis the paper compares against: a uniform
random sample of fixed size ``m`` whose footprint equals its
sample-size.  Maintenance uses Algorithm X's skip technique -- one
uniform draw determines how many stream records to skip before the
next reservoir replacement -- so a full pass costs roughly
``2 m ln(n/m)`` counted flips (one skip draw plus one victim-slot draw
per replacement), matching the "traditional" rows of Tables 1 and 2.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, ClassVar, Iterator, Mapping

import numpy as np

from repro.core.base import (
    SNAPSHOT_FORMAT_VERSION,
    StreamSynopsis,
    SynopsisError,
)
from repro.obs import probe as obs_probe
from repro.randkit.coins import CostCounters
from repro.randkit.rng import ReproRandom

__all__ = ["ReservoirSample"]


class ReservoirSample(StreamSynopsis):
    """A uniform reservoir sample of fixed capacity.

    Parameters
    ----------
    capacity:
        The sample size ``m`` (equal to the footprint for a
        traditional sample).
    seed:
        Seed for all randomness of this sample instance.
    counters:
        Optional shared cost ledger.

    Examples
    --------
    >>> sample = ReservoirSample(capacity=3, seed=1)
    >>> sample.insert_many(range(100))
    >>> len(sample.points()) == 3
    True
    """

    SNAPSHOT_KIND: ClassVar[str] = "reservoir-sample"

    def __init__(
        self,
        capacity: int,
        *,
        seed: int | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if capacity < 1:
            raise SynopsisError("capacity must be at least 1")
        self.capacity = capacity
        self._rng = ReproRandom(seed)
        self._reservoir: list[int] = []
        self._seen = 0
        self._pending_skip = -1  # -1: no skip drawn yet (filling phase)
        # Memoized semi-sorted (values, counts) arrays for the answer
        # path; reset to None whenever the reservoir contents change.
        self._columnar: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def footprint(self) -> int:
        """Words used -- identical to the current sample size."""
        return len(self._reservoir)

    @property
    def sample_size(self) -> int:
        """Number of sample points (at most ``capacity``)."""
        return len(self._reservoir)

    @property
    def total_inserted(self) -> int:
        """Stream records observed so far."""
        return self._seen

    def points(self) -> list[int]:
        """A copy of the current sample points."""
        return list(self._reservoir)

    def as_array(self) -> np.ndarray:
        """The current sample points as an ``int64`` array."""
        return np.asarray(self._reservoir, dtype=np.int64)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Semi-sort the sample into ``(value, count)`` pairs.

        This is the first step of the traditional hot-list reporter
        (Section 5.1): collapse repeated sample points into pairs.
        """
        return iter(Counter(self._reservoir).items())

    def columnar_view(self) -> tuple[np.ndarray, np.ndarray]:
        """The semi-sorted sample as parallel ``(values, counts)`` arrays.

        The columnar form of :meth:`pairs` (one ``np.unique`` instead
        of a Counter walk), memoized until the reservoir next changes;
        the arrays are shared across calls and marked read-only.
        """
        view = self._columnar
        if view is None:
            values, counts = np.unique(self.as_array(), return_counts=True)
            values.setflags(write=False)
            counts.setflags(write=False)
            view = (values, counts)
            self._columnar = view
        return view

    def estimate_frequency(self, value: int) -> float:
        """Estimated relation count of ``value``: sample count times
        ``n / m``."""
        if not self._reservoir:
            return 0.0
        scale = self._seen / len(self._reservoir)
        return sum(1 for point in self._reservoir if point == value) * scale

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, value: int) -> None:
        """Observe one stream record (Algorithm X skip technique).

        The skip is drawn lazily from the number of records already
        processed; a pending skip invalidated by :meth:`insert_array`
        is simply redrawn, which is distributionally exact because the
        per-record acceptance events are independent.
        """
        self.counters.inserts += 1
        if len(self._reservoir) < self.capacity:
            self._seen += 1
            self._reservoir.append(value)
            self._columnar = None
            if obs_probe.PROBE is not None:
                obs_probe.PROBE.on_admission(self.SNAPSHOT_KIND, 1)
            return
        if self._pending_skip < 0:
            self._pending_skip = self._draw_skip()
        self._seen += 1
        if self._pending_skip == 0:
            self._replace(value)
            self._pending_skip = -1
        else:
            self._pending_skip -= 1

    def insert_array(self, values: np.ndarray) -> None:
        """Vectorised bulk insertion.

        Statistically identical to repeated :meth:`insert` (record
        ``t`` enters with probability ``m/t`` and replaces a uniform
        slot); flips are charged with the same skip-based accounting
        (two per replacement).
        """
        position = 0
        n = len(values)
        self.counters.inserts += n
        if n:
            self._columnar = None
        # Fill phase.
        while position < n and len(self._reservoir) < self.capacity:
            self._reservoir.append(int(values[position]))
            self._seen += 1
            position += 1
        if position >= n:
            if obs_probe.PROBE is not None and position:
                obs_probe.PROBE.on_admission(self.SNAPSHOT_KIND, position)
            return
        remaining = np.asarray(values[position:])
        count = len(remaining)
        record_numbers = self._seen + 1 + np.arange(count, dtype=np.float64)
        bulk_rng = self._rng.numpy_generator()
        accepted = (
            bulk_rng.random(count) * record_numbers < self.capacity
        ).nonzero()[0]
        slots = bulk_rng.integers(self.capacity, size=len(accepted))
        for offset, slot in zip(accepted.tolist(), slots.tolist(), strict=True):
            self._reservoir[slot] = int(remaining[offset])
        self.counters.flips += 2 * len(accepted)
        self._seen += count
        # Invalidate any pending per-record skip; it will be redrawn.
        self._pending_skip = -1
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_admission(
                self.SNAPSHOT_KIND, position + len(accepted)
            )

    def _draw_skip(self) -> int:
        """Records to skip before the next replacement.

        Sequential-search inversion of the skip distribution:
        ``P(skip > s) = prod_{i=1..s+1} (1 - m/(seen+i))``.  One
        counted flip consumes the single uniform driving the search.
        """
        self.counters.flips += 1
        u = self._rng.uniform()
        skip = 0
        tail = 1.0 - self.capacity / (self._seen + 1)
        while tail > u:
            skip += 1
            tail *= 1.0 - self.capacity / (self._seen + skip + 1)
        return skip

    def _replace(self, value: int) -> None:
        """Replace a uniformly chosen reservoir slot with ``value``."""
        self.counters.flips += 1
        slot = self._rng.choice_index(self.capacity)
        self._reservoir[slot] = value
        self._columnar = None
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_admission(self.SNAPSHOT_KIND, 1)

    def to_dict(self) -> dict[str, Any]:
        """Dump to a JSON-able snapshot dict (paper footnote 2)."""
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_snapshot(self.SNAPSHOT_KIND, "dump")
        return {
            "kind": self.SNAPSHOT_KIND,
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "capacity": self.capacity,
            "points": list(self._reservoir),
            "seen": self._seen,
            "counters": self.counters.to_dict(),
        }

    @classmethod
    def from_dict(
        cls,
        payload: Mapping[str, Any],
        *,
        seed: int | None = None,
    ) -> "ReservoirSample":
        """Rebuild a reservoir from :meth:`to_dict` output."""
        if payload["kind"] != cls.SNAPSHOT_KIND:
            raise SynopsisError(
                f"snapshot kind {payload['kind']!r} is not a reservoir sample"
            )
        version = int(payload.get("format_version", 0))
        if version > SNAPSHOT_FORMAT_VERSION:
            raise SynopsisError(
                f"snapshot format {version} is newer than this build "
                f"reads (up to {SNAPSHOT_FORMAT_VERSION})"
            )
        counters = CostCounters.from_dict(payload["counters"])
        sample = cls(
            int(payload["capacity"]), seed=seed, counters=counters
        )
        sample._reservoir = [int(v) for v in payload["points"]]
        sample._seen = int(payload["seen"])
        sample._columnar = None
        sample.check_invariants()
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_snapshot(cls.SNAPSHOT_KIND, "restore")
        return sample

    def check_invariants(self) -> None:
        """Validate the reservoir never exceeds its capacity."""
        if len(self._reservoir) > self.capacity:
            raise SynopsisError("reservoir exceeds capacity")
        if self._seen >= self.capacity and len(self._reservoir) != min(
            self._seen, self.capacity
        ):
            raise SynopsisError("reservoir under-filled")
