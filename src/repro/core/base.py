"""Shared interface for incrementally-maintained stream synopses.

Every synopsis in this library -- the paper's three sample types, the
companion sketches, and the histograms -- observes a stream of inserted
attribute values and answers questions from a bounded memory footprint.
The footprint unit follows the paper's model (footnote 3): one "word"
per stored value and one per stored count.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from repro.randkit.coins import CostCounters

__all__ = ["SNAPSHOT_FORMAT_VERSION", "StreamSynopsis", "SynopsisError"]

#: Version stamped into every synopsis snapshot (``to_dict`` output).
#: Bumped when the serialised layout changes; ``from_dict`` accepts
#: payloads up to this version and rejects newer ones, so a downgraded
#: build fails loudly instead of restoring silently-wrong state.
#: Version 0 is the implicit version of pre-versioning snapshots.
SNAPSHOT_FORMAT_VERSION = 1


class SynopsisError(RuntimeError):
    """Raised when a synopsis is configured or used inconsistently."""


class StreamSynopsis(ABC):
    """Base class for synopses maintained under stream insertions.

    Subclasses implement :meth:`insert`; the bulk entry points default
    to per-element loops and may be overridden with faster paths (the
    concise sample, for instance, jumps over skipped inserts in blocks).
    """

    def __init__(self, counters: CostCounters | None = None) -> None:
        self.counters = counters if counters is not None else CostCounters()

    @abstractmethod
    def insert(self, value: int) -> None:
        """Observe one inserted attribute value."""

    def insert_many(self, values: Iterable[int]) -> None:
        """Observe a sequence of inserted values, in order."""
        for value in values:
            self.insert(int(value))

    def insert_array(self, values: np.ndarray) -> None:
        """Observe a numpy array of inserted values, in order.

        The default delegates to :meth:`insert`; subclasses override
        this when a vectorised or skip-ahead path exists.
        """
        for value in values.tolist():
            self.insert(value)

    @property
    @abstractmethod
    def footprint(self) -> int:
        """Current memory footprint in words."""

    def check_invariants(self) -> None:
        """Validate internal bookkeeping; raises on inconsistency.

        The default does nothing; stateful subclasses recompute their
        incremental counters from first principles.  Tests call this
        after every scenario.
        """
