"""Counting samples with insert/delete maintenance (paper Section 4).

A counting sample (Definition 3) is the variation of a concise sample
in which, once a value wins an admission coin flip, **all** of its
subsequent occurrences are counted exactly.  The count is therefore not
a sample count but an observed tail count of the value's occurrences,
which is why Section 5's hot-list reporter adds the compensation
constant ``c-hat`` rather than scaling.

Maintenance (Section 4.1): every insert looks up its value; a present
value has its count incremented (no randomness), an absent value is
admitted with probability ``1/tau``.  When the footprint overflows,
the threshold is raised to ``tau'`` and every value re-runs its
admission tail: a first coin with heads probability ``tau/tau'``, then
further coins at ``1/tau'``, decrementing the count on each tails until
a heads or zero (Theorem 5 proves correctness).  Deletions simply
decrement (Theorem 5 again), which is the decisive advantage over
concise samples.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, ClassVar, Iterator, Mapping

import numpy as np

from repro.core.base import (
    SNAPSHOT_FORMAT_VERSION,
    StreamSynopsis,
    SynopsisError,
)
from repro.core.thresholds import MultiplicativeRaise, ThresholdPolicy
from repro.obs import probe as obs_probe
from repro.randkit.coins import CostCounters, GeometricSkipper
from repro.randkit.rng import ReproRandom
from repro.randkit.vectorized import VectorCoins

__all__ = ["CountingSample", "subsample_tail_counts"]

# Batch chunking mirrors ConciseSample's: admit roughly a quarter of
# the footprint bound per chunk before checking for a shrink, with
# chunks doubling while no shrink triggers and resetting on a raise.
_CHUNK_DIVISOR = 4
_MIN_CHUNK = 256
_MAX_CHUNK_GROWTH = 1024


def subsample_tail_counts(
    counts: np.ndarray,
    keep_probability: float,
    new_threshold: float,
    uniforms: np.ndarray,
) -> np.ndarray:
    """Re-run admission tails for counting-sample runs, vectorized.

    Implements Section 4.1's threshold raise in closed form for an
    array of observed counts: each run keeps its full count with
    probability ``keep_probability`` (= ``tau / tau'``); otherwise it
    loses one point plus a geometric number of further points at tails
    probability ``1 - 1/tau'`` (Theorem 5).  One uniform per run drives
    the whole decision -- its position below/above ``keep_probability``
    is the first coin, and the renormalised remainder inverts the
    geometric tails run.  Returns the new counts (zeros mean evicted).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return counts.copy()
    tail_log = math.log1p(-1.0 / new_threshold)
    keep = uniforms < keep_probability
    with np.errstate(divide="ignore"):
        conditional = (uniforms - keep_probability) / (
            1.0 - keep_probability
        )
        tails = np.where(
            conditional > 0.0,
            np.floor(np.log(np.maximum(conditional, 1e-320)) / tail_log),
            counts,  # degenerate endpoint: the whole run drains
        ).astype(np.int64)
    removed = 1 + np.minimum(tails, counts - 1)
    return np.where(keep, counts, counts - removed)


class CountingSample(StreamSynopsis):
    """A counting sample maintained within a fixed footprint bound.

    Parameters mirror :class:`~repro.core.concise.ConciseSample`.

    Examples
    --------
    >>> sample = CountingSample(footprint_bound=8, seed=7)
    >>> for value in [3, 3, 3, 5]:
    ...     sample.insert(value)
    >>> sample.count_of(3)   # all occurrences counted once admitted
    3
    >>> sample.delete(3)
    >>> sample.count_of(3)
    2
    """

    SNAPSHOT_KIND: ClassVar[str] = "counting-sample"

    def __init__(
        self,
        footprint_bound: int,
        *,
        seed: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if footprint_bound < 2:
            raise SynopsisError("footprint_bound must be at least 2")
        self.footprint_bound = footprint_bound
        self.policy = policy if policy is not None else MultiplicativeRaise()
        self._rng = ReproRandom(seed)
        self._counts: dict[int, int] = {}
        self._footprint = 0
        self._threshold = 1.0
        self._inserted = 0
        self._deleted = 0
        # The admission skipper advances one step per *absent-value*
        # insert event; each such event is an independent 1/tau coin.
        self._admission = GeometricSkipper(self._rng, self.counters, 1.0)
        # Vectorized randomness for the batch path; created lazily so
        # per-element-only runs consume the same RNG stream as before.
        self._vector_coins: VectorCoins | None = None
        # Memoized (values, counts) arrays for the answer path; reset
        # to None by every mutation of ``_counts``.
        self._columnar: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def threshold(self) -> float:
        """Current entry threshold ``tau``."""
        return self._threshold

    @property
    def footprint(self) -> int:
        """Words used: one per singleton, two per ``(value, count)`` pair."""
        return self._footprint

    @property
    def distinct_in_sample(self) -> int:
        """Number of distinct values currently in the sample."""
        return len(self._counts)

    @property
    def total_count(self) -> int:
        """Sum of all observed counts in the sample."""
        return sum(self._counts.values())

    @property
    def total_inserted(self) -> int:
        """Net relation size ``n`` implied by *this* synopsis's stream.

        Tracked per synopsis rather than on the (possibly shared)
        :class:`~repro.randkit.coins.CostCounters` ledger, so several
        synopses sharing one cost ledger each report their own ``n``.
        """
        return self._inserted - self._deleted

    def __contains__(self, value: int) -> bool:
        return value in self._counts

    def __repr__(self) -> str:
        return (
            f"CountingSample(footprint={self._footprint}/"
            f"{self.footprint_bound}, distinct={len(self._counts)}, "
            f"threshold={self._threshold:.3f})"
        )

    def count_of(self, value: int) -> int:
        """The observed count of ``value`` (0 if absent)."""
        return self._counts.get(value, 0)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(value, observed count)`` for every value present."""
        return iter(self._counts.items())

    def as_dict(self) -> dict[int, int]:
        """A copy of the sample as ``{value: observed count}``."""
        return dict(self._counts)

    def count_histogram(self) -> Mapping[int, int]:
        """Map from observed count to the number of values with it."""
        return Counter(self._counts.values())

    def columnar_view(self) -> tuple[np.ndarray, np.ndarray]:
        """Parallel ``(values, counts)`` int64 arrays of the sample.

        Built once and memoized until the next mutation; the arrays
        are shared across calls and marked read-only.
        """
        view = self._columnar
        if view is None:
            size = len(self._counts)
            values = np.fromiter(self._counts.keys(), np.int64, size)
            counts = np.fromiter(self._counts.values(), np.int64, size)
            values.setflags(write=False)
            counts.setflags(write=False)
            view = (values, counts)
            self._columnar = view
        return view

    def bit_footprint(self, value_bits: int = 32) -> int:
        """Footprint in bits under variable-length count encoding
        (paper footnote 3)."""
        from repro.core.footprint import bit_footprint

        return bit_footprint(self._counts, value_bits)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, value: int) -> None:
        """Observe one warehouse insert of ``value``."""
        self.counters.inserts += 1
        self._inserted += 1
        self.counters.lookups += 1
        count = self._counts.get(value, 0)
        if count > 0:
            self._counts[value] = count + 1
            self._columnar = None
            if count == 1:
                # Singleton becomes a (value, count) pair.
                self._footprint += 1
                if self._footprint > self.footprint_bound:
                    self._shrink()
            return
        if not self._admission.offer():
            return
        self._counts[value] = 1
        self._footprint += 1
        self._columnar = None
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_admission(self.SNAPSHOT_KIND, 1)
        if self._footprint > self.footprint_bound:
            self._shrink()

    def insert_array(self, values: np.ndarray) -> None:
        """Vectorized bulk insertion.

        A counting sample cannot skip stream elements -- present values
        must be counted exactly -- but it *can* aggregate them: each
        chunk is reduced with one ``np.unique``, occurrences of
        already-present values are added to their counts in bulk, and
        absent values draw their whole admission tail as one geometric
        array op (count = occurrences - pre-admission failures).  The
        Python-level loop runs only over distinct present values and
        newly admitted ones, not the stream.  Threshold raises are
        applied between chunks via the Theorem-5 subsample, which
        preserves the counting-sample law.
        """
        n = len(values)
        if n == 0:
            return
        values = np.asarray(values)
        position = 0
        growth = 1
        while position < n:
            chunk_len = min(
                n - position, self._chunk_length() * growth
            )
            raises_before = self.counters.threshold_raises
            self._ingest_chunk(values[position : position + chunk_len])
            position += chunk_len
            if self.counters.threshold_raises == raises_before:
                growth = min(growth * 2, _MAX_CHUNK_GROWTH)
            else:
                growth = 1

    def _coins(self) -> VectorCoins:
        if self._vector_coins is None:
            self._vector_coins = VectorCoins(
                self._rng.numpy_generator(), self.counters
            )
        return self._vector_coins

    def _chunk_length(self) -> int:
        expected = self.footprint_bound * max(1.0, self._threshold)
        return max(_MIN_CHUNK, int(expected) // _CHUNK_DIVISOR)

    def _ingest_chunk(self, chunk: np.ndarray) -> None:
        chunk_len = len(chunk)
        self.counters.inserts += chunk_len
        self._inserted += chunk_len
        uniq, occurrences = np.unique(chunk, return_counts=True)
        # One hash probe per distinct value in the chunk (the batch
        # economy the per-element path cannot have).
        self.counters.lookups += len(uniq)
        counts_dict = self._counts
        if counts_dict:
            keys = np.fromiter(
                counts_dict.keys(), np.int64, len(counts_dict)
            )
            present = np.isin(uniq, keys, assume_unique=True)
        else:
            present = np.zeros(len(uniq), dtype=bool)
        footprint = self._footprint
        # Present values: every occurrence is counted, no randomness.
        for value, count in zip(
            uniq[present].tolist(),
            occurrences[present].tolist(),
            strict=True,
        ):
            current = counts_dict[value]
            counts_dict[value] = current + count
            if current == 1:
                footprint += 1
        # Absent values: the whole admission tail in one array draw.
        absent_values = uniq[~present]
        if absent_values.size:
            absent_occurrences = occurrences[~present]
            if self._threshold <= 1.0:
                surviving = absent_occurrences
            else:
                surviving = self._coins().admission_survivors(
                    1.0 / self._threshold, absent_occurrences
                )
            admitted = surviving > 0
            for value, count in zip(
                absent_values[admitted].tolist(),
                surviving[admitted].tolist(),
                strict=True,
            ):
                counts_dict[value] = count
                footprint += 1 if count == 1 else 2
            if obs_probe.PROBE is not None and admitted.any():
                obs_probe.PROBE.on_admission(
                    self.SNAPSHOT_KIND, int(np.count_nonzero(admitted))
                )
        self._footprint = footprint
        self._columnar = None
        if footprint > self.footprint_bound:
            self._shrink(batch=True)

    def delete(self, value: int) -> None:
        """Observe one warehouse delete of ``value``.

        If the value is in the sample its count is decremented (and the
        value removed on reaching zero); otherwise nothing changes.
        Theorem 5 shows this preserves the counting-sample property.
        """
        self.counters.deletes += 1
        self._deleted += 1
        self.counters.lookups += 1
        count = self._counts.get(value, 0)
        if count == 0:
            return
        self._columnar = None
        if count == 1:
            del self._counts[value]
            self._footprint -= 1
        else:
            self._counts[value] = count - 1
            if count == 2:
                # Pair reverts to a singleton.
                self._footprint -= 1

    def _shrink(self, batch: bool = False) -> None:
        """Raise the threshold until the footprint is within bound."""
        while self._footprint > self.footprint_bound:
            new_threshold = self.policy.next_threshold(self)
            if new_threshold <= self._threshold:
                raise SynopsisError(
                    "threshold policy failed to raise the threshold"
                )
            if batch:
                self._evict_to_batch(new_threshold)
            else:
                self._evict_to(new_threshold)

    def _evict_to(self, new_threshold: float) -> None:
        """Re-run every value's admission tail at the stricter threshold.

        For each value: first coin heads with probability
        ``tau / tau'`` (keep the full count); on tails decrement and
        keep flipping at ``1/tau'`` until a heads or the count reaches
        zero.  The tails run is drawn in closed form (a geometric),
        so the cost is O(1) flips per value.
        """
        self.counters.threshold_raises += 1
        old_threshold = self._threshold
        size_before = (
            self.total_count if obs_probe.PROBE is not None else 0
        )
        keep_probability = self._threshold / new_threshold
        tail_log = math.log1p(-1.0 / new_threshold)
        for value in list(self._counts):
            # One uniform drives the whole per-value decision: its
            # position below/above keep_probability is the first coin,
            # and conditioned on tails, the renormalised remainder is a
            # fresh uniform that inverts the geometric tails run.
            self.counters.flips += 1
            u = self._rng.uniform()
            if u < keep_probability:
                continue
            count = self._counts[value]
            removed = 1
            remaining = count - 1
            if remaining > 0:
                conditional = (u - keep_probability) / (
                    1.0 - keep_probability
                )
                # Inverse-CDF of the further-tails geometric; guard the
                # degenerate endpoint where the uniform renormalises
                # to exactly 0.
                if conditional <= 0.0:
                    tails = remaining
                else:
                    tails = int(math.log(conditional) / tail_log)
                removed += min(tails, remaining)
            new_count = count - removed
            if new_count == 0:
                del self._counts[value]
                self._footprint -= 2 if count >= 2 else 1
            else:
                self._counts[value] = new_count
                if new_count == 1 and count >= 2:
                    self._footprint -= 1
        self._columnar = None
        self._threshold = new_threshold
        self._admission.raise_threshold(new_threshold)
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_threshold_raise(
                self.SNAPSHOT_KIND,
                old_threshold,
                new_threshold,
                size_before,
                self.total_count,
            )

    def _evict_to_batch(self, new_threshold: float) -> None:
        """Vectorized threshold raise: all admission tails in one op.

        Semantically identical to :meth:`_evict_to` -- one uniform per
        value drives the keep/tail decision -- but the uniforms are
        drawn as one array and the tail inversion runs in numpy via
        :func:`subsample_tail_counts`.
        """
        self.counters.threshold_raises += 1
        old_threshold = self._threshold
        values, counts = self.columnar_view()
        new_counts = subsample_tail_counts(
            counts,
            self._threshold / new_threshold,
            new_threshold,
            self._coins().uniforms(counts.size),
        )
        alive = new_counts > 0
        self._counts = dict(
            zip(values[alive].tolist(), new_counts[alive].tolist(), strict=True)
        )
        self._columnar = None
        self._footprint = int(
            np.count_nonzero(new_counts == 1)
            + 2 * np.count_nonzero(new_counts >= 2)
        )
        self._threshold = new_threshold
        self._admission.raise_threshold(new_threshold)
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_threshold_raise(
                self.SNAPSHOT_KIND,
                old_threshold,
                new_threshold,
                int(counts.sum()),
                int(new_counts.sum()),
            )

    @classmethod
    def merge(
        cls,
        samples: "list[CountingSample]",
        *,
        seed: int | None = None,
        footprint_bound: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> "CountingSample":
        """Merge shard counting samples; see :func:`repro.core.merge.merge_counting`."""
        from repro.core.merge import merge_counting

        return merge_counting(
            samples,
            seed=seed,
            footprint_bound=footprint_bound,
            policy=policy,
            counters=counters,
        )

    def to_dict(self) -> dict[str, Any]:
        """Dump to a JSON-able snapshot dict (paper footnote 2).

        Restoring with :meth:`from_dict` is *statistically* equivalent,
        not bitwise: the restored sample carries the same counts,
        threshold, and counters, but a fresh RNG stream (Theorem 5's
        argument is over the invariant state, not the generator).
        """
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_snapshot(self.SNAPSHOT_KIND, "dump")
        return {
            "kind": self.SNAPSHOT_KIND,
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "footprint_bound": self.footprint_bound,
            "threshold": self._threshold,
            "counts": [
                [value, count] for value, count in self._counts.items()
            ],
            "total_inserted": self._inserted,
            "total_deleted": self._deleted,
            "counters": self.counters.to_dict(),
        }

    @classmethod
    def from_dict(
        cls,
        payload: Mapping[str, Any],
        *,
        seed: int | None = None,
    ) -> "CountingSample":
        """Rebuild a sample from :meth:`to_dict` output.

        ``seed`` re-seeds the restored object's randomness
        (continuation runs should pass a fresh seed; tests may pin
        one).
        """
        if payload["kind"] != cls.SNAPSHOT_KIND:
            raise SynopsisError(
                f"snapshot kind {payload['kind']!r} is not a counting sample"
            )
        version = int(payload.get("format_version", 0))
        if version > SNAPSHOT_FORMAT_VERSION:
            raise SynopsisError(
                f"snapshot format {version} is newer than this build "
                f"reads (up to {SNAPSHOT_FORMAT_VERSION})"
            )
        counters = CostCounters.from_dict(payload["counters"])
        # Build on a throwaway ledger so the admission skipper's
        # threshold redraw is not charged to the restored counters,
        # then swap the saved ledger in.
        sample = cls(int(payload["footprint_bound"]), seed=seed)
        for value, count in payload["counts"]:
            sample._counts[int(value)] = int(count)
            sample._footprint += 1 if count == 1 else 2
        threshold = float(payload["threshold"])
        sample._threshold = threshold
        # Older snapshots predate the per-synopsis stream totals and
        # used the shared ledger's operation counts instead.
        sample._inserted = int(
            payload.get("total_inserted", counters.inserts)
        )
        sample._deleted = int(
            payload.get("total_deleted", counters.deletes)
        )
        if threshold > 1.0:
            sample._admission.raise_threshold(threshold)
        sample.counters = counters
        sample._admission._counters = counters
        sample.check_invariants()
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_snapshot(cls.SNAPSHOT_KIND, "restore")
        return sample

    def check_invariants(self) -> None:
        """Recompute bookkeeping from the raw state; raise on drift."""
        footprint = sum(1 if c == 1 else 2 for c in self._counts.values())
        if footprint != self._footprint:
            raise SynopsisError(
                f"footprint drift: stored {self._footprint}, "
                f"actual {footprint}"
            )
        if self._footprint > self.footprint_bound:
            raise SynopsisError("footprint exceeds its bound")
        if any(c <= 0 for c in self._counts.values()):
            raise SynopsisError("non-positive observed count")
