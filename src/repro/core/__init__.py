"""The paper's core synopses: traditional, concise, and counting samples.

* :class:`~repro.core.reservoir.ReservoirSample` -- Vitter's reservoir
  sampling (the "traditional sample" baseline, [Vit85]).
* :class:`~repro.core.concise.ConciseSample` -- Definition 1/2 with the
  incremental maintenance algorithm of Section 3.1.
* :class:`~repro.core.counting.CountingSample` -- Definition 3 with the
  insert+delete maintenance algorithm of Section 4.1.
* :func:`~repro.core.offline.offline_concise_sample` -- the
  offline/static extraction algorithm of Section 3.
* :func:`~repro.core.convert.counting_to_concise` -- the Section 4
  conversion that turns a counting sample into a concise (uniform)
  sample without base-data access.
* :mod:`~repro.core.thresholds` -- pluggable threshold-raise policies.
"""

from repro.core.backing import BackingSample
from repro.core.base import StreamSynopsis, SynopsisError
from repro.core.concise import ConciseSample
from repro.core.convert import counting_to_concise
from repro.core.counting import CountingSample
from repro.core.footprint import bit_footprint, word_footprint
from repro.core.merge import merge_concise, merge_counting
from repro.core.offline import offline_concise_sample
from repro.core.reservoir import ReservoirSample
from repro.core.sharded import ShardedSynopsis
from repro.core.thresholds import (
    BinarySearchRaise,
    MultiplicativeRaise,
    SingletonBoundRaise,
    ThresholdPolicy,
)

__all__ = [
    "BackingSample",
    "BinarySearchRaise",
    "ConciseSample",
    "CountingSample",
    "MultiplicativeRaise",
    "ReservoirSample",
    "ShardedSynopsis",
    "SingletonBoundRaise",
    "StreamSynopsis",
    "SynopsisError",
    "ThresholdPolicy",
    "bit_footprint",
    "counting_to_concise",
    "merge_concise",
    "merge_counting",
    "offline_concise_sample",
    "word_footprint",
]
