"""Backing samples maintained under insertions and deletions [GMP97b].

The paper's Section 2 recalls the *backing sample* of its companion
paper: "a random sample of a relation that is kept up-to-date", used
there for the incremental maintenance of equi-depth and Compressed
histograms.  Deletions are the hard part -- removing a deleted tuple
from the sample keeps it uniform, but shrinks it, so the sample is
kept between a lower and upper size bound and a rescan of base data is
requested when it falls below the lower bound.

Tuples are identified by caller-supplied ids (row ids in the
warehouse), which is what makes correct deletion possible; the paper's
concise samples trade this away for footprint, which is exactly why
they are hard to maintain under deletes and counting samples exist.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.base import StreamSynopsis, SynopsisError
from repro.randkit.coins import CostCounters
from repro.randkit.rng import ReproRandom

__all__ = ["BackingSample"]


class BackingSample(StreamSynopsis):
    """A uniform (id, value) sample maintained under inserts/deletes.

    Parameters
    ----------
    capacity:
        Upper bound ``U`` on the sample size.
    min_size:
        Lower bound ``L``; when deletions push the sample below ``L``
        while the relation holds at least ``L`` tuples,
        :attr:`needs_rescan` turns on and estimates should not be
        trusted until :meth:`rebuild` is called with a fresh scan.
    seed, counters:
        As elsewhere.
    """

    def __init__(
        self,
        capacity: int,
        min_size: int | None = None,
        *,
        seed: int | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if capacity < 1:
            raise SynopsisError("capacity must be at least 1")
        if min_size is None:
            min_size = max(1, capacity // 2)
        if not 1 <= min_size <= capacity:
            raise SynopsisError("need 1 <= min_size <= capacity")
        self.capacity = capacity
        self.min_size = min_size
        self._rng = ReproRandom(seed)
        self._members: dict[int, int] = {}  # id -> value
        self._order: list[int] = []  # ids, for O(1) random eviction
        self._relation_size = 0
        self.needs_rescan = False

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def footprint(self) -> int:
        """Words used: an id and a value per sample member."""
        return 2 * len(self._members)

    @property
    def sample_size(self) -> int:
        """Current number of sampled tuples."""
        return len(self._members)

    @property
    def relation_size(self) -> int:
        """Live tuples in the underlying relation."""
        return self._relation_size

    def __contains__(self, row_id: int) -> bool:
        return row_id in self._members

    def values(self) -> np.ndarray:
        """The sampled attribute values as an array."""
        if not self._members:
            return np.empty(0, dtype=np.int64)
        return np.fromiter(
            self._members.values(), dtype=np.int64, count=len(self._members)
        )

    def items(self) -> Iterable[tuple[int, int]]:
        """Iterate sampled ``(row id, value)`` pairs."""
        return self._members.items()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, value: int) -> None:
        """Stream-interface insert with an auto-assigned id.

        Auto ids are the running relation size; callers that also
        delete must use :meth:`insert_row` with their own ids instead.
        """
        self.insert_row(self._relation_size, value)

    def insert_row(self, row_id: int, value: int) -> None:
        """Observe the insertion of one identified tuple.

        Three regimes, each preserving the per-tuple inclusion
        probability ``sample_size / relation_size``:

        * the sample still holds the *whole* relation and is below
          capacity -- take the new tuple unconditionally;
        * otherwise -- accept the new tuple with probability
          ``sample_size / (relation_size + 1)`` and evict a uniformly
          random member, keeping the size constant.  Growing the
          sample from inserts would bias it toward new tuples, which
          is why a deletion-shrunk sample can only be regrown by a
          base-data rescan ([GMP97b]).
        """
        if row_id in self._members:
            raise SynopsisError(f"duplicate row id {row_id}")
        self.counters.inserts += 1
        holds_whole_relation = (
            len(self._members) == self._relation_size
        )
        self._relation_size += 1
        if holds_whole_relation and len(self._members) < self.capacity:
            self._members[row_id] = value
            self._order.append(row_id)
            return
        if not self._order:
            return
        self.counters.flips += 1
        accept_probability = len(self._order) / self._relation_size
        if not self._rng.bernoulli(accept_probability):
            return
        victim_index = self._rng.choice_index(len(self._order))
        victim_id = self._order[victim_index]
        del self._members[victim_id]
        self._order[victim_index] = row_id
        self._members[row_id] = value

    def delete_row(self, row_id: int) -> None:
        """Observe the deletion of one identified tuple.

        If the tuple is in the sample it is removed (the remaining
        members stay a uniform sample of the remaining relation).
        Falling below ``min_size`` raises :attr:`needs_rescan`.
        """
        self.counters.deletes += 1
        if self._relation_size <= 0:
            raise SynopsisError("delete from an empty relation")
        self._relation_size -= 1
        member_value = self._members.pop(row_id, None)
        if member_value is None:
            return
        # Swap-remove from the order list.
        index = self._order.index(row_id)
        self._order[index] = self._order[-1]
        self._order.pop()
        if (
            len(self._members) < self.min_size
            and self._relation_size >= self.min_size
        ):
            self.needs_rescan = True

    def rebuild(self, rows: Iterable[tuple[int, int]]) -> None:
        """Recompute the sample from a full scan of ``(id, value)`` rows.

        Charges one disk access per scanned row and clears
        :attr:`needs_rescan`.  The scan must reflect the current
        relation contents.
        """
        members: dict[int, int] = {}
        order: list[int] = []
        scanned = 0
        for row_id, value in rows:
            scanned += 1
            self.counters.disk_accesses += 1
            if len(order) < self.capacity:
                members[row_id] = value
                order.append(row_id)
                continue
            self.counters.flips += 1
            if self._rng.bernoulli(self.capacity / scanned):
                victim_index = self._rng.choice_index(len(order))
                del members[order[victim_index]]
                order[victim_index] = row_id
                members[row_id] = value
        self._members = members
        self._order = order
        self._relation_size = scanned
        self.needs_rescan = False

    def check_invariants(self) -> None:
        """Validate sample-size bounds and internal consistency."""
        if set(self._order) != set(self._members):
            raise SynopsisError("order list out of sync with members")
        if len(self._members) > self.capacity:
            raise SynopsisError("sample exceeds capacity")
        if len(self._members) > self._relation_size:
            raise SynopsisError("sample larger than relation")
