"""Footprint accounting helpers.

The paper's default cost model (footnote 3) charges one memory word
per stored value and one per stored count.  The same footnote notes
that "variable-length encoding could be used for the counts, so that
only ceil(lg x) bits are needed to store x as a count; this reduces
the footprint but complicates the memory management."  These helpers
compute both accountings from a ``{value: count}`` state so the
word-model and bit-model footprints can be compared (see the
``examples`` and the footprint tests).
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["bit_footprint", "word_footprint"]


def word_footprint(counts: Mapping[int, int]) -> int:
    """Words used by the concise representation: one per singleton,
    two per ``(value, count)`` pair."""
    return sum(1 if count == 1 else 2 for count in counts.values())


def bit_footprint(
    counts: Mapping[int, int],
    value_bits: int = 32,
) -> int:
    """Bits used with variable-length count encoding.

    Each entry stores its value in ``value_bits`` bits plus one flag
    bit marking whether a count follows; a pair's count ``x`` is
    stored in ``max(1, ceil(lg(x + 1)))`` bits.  (A real implementation
    would also need a length prefix or self-delimiting code for the
    counts; the flag-plus-minimal-bits model matches the footnote's
    accounting.)
    """
    if value_bits < 1:
        raise ValueError("value_bits must be positive")
    total = 0
    for count in counts.values():
        if count < 1:
            raise ValueError("counts must be positive")
        total += value_bits + 1
        if count > 1:
            # ceil(lg(count + 1)) == count.bit_length() for count >= 1.
            total += count.bit_length()
    return total
