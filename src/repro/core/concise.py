"""Concise samples with incremental maintenance (paper Section 3).

A concise sample (Definition 1) is a uniform random sample of an
attribute in which values appearing more than once are represented as a
``(value, count)`` pair.  With *sample-size* the number of represented
sample points and *footprint* the number of memory words used
(Definition 2), the sample-size is never smaller than the footprint and
can be arbitrarily larger on skewed data.

The maintenance algorithm (Section 3.1) keeps an entry threshold
``tau`` (initially 1).  Each warehouse insert enters the sample with
probability ``1/tau``; when the footprint would exceed its bound, the
threshold is raised to some ``tau' > tau`` and every current sample
point survives independently with probability ``tau/tau'`` (Theorem 2
proves the result is a uniform sample at threshold ``tau'``).  Geometric
skip counters make the amortised cost O(1) per insert.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Mapping

import numpy as np

from repro.core.base import StreamSynopsis, SynopsisError
from repro.core.thresholds import MultiplicativeRaise, ThresholdPolicy
from repro.randkit.coins import CostCounters, EvictionSkipper, GeometricSkipper
from repro.randkit.rng import ReproRandom

__all__ = ["ConciseSample"]


class ConciseSample(StreamSynopsis):
    """A concise sample maintained within a fixed footprint bound.

    Parameters
    ----------
    footprint_bound:
        Maximum number of memory words (``m`` in the paper); at least 2
        so one ``(value, count)`` pair always fits.
    seed:
        Seed for all randomness of this sample instance.
    policy:
        Threshold-raise policy; defaults to the paper's 10%
        multiplicative raise.
    counters:
        Optional shared cost ledger (one is created if omitted).

    Examples
    --------
    >>> sample = ConciseSample(footprint_bound=8, seed=7)
    >>> for value in [3, 3, 3, 5, 9]:
    ...     sample.insert(value)
    >>> sample.sample_size
    5
    >>> sample.footprint <= 8
    True
    """

    def __init__(
        self,
        footprint_bound: int,
        *,
        seed: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if footprint_bound < 2:
            raise SynopsisError("footprint_bound must be at least 2")
        self.footprint_bound = footprint_bound
        self.policy = policy if policy is not None else MultiplicativeRaise()
        self._rng = ReproRandom(seed)
        self._counts: dict[int, int] = {}
        self._footprint = 0
        self._sample_size = 0
        self._threshold = 1.0
        self._admission = GeometricSkipper(self._rng, self.counters, 1.0)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def threshold(self) -> float:
        """Current entry threshold ``tau`` (admission probability 1/tau)."""
        return self._threshold

    @property
    def footprint(self) -> int:
        """Words used: one per singleton, two per ``(value, count)`` pair."""
        return self._footprint

    @property
    def sample_size(self) -> int:
        """Number of sample points represented (``m'`` in the paper)."""
        return self._sample_size

    @property
    def distinct_in_sample(self) -> int:
        """Number of distinct values currently in the sample."""
        return len(self._counts)

    @property
    def total_inserted(self) -> int:
        """Warehouse inserts observed so far (the relation size ``n``)."""
        return self.counters.inserts

    def __contains__(self, value: int) -> bool:
        return value in self._counts

    def __len__(self) -> int:
        return self._sample_size

    def __repr__(self) -> str:
        return (
            f"ConciseSample(footprint={self._footprint}/"
            f"{self.footprint_bound}, sample_size={self._sample_size}, "
            f"threshold={self._threshold:.3f})"
        )

    def count_of(self, value: int) -> int:
        """How many sample points equal ``value`` (0 if absent)."""
        return self._counts.get(value, 0)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(value, sample count)`` for every value present."""
        return iter(self._counts.items())

    def as_dict(self) -> dict[int, int]:
        """A copy of the sample as ``{value: sample count}``."""
        return dict(self._counts)

    def count_histogram(self) -> Mapping[int, int]:
        """Map from sample count to the number of values with it."""
        return Counter(self._counts.values())

    def bit_footprint(self, value_bits: int = 32) -> int:
        """Footprint in bits under variable-length count encoding
        (paper footnote 3)."""
        from repro.core.footprint import bit_footprint

        return bit_footprint(self._counts, value_bits)

    def sample_points(self) -> np.ndarray:
        """The sample expanded to individual points, as an array.

        The result is a uniform random sample (with the threshold
        semantics of Theorem 2) of all values inserted so far, and can
        be fed to any conventional sampling-based estimator.
        """
        if not self._counts:
            return np.empty(0, dtype=np.int64)
        values = np.fromiter(
            self._counts.keys(), dtype=np.int64, count=len(self._counts)
        )
        counts = np.fromiter(
            self._counts.values(), dtype=np.int64, count=len(self._counts)
        )
        return np.repeat(values, counts)

    def estimate_frequency(self, value: int) -> float:
        """Estimated occurrence count of ``value`` in the full relation.

        Scales the sample count by ``n / m'`` as in Section 5.1.
        Returns 0.0 for values not in the sample (which is also the
        estimate an empty sample gives).
        """
        if self._sample_size == 0:
            return 0.0
        scale = self.counters.inserts / self._sample_size
        return self._counts.get(value, 0) * scale

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, value: int) -> bool:
        """Observe one warehouse insert; returns ``True`` if sampled."""
        self.counters.inserts += 1
        if not self._admission.offer():
            return False
        self._add_sample_point(value)
        if self._footprint > self.footprint_bound:
            self._shrink()
        return True

    def insert_array(self, values: np.ndarray) -> None:
        """Skip-ahead bulk insertion.

        Jumps directly between admitted stream positions, so the cost
        is proportional to the number of *admitted* inserts plus
        threshold raises -- not the stream length -- once the threshold
        exceeds 1.
        """
        position = 0
        n = len(values)
        while position < n:
            offset = self._admission.next_admission_within(n - position)
            if offset is None:
                self.counters.inserts += n - position
                return
            self.counters.inserts += offset + 1
            position += offset
            self._add_sample_point(int(values[position]))
            position += 1
            if self._footprint > self.footprint_bound:
                self._shrink()

    def _add_sample_point(self, value: int) -> None:
        """Place an admitted value into the concise representation."""
        self.counters.lookups += 1
        count = self._counts.get(value, 0)
        if count <= 1:
            # New singleton, or singleton converting to a pair: either
            # way the footprint grows by one word.
            self._footprint += 1
        self._counts[value] = count + 1
        self._sample_size += 1

    def _shrink(self) -> None:
        """Raise the threshold until the footprint is within bound."""
        while self._footprint > self.footprint_bound:
            new_threshold = self.policy.next_threshold(self)
            if new_threshold <= self._threshold:
                raise SynopsisError(
                    "threshold policy failed to raise the threshold"
                )
            self._evict_to(new_threshold)

    def _evict_to(self, new_threshold: float) -> None:
        """Subject every sample point to the stricter threshold.

        Each point survives with probability ``tau / tau'``; the sweep
        uses geometric skips so the flip count is proportional to the
        number of evictions, not the sample-size.
        """
        self.counters.threshold_raises += 1
        eviction_probability = 1.0 - self._threshold / new_threshold
        sweeper = EvictionSkipper(
            self._rng, self.counters, eviction_probability
        )
        for value in list(self._counts):
            count = self._counts[value]
            evicted = sweeper.evictions_within(count)
            if not evicted:
                continue
            remaining = count - evicted
            self._sample_size -= evicted
            if remaining == 0:
                del self._counts[value]
                self._footprint -= 2 if count >= 2 else 1
            else:
                self._counts[value] = remaining
                if remaining == 1 and count >= 2:
                    self._footprint -= 1
        self._threshold = new_threshold
        self._admission.raise_threshold(new_threshold)

    # ------------------------------------------------------------------
    # Construction from existing state / validation
    # ------------------------------------------------------------------

    @classmethod
    def from_state(
        cls,
        counts: Mapping[int, int],
        threshold: float,
        footprint_bound: int,
        *,
        total_inserted: int = 0,
        seed: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> "ConciseSample":
        """Build a concise sample from an explicit ``{value: count}`` state.

        Used by the offline construction and the counting-to-concise
        conversion.  The state must already respect the footprint
        bound.
        """
        sample = cls(
            footprint_bound,
            seed=seed,
            policy=policy,
            counters=counters,
        )
        for value, count in counts.items():
            if count <= 0:
                raise SynopsisError("counts must be positive")
            sample._counts[int(value)] = int(count)
            sample._footprint += 1 if count == 1 else 2
            sample._sample_size += count
        if sample._footprint > footprint_bound:
            raise SynopsisError("state exceeds the footprint bound")
        if threshold < 1.0:
            raise SynopsisError("threshold must be at least 1")
        sample._threshold = float(threshold)
        sample.counters.inserts += total_inserted
        if threshold > 1.0:
            sample._admission.raise_threshold(float(threshold))
        return sample

    def check_invariants(self) -> None:
        """Recompute bookkeeping from the raw state; raise on drift."""
        footprint = sum(1 if c == 1 else 2 for c in self._counts.values())
        sample_size = sum(self._counts.values())
        if footprint != self._footprint:
            raise SynopsisError(
                f"footprint drift: stored {self._footprint}, "
                f"actual {footprint}"
            )
        if sample_size != self._sample_size:
            raise SynopsisError(
                f"sample-size drift: stored {self._sample_size}, "
                f"actual {sample_size}"
            )
        if self._footprint > self.footprint_bound:
            raise SynopsisError("footprint exceeds its bound")
        if any(c <= 0 for c in self._counts.values()):
            raise SynopsisError("non-positive sample count")
