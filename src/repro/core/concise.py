"""Concise samples with incremental maintenance (paper Section 3).

A concise sample (Definition 1) is a uniform random sample of an
attribute in which values appearing more than once are represented as a
``(value, count)`` pair.  With *sample-size* the number of represented
sample points and *footprint* the number of memory words used
(Definition 2), the sample-size is never smaller than the footprint and
can be arbitrarily larger on skewed data.

The maintenance algorithm (Section 3.1) keeps an entry threshold
``tau`` (initially 1).  Each warehouse insert enters the sample with
probability ``1/tau``; when the footprint would exceed its bound, the
threshold is raised to some ``tau' > tau`` and every current sample
point survives independently with probability ``tau/tau'`` (Theorem 2
proves the result is a uniform sample at threshold ``tau'``).  Geometric
skip counters make the amortised cost O(1) per insert.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, ClassVar, Iterator, Mapping

import numpy as np

from repro.core.base import (
    SNAPSHOT_FORMAT_VERSION,
    StreamSynopsis,
    SynopsisError,
)
from repro.core.thresholds import MultiplicativeRaise, ThresholdPolicy
from repro.obs import probe as obs_probe
from repro.randkit.coins import CostCounters, EvictionSkipper, GeometricSkipper
from repro.randkit.rng import ReproRandom
from repro.randkit.vectorized import VectorCoins

__all__ = ["ConciseSample"]

# Batch chunks admit roughly footprint_bound / _CHUNK_DIVISOR elements
# before a shrink check, keeping the footprint overshoot (and hence the
# threshold trajectory) close to the per-element algorithm's.  Chunks
# double while no shrink triggers (the all-fits regime, where chunk
# size has no distributional effect at all) and reset on a threshold
# raise; growth is capped to bound the worst-case footprint overshoot.
_CHUNK_DIVISOR = 4
_MIN_CHUNK = 256
_MAX_CHUNK_GROWTH = 1024


class ConciseSample(StreamSynopsis):
    """A concise sample maintained within a fixed footprint bound.

    Parameters
    ----------
    footprint_bound:
        Maximum number of memory words (``m`` in the paper); at least 2
        so one ``(value, count)`` pair always fits.
    seed:
        Seed for all randomness of this sample instance.
    policy:
        Threshold-raise policy; defaults to the paper's 10%
        multiplicative raise.
    counters:
        Optional shared cost ledger (one is created if omitted).

    Examples
    --------
    >>> sample = ConciseSample(footprint_bound=8, seed=7)
    >>> for value in [3, 3, 3, 5, 9]:
    ...     sample.insert(value)
    >>> sample.sample_size
    5
    >>> sample.footprint <= 8
    True
    """

    SNAPSHOT_KIND: ClassVar[str] = "concise-sample"

    def __init__(
        self,
        footprint_bound: int,
        *,
        seed: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if footprint_bound < 2:
            raise SynopsisError("footprint_bound must be at least 2")
        self.footprint_bound = footprint_bound
        self.policy = policy if policy is not None else MultiplicativeRaise()
        self._rng = ReproRandom(seed)
        self._counts: dict[int, int] = {}
        self._footprint = 0
        self._sample_size = 0
        self._threshold = 1.0
        self._inserted = 0
        self._admission = GeometricSkipper(self._rng, self.counters, 1.0)
        # Vectorized randomness for the batch path; created lazily so
        # per-element-only runs consume exactly the same RNG stream as
        # before the batch pipeline existed.
        self._vector_coins: VectorCoins | None = None
        # Memoized (values, counts) arrays for the answer path; reset
        # to None by every mutation of ``_counts``.
        self._columnar: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def threshold(self) -> float:
        """Current entry threshold ``tau`` (admission probability 1/tau)."""
        return self._threshold

    @property
    def footprint(self) -> int:
        """Words used: one per singleton, two per ``(value, count)`` pair."""
        return self._footprint

    @property
    def sample_size(self) -> int:
        """Number of sample points represented (``m'`` in the paper)."""
        return self._sample_size

    @property
    def distinct_in_sample(self) -> int:
        """Number of distinct values currently in the sample."""
        return len(self._counts)

    @property
    def total_inserted(self) -> int:
        """Warehouse inserts observed by *this* synopsis (``n``).

        Tracked per synopsis, not on the shared
        :class:`~repro.randkit.coins.CostCounters` ledger: several
        synopses may share one cost ledger, and the relation size an
        estimator scales by must be this synopsis's own stream length.
        """
        return self._inserted

    def __contains__(self, value: int) -> bool:
        return value in self._counts

    def __len__(self) -> int:
        return self._sample_size

    def __repr__(self) -> str:
        return (
            f"ConciseSample(footprint={self._footprint}/"
            f"{self.footprint_bound}, sample_size={self._sample_size}, "
            f"threshold={self._threshold:.3f})"
        )

    def count_of(self, value: int) -> int:
        """How many sample points equal ``value`` (0 if absent)."""
        return self._counts.get(value, 0)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(value, sample count)`` for every value present."""
        return iter(self._counts.items())

    def as_dict(self) -> dict[int, int]:
        """A copy of the sample as ``{value: sample count}``."""
        return dict(self._counts)

    def count_histogram(self) -> Mapping[int, int]:
        """Map from sample count to the number of values with it."""
        return Counter(self._counts.values())

    def bit_footprint(self, value_bits: int = 32) -> int:
        """Footprint in bits under variable-length count encoding
        (paper footnote 3)."""
        from repro.core.footprint import bit_footprint

        return bit_footprint(self._counts, value_bits)

    def columnar_view(self) -> tuple[np.ndarray, np.ndarray]:
        """Parallel ``(values, counts)`` int64 arrays of the sample.

        Built once from the concise representation and memoized until
        the next mutation, so repeated reports between inserts pay no
        rebuild.  The arrays are shared across calls and marked
        read-only; callers must not write through them.
        """
        view = self._columnar
        if view is None:
            size = len(self._counts)
            values = np.fromiter(self._counts.keys(), np.int64, size)
            counts = np.fromiter(self._counts.values(), np.int64, size)
            values.setflags(write=False)
            counts.setflags(write=False)
            view = (values, counts)
            self._columnar = view
        return view

    def sample_points(self) -> np.ndarray:
        """The sample expanded to individual points, as an array.

        The result is a uniform random sample (with the threshold
        semantics of Theorem 2) of all values inserted so far, and can
        be fed to any conventional sampling-based estimator.
        """
        if not self._counts:
            return np.empty(0, dtype=np.int64)
        values, counts = self.columnar_view()
        return np.repeat(values, counts)

    def estimate_frequency(self, value: int) -> float:
        """Estimated occurrence count of ``value`` in the full relation.

        Scales the sample count by ``n / m'`` as in Section 5.1.
        Returns 0.0 for values not in the sample (which is also the
        estimate an empty sample gives).
        """
        if self._sample_size == 0:
            return 0.0
        scale = self._inserted / self._sample_size
        return self._counts.get(value, 0) * scale

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, value: int) -> bool:
        """Observe one warehouse insert; returns ``True`` if sampled."""
        self.counters.inserts += 1
        self._inserted += 1
        if not self._admission.offer():
            return False
        self._add_sample_point(value)
        if self._footprint > self.footprint_bound:
            self._shrink()
        return True

    def insert_array(self, values: np.ndarray) -> None:
        """Vectorized bulk insertion.

        Processes the stream in chunks: one array of admission coins
        per chunk, one ``np.unique`` aggregation of the admitted
        values, and a bulk update of the concise representation -- the
        per-element Python loop runs only over *distinct admitted*
        values.  Threshold raises are applied between chunks; by
        Theorem 2 subsampling the whole sample to the raised threshold
        is distributionally equivalent to admitting late elements at
        the raised threshold directly, so the result is a concise
        sample with the same law as the per-element path (the exact
        random sequences differ; see the statistical-equivalence
        tests).
        """
        n = len(values)
        if n == 0:
            return
        values = np.asarray(values)
        coins = self._coins()
        position = 0
        growth = 1
        while position < n:
            chunk_len = min(
                n - position, self._chunk_length() * growth
            )
            chunk = values[position : position + chunk_len]
            position += chunk_len
            self.counters.inserts += chunk_len
            self._inserted += chunk_len
            if self._threshold <= 1.0:
                admitted = chunk
            else:
                mask = coins.admission_mask(
                    1.0 / self._threshold, chunk_len
                )
                admitted = chunk[mask]
            if admitted.size:
                self._add_batch(admitted)
            if self._footprint > self.footprint_bound:
                self._shrink(batch=True)
                growth = 1
            else:
                growth = min(growth * 2, _MAX_CHUNK_GROWTH)

    def _coins(self) -> VectorCoins:
        if self._vector_coins is None:
            self._vector_coins = VectorCoins(
                self._rng.numpy_generator(), self.counters
            )
        return self._vector_coins

    def _chunk_length(self) -> int:
        """Stream elements per batch chunk.

        Sized so a chunk admits about ``footprint_bound / 4`` elements
        in expectation, keeping the footprint overshoot before a
        shrink close to the per-element algorithm's.
        """
        expected = self.footprint_bound * max(1.0, self._threshold)
        return max(_MIN_CHUNK, int(expected) // _CHUNK_DIVISOR)

    def _add_batch(self, admitted: np.ndarray) -> None:
        """Fold a block of admitted values into the representation."""
        uniq, counts = np.unique(admitted, return_counts=True)
        self.counters.lookups += len(uniq)
        counts_dict = self._counts
        get = counts_dict.get
        footprint = self._footprint
        for value, count in zip(uniq.tolist(), counts.tolist(), strict=True):
            current = get(value, 0)
            if current == 0:
                footprint += 1 if count == 1 else 2
            elif current == 1:
                footprint += 1
            counts_dict[value] = current + count
        self._footprint = footprint
        self._sample_size += int(admitted.size)
        self._columnar = None
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_admission(
                self.SNAPSHOT_KIND, int(admitted.size)
            )

    def _add_sample_point(self, value: int) -> None:
        """Place an admitted value into the concise representation."""
        self.counters.lookups += 1
        count = self._counts.get(value, 0)
        if count <= 1:
            # New singleton, or singleton converting to a pair: either
            # way the footprint grows by one word.
            self._footprint += 1
        self._counts[value] = count + 1
        self._sample_size += 1
        self._columnar = None
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_admission(self.SNAPSHOT_KIND, 1)

    def _shrink(self, batch: bool = False) -> None:
        """Raise the threshold until the footprint is within bound."""
        while self._footprint > self.footprint_bound:
            new_threshold = self.policy.next_threshold(self)
            if new_threshold <= self._threshold:
                raise SynopsisError(
                    "threshold policy failed to raise the threshold"
                )
            if batch:
                self._evict_to_batch(new_threshold)
            else:
                self._evict_to(new_threshold)

    def _evict_to(self, new_threshold: float) -> None:
        """Subject every sample point to the stricter threshold.

        Each point survives with probability ``tau / tau'``; the sweep
        uses geometric skips so the flip count is proportional to the
        number of evictions, not the sample-size.
        """
        self.counters.threshold_raises += 1
        old_threshold = self._threshold
        size_before = self._sample_size
        eviction_probability = 1.0 - self._threshold / new_threshold
        sweeper = EvictionSkipper(
            self._rng, self.counters, eviction_probability
        )
        for value in list(self._counts):
            count = self._counts[value]
            evicted = sweeper.evictions_within(count)
            if not evicted:
                continue
            remaining = count - evicted
            self._sample_size -= evicted
            if remaining == 0:
                del self._counts[value]
                self._footprint -= 2 if count >= 2 else 1
            else:
                self._counts[value] = remaining
                if remaining == 1 and count >= 2:
                    self._footprint -= 1
        self._columnar = None
        self._threshold = new_threshold
        self._admission.raise_threshold(new_threshold)
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_threshold_raise(
                self.SNAPSHOT_KIND,
                old_threshold,
                new_threshold,
                size_before,
                self._sample_size,
            )

    def _evict_to_batch(self, new_threshold: float) -> None:
        """Vectorized eviction sweep: binomial survivors in one op.

        Every ``(value, count)`` run draws its survivor count from
        ``Binomial(count, tau / tau')`` -- the closed form of Theorem
        2's per-point coin flips -- and the representation is rebuilt
        from the survivor arrays.
        """
        self.counters.threshold_raises += 1
        old_threshold = self._threshold
        size_before = self._sample_size
        keep_probability = self._threshold / new_threshold
        values, counts = self.columnar_view()
        survivors = self._coins().binomial_survivors(
            counts, keep_probability
        )
        alive = survivors > 0
        self._counts = dict(
            zip(values[alive].tolist(), survivors[alive].tolist(), strict=True)
        )
        self._columnar = None
        self._footprint = int(
            np.count_nonzero(survivors == 1)
            + 2 * np.count_nonzero(survivors >= 2)
        )
        self._sample_size = int(survivors.sum())
        self._threshold = new_threshold
        self._admission.raise_threshold(new_threshold)
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_threshold_raise(
                self.SNAPSHOT_KIND,
                old_threshold,
                new_threshold,
                size_before,
                self._sample_size,
            )

    # ------------------------------------------------------------------
    # Construction from existing state / validation
    # ------------------------------------------------------------------

    @classmethod
    def from_state(
        cls,
        counts: Mapping[int, int],
        threshold: float,
        footprint_bound: int,
        *,
        total_inserted: int = 0,
        seed: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> "ConciseSample":
        """Build a concise sample from an explicit ``{value: count}`` state.

        Used by the offline construction and the counting-to-concise
        conversion.  The state must already respect the footprint
        bound.
        """
        sample = cls(
            footprint_bound,
            seed=seed,
            policy=policy,
            counters=counters,
        )
        for value, count in counts.items():
            if count <= 0:
                raise SynopsisError("counts must be positive")
            sample._counts[int(value)] = int(count)
            sample._footprint += 1 if count == 1 else 2
            sample._sample_size += count
        if sample._footprint > footprint_bound:
            raise SynopsisError("state exceeds the footprint bound")
        if threshold < 1.0:
            raise SynopsisError("threshold must be at least 1")
        sample._threshold = float(threshold)
        sample._inserted = int(total_inserted)
        sample.counters.inserts += total_inserted
        if threshold > 1.0:
            sample._admission.raise_threshold(float(threshold))
        return sample

    def to_dict(self) -> dict[str, Any]:
        """Dump to a JSON-able snapshot dict (paper footnote 2).

        Restoring with :meth:`from_dict` is *statistically* equivalent,
        not bitwise: the restored sample carries the same sample
        contents, threshold, and counters, but a fresh RNG stream
        (Theorem 2's induction is over the invariant state -- sample +
        threshold -- not the generator).
        """
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_snapshot(self.SNAPSHOT_KIND, "dump")
        return {
            "kind": self.SNAPSHOT_KIND,
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "footprint_bound": self.footprint_bound,
            "threshold": self._threshold,
            "counts": [
                [value, count] for value, count in self._counts.items()
            ],
            "total_inserted": self._inserted,
            "counters": self.counters.to_dict(),
        }

    @classmethod
    def from_dict(
        cls,
        payload: Mapping[str, Any],
        *,
        seed: int | None = None,
    ) -> "ConciseSample":
        """Rebuild a sample from :meth:`to_dict` output.

        ``seed`` re-seeds the restored object's randomness
        (continuation runs should pass a fresh seed; tests may pin
        one).
        """
        if payload["kind"] != cls.SNAPSHOT_KIND:
            raise SynopsisError(
                f"snapshot kind {payload['kind']!r} is not a concise sample"
            )
        version = int(payload.get("format_version", 0))
        if version > SNAPSHOT_FORMAT_VERSION:
            raise SynopsisError(
                f"snapshot format {version} is newer than this build "
                f"reads (up to {SNAPSHOT_FORMAT_VERSION})"
            )
        counters = CostCounters.from_dict(payload["counters"])
        sample = cls.from_state(
            {int(v): int(c) for v, c in payload["counts"]},
            threshold=float(payload["threshold"]),
            footprint_bound=int(payload["footprint_bound"]),
            total_inserted=int(
                # Older snapshots predate the per-synopsis n and used
                # the shared ledger's insert count as the relation size.
                payload.get("total_inserted", counters.inserts)
            ),
            seed=seed,
        )
        sample.counters = counters
        # from_state starts a fresh admission skipper; re-point it at
        # the restored ledger so future flips are charged correctly.
        sample._admission._counters = counters
        if obs_probe.PROBE is not None:
            obs_probe.PROBE.on_snapshot(cls.SNAPSHOT_KIND, "restore")
        return sample

    def check_invariants(self) -> None:
        """Recompute bookkeeping from the raw state; raise on drift."""
        footprint = sum(1 if c == 1 else 2 for c in self._counts.values())
        sample_size = sum(self._counts.values())
        if footprint != self._footprint:
            raise SynopsisError(
                f"footprint drift: stored {self._footprint}, "
                f"actual {footprint}"
            )
        if sample_size != self._sample_size:
            raise SynopsisError(
                f"sample-size drift: stored {self._sample_size}, "
                f"actual {sample_size}"
            )
        if self._footprint > self.footprint_bound:
            raise SynopsisError("footprint exceeds its bound")
        if any(c <= 0 for c in self._counts.values()):
            raise SynopsisError("non-positive sample count")
