"""Experiment scale profiles.

The paper's experiments insert 500K values and average 5 trials per
data point, with the zipf parameter swept in 0.25 steps.  That is the
**full** profile.  The **quick** profile (the default) shrinks the
stream and trial count so the whole suite runs in minutes while
preserving every qualitative shape.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["FULL_PROFILE", "QUICK_PROFILE", "Profile", "active_profile"]


@dataclass(frozen=True)
class Profile:
    """Experiment scale parameters.

    Attributes
    ----------
    name:
        Human-readable label printed in every series header.
    inserts:
        Stream length per trial.
    trials:
        Independent trials averaged per data point.
    zipf_step:
        Skew sweep granularity for the Figure-3 / Table-1 sweeps.
    """

    name: str
    inserts: int
    trials: int
    zipf_step: float


FULL_PROFILE = Profile("full (paper)", 500_000, 5, 0.25)
QUICK_PROFILE = Profile("quick", 100_000, 3, 0.5)


def active_profile() -> Profile:
    """The profile selected by the environment.

    ``REPRO_FULL=1`` selects the paper's profile; anything else (or an
    unset variable) selects the quick profile.
    """
    if os.environ.get("REPRO_FULL"):
        return FULL_PROFILE
    return QUICK_PROFILE
