"""Figure 3 / Table 1 drivers: sample-size and overheads vs skew."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ConciseSample, ReservoirSample
from repro.core.offline import offline_concise_sample
from repro.experiments.profiles import Profile
from repro.randkit import spawn_seeds
from repro.streams import zipf_stream

__all__ = ["ScenarioStats", "figure3_scenario", "figure3_sweep"]


@dataclass(frozen=True)
class ScenarioStats:
    """Per-(scenario, algorithm) averages for Figure 3 / Table 1."""

    skew: float
    sample_size: float
    flips_per_insert: float
    lookups_per_insert: float
    threshold_raises: float


def figure3_scenario(
    footprint: int,
    domain: int,
    skew: float,
    profile: Profile,
    master_seed: int,
) -> dict[str, ScenarioStats]:
    """One Figure-3 data point: mean sample-sizes and overheads of the
    three algorithms over ``profile.trials`` independent streams."""
    results: dict[str, list[ScenarioStats]] = {
        "traditional": [],
        "concise online": [],
        "concise offline": [],
    }
    for seed in spawn_seeds(master_seed, profile.trials):
        stream = zipf_stream(profile.inserts, domain, skew, seed)

        traditional = ReservoirSample(footprint, seed=seed + 1)
        traditional.insert_array(stream)
        results["traditional"].append(
            ScenarioStats(
                skew,
                traditional.sample_size,
                traditional.counters.flips_per_insert(),
                traditional.counters.lookups_per_insert(),
                0.0,
            )
        )

        online = ConciseSample(footprint, seed=seed + 2)
        online.insert_array(stream)
        results["concise online"].append(
            ScenarioStats(
                skew,
                online.sample_size,
                online.counters.flips_per_insert(),
                online.counters.lookups_per_insert(),
                online.counters.threshold_raises,
            )
        )

        offline = offline_concise_sample(stream, footprint, seed + 3)
        results["concise offline"].append(
            ScenarioStats(skew, offline.sample_size, 0.0, 0.0, 0.0)
        )

    def mean(stats: list[ScenarioStats]) -> ScenarioStats:
        return ScenarioStats(
            skew,
            float(np.mean([s.sample_size for s in stats])),
            float(np.mean([s.flips_per_insert for s in stats])),
            float(np.mean([s.lookups_per_insert for s in stats])),
            float(np.mean([s.threshold_raises for s in stats])),
        )

    return {name: mean(stats) for name, stats in results.items()}


def figure3_sweep(
    footprint: int,
    domain: int,
    zipf_values: list[float],
    profile: Profile,
    master_seed: int,
) -> dict[str, list[ScenarioStats]]:
    """A full skew sweep: one :func:`figure3_scenario` per zipf value."""
    series: dict[str, list[ScenarioStats]] = {
        "traditional": [],
        "concise online": [],
        "concise offline": [],
    }
    for skew in zipf_values:
        point = figure3_scenario(
            footprint, domain, skew, profile, master_seed
        )
        for name in series:
            series[name].append(point[name])
    return series
