"""Reusable experiment drivers for the paper's evaluation.

The benchmark suite (``benchmarks/``) and the command-line runner
(``python -m repro.experiments``) both build on these drivers, which
regenerate the data behind every table and figure of the paper:

* :func:`figure3_scenario` / :func:`figure3_sweep` -- sample-size vs
  skew for traditional / concise-online / concise-offline samples
  (Figure 3, Table 1).
* :func:`hotlist_scenario` -- the four hot-list algorithms on one
  stream (Figures 4-6, Table 2).
* :class:`Profile` -- quick vs full (paper-scale) experiment profiles.
"""

from repro.experiments.figure3 import (
    ScenarioStats,
    figure3_scenario,
    figure3_sweep,
)
from repro.experiments.hotlists import HotListRun, hotlist_scenario
from repro.experiments.profiles import (
    FULL_PROFILE,
    QUICK_PROFILE,
    Profile,
    active_profile,
)
from repro.experiments.reporting import print_series

__all__ = [
    "FULL_PROFILE",
    "HotListRun",
    "Profile",
    "QUICK_PROFILE",
    "ScenarioStats",
    "active_profile",
    "figure3_scenario",
    "figure3_sweep",
    "hotlist_scenario",
    "print_series",
]
