"""Figures 4-6 / Table 2 driver: the four hot-list algorithms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.profiles import Profile
from repro.hotlist import (
    ConciseHotList,
    CountingHotList,
    FullHistogramHotList,
    TraditionalHotList,
    evaluate_hotlist,
    head_count_error,
)
from repro.hotlist.accuracy import HotListEvaluation
from repro.randkit import spawn_seeds
from repro.stats.frequency import FrequencyTable
from repro.streams import zipf_stream

__all__ = ["HotListRun", "hotlist_scenario"]


@dataclass(frozen=True)
class HotListRun:
    """Per-algorithm results of a Figures-4-6 hot-list scenario."""

    evaluation: HotListEvaluation
    reported: list[tuple[int, float]]
    head_error: float
    flips_per_insert: float
    lookups_per_insert: float
    threshold_raises: int
    sample_size: int | None
    final_threshold: float | None


def hotlist_scenario(
    footprint: int,
    domain: int,
    skew: float,
    k: int,
    profile: Profile,
    master_seed: int,
) -> tuple[dict[str, HotListRun], FrequencyTable]:
    """One Figures-4-6 scenario: all four algorithms, one stream.

    The paper plots a single run per figure; this driver keeps that
    convention (the Table-2 overhead metrics are single-run too).
    Returns the per-algorithm runs and the exact frequency table.
    """
    seed = spawn_seeds(master_seed, 1)[0]
    stream = zipf_stream(profile.inserts, domain, skew, seed)
    truth = FrequencyTable(stream)

    reporters = {
        "full histogram": FullHistogramHotList(footprint),
        "concise samples": ConciseHotList(footprint, seed=seed + 1),
        "counting samples": CountingHotList(footprint, seed=seed + 2),
        "traditional samples": TraditionalHotList(
            footprint, seed=seed + 3
        ),
    }
    runs: dict[str, HotListRun] = {}
    for name, reporter in reporters.items():
        reporter.insert_array(stream)
        answer = reporter.report(k)
        evaluation = evaluate_hotlist(answer, truth, k)
        sample = getattr(reporter, "sample", None)
        runs[name] = HotListRun(
            evaluation=evaluation,
            reported=[
                (entry.value, entry.estimated_count) for entry in answer
            ],
            head_error=head_count_error(answer, truth, min(k, 20)),
            flips_per_insert=reporter.counters.flips_per_insert(),
            lookups_per_insert=reporter.counters.lookups_per_insert(),
            threshold_raises=reporter.counters.threshold_raises,
            sample_size=getattr(sample, "sample_size", None),
            final_threshold=getattr(sample, "threshold", None),
        )
    return runs, truth
