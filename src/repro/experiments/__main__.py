"""Command-line experiment runner.

Regenerate any of the paper's tables and figures without pytest::

    python -m repro.experiments figure3b
    python -m repro.experiments figure4 --full
    python -m repro.experiments table2
    python -m repro.experiments all

``--full`` selects the paper's 500K-insert, 5-trial profile (the same
switch as the ``REPRO_FULL`` environment variable used by the
benchmark suite).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.experiments.figure3 import figure3_sweep
from repro.experiments.hotlists import hotlist_scenario
from repro.experiments.profiles import (
    FULL_PROFILE,
    QUICK_PROFILE,
    Profile,
)
from repro.experiments.reporting import print_series

_FIGURE3_PANELS = {
    "figure3a": (100, 5_000, 3.0),
    "figure3b": (1_000, 5_000, 3.0),
    "figure3c": (1_000, 50_000, 1.5),
    "figure3d": (1_000, 5_000, 1.5),
}

_HOTLIST_SCENARIOS = {
    "figure4": (100, 500, 1.5, 20, 4000),
    "figure5": (1_000, 5_000, 1.0, 100, 5000),
    "figure6": (1_000, 50_000, 1.25, 120, 6000),
}


def _run_figure3(panel: str, profile: Profile) -> None:
    footprint, domain, z_stop = _FIGURE3_PANELS[panel]
    zipfs = [
        round(z, 2)
        for z in np.arange(0.0, z_stop + 1e-9, profile.zipf_step)
    ]
    series = figure3_sweep(
        footprint, domain, zipfs, profile, 1000 + ord(panel[-1])
    )
    print_series(
        f"{panel}: {profile.inserts:,} values in [1,{domain}], "
        f"footprint {footprint} ({profile.name} profile)",
        ["zipf", "traditional", "concise online", "concise offline"],
        [
            [
                zipfs[i],
                series["traditional"][i].sample_size,
                series["concise online"][i].sample_size,
                series["concise offline"][i].sample_size,
            ]
            for i in range(len(zipfs))
        ],
    )


def _run_table1(profile: Profile) -> None:
    zipfs = [
        round(z, 2)
        for z in np.arange(0.0, 3.0 + 1e-9, profile.zipf_step)
    ]
    scenarios = {
        "Fig 3(a)": (100, 5_000),
        "Figs 3(b)(d)": (1_000, 5_000),
        "Fig 3(c)": (1_000, 50_000),
    }
    columns = {}
    for name, (footprint, domain) in scenarios.items():
        series = figure3_sweep(footprint, domain, zipfs, profile, 2000)
        columns[name] = series["concise online"]
    header = ["zipf"]
    for name in scenarios:
        header += [f"{name} flips", "lookups"]
    rows = []
    for i, z in enumerate(zipfs):
        row = [z]
        for name in scenarios:
            row += [
                round(columns[name][i].flips_per_insert, 4),
                round(columns[name][i].lookups_per_insert, 4),
            ]
        rows.append(row)
    print_series(
        f"Table 1 ({profile.name} profile)",
        header,
        rows,
        widths=[8] + [20, 10] * len(scenarios),
    )


def _run_hotlist(name: str, profile: Profile) -> None:
    footprint, domain, skew, k, seed = _HOTLIST_SCENARIOS[name]
    runs, truth = hotlist_scenario(
        footprint, domain, skew, k, profile, seed
    )
    exact_top = truth.top_k(min(k, 25))
    answers = {
        algorithm: dict(run.reported) for algorithm, run in runs.items()
    }
    print_series(
        f"{name}: {profile.inserts:,} values in [1,{domain}], zipf "
        f"{skew}, footprint {footprint} ({profile.name} profile)",
        ["rank", "value", "exact", "counting", "concise", "traditional"],
        [
            [
                rank,
                value,
                count,
                round(
                    answers["counting samples"].get(value, float("nan")),
                    1,
                ),
                round(
                    answers["concise samples"].get(value, float("nan")),
                    1,
                ),
                round(
                    answers["traditional samples"].get(
                        value, float("nan")
                    ),
                    1,
                ),
            ]
            for rank, (value, count) in enumerate(exact_top, start=1)
        ],
        widths=[6, 8, 10, 12, 12, 14],
    )
    for algorithm, run in runs.items():
        evaluation = run.evaluation
        print(
            f"  {algorithm:<22} reported={evaluation.reported:>4} "
            f"recall={evaluation.recall:.2f} "
            f"head_err={run.head_error:.2%}"
        )


def _run_table2(profile: Profile) -> None:
    for name in _HOTLIST_SCENARIOS:
        footprint, domain, skew, k, seed = _HOTLIST_SCENARIOS[name]
        runs, _ = hotlist_scenario(
            footprint, domain, skew, k, profile, seed
        )
        rows = []
        for algorithm in (
            "concise samples",
            "counting samples",
            "traditional samples",
        ):
            run = runs[algorithm]
            rows.append(
                [
                    algorithm,
                    round(run.flips_per_insert, 3),
                    round(run.lookups_per_insert, 3),
                    run.threshold_raises or "n/a",
                    run.sample_size
                    if algorithm != "counting samples"
                    else "n/a",
                    round(run.final_threshold or 0)
                    if algorithm != "traditional samples"
                    else "n/a",
                    run.evaluation.reported,
                ]
            )
        print_series(
            f"Table 2 -- {name} ({profile.name} profile)",
            [
                "algorithm",
                "flips",
                "lookups",
                "raises",
                "sample-size",
                "threshold",
                "reported",
            ],
            rows,
            widths=[22, 9, 9, 8, 13, 11, 10],
        )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    experiments = (
        list(_FIGURE3_PANELS) + ["table1", "table2"]
        + list(_HOTLIST_SCENARIOS) + ["all"]
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=experiments)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's 500K-insert, 5-trial profile",
    )
    arguments = parser.parse_args(argv)
    profile = FULL_PROFILE if arguments.full else QUICK_PROFILE

    selected = (
        experiments[:-1]
        if arguments.experiment == "all"
        else [arguments.experiment]
    )
    for experiment in selected:
        if experiment in _FIGURE3_PANELS:
            _run_figure3(experiment, profile)
        elif experiment == "table1":
            _run_table1(profile)
        elif experiment == "table2":
            _run_table2(profile)
        else:
            _run_hotlist(experiment, profile)
    return 0


if __name__ == "__main__":
    sys.exit(main())
