"""Fixed-width text rendering of experiment series."""

from __future__ import annotations

__all__ = ["print_series"]


def print_series(
    title: str,
    header: list[str],
    rows: list[list],
    widths: list[int] | None = None,
) -> None:
    """Print one table/figure series in a fixed-width layout.

    Floats are rendered with thousands separators and three decimals;
    everything else with ``str``.  Widths default to header-derived
    minima.
    """
    print(f"\n=== {title} ===")
    if widths is None:
        widths = [max(12, len(h) + 2) for h in header]
    print("".join(str(h).rjust(w) for h, w in zip(header, widths, strict=True)))
    for row in rows:
        cells = []
        for value, width in zip(row, widths, strict=True):
            if isinstance(value, float):
                cells.append(f"{value:,.3f}".rjust(width))
            else:
                cells.append(str(value).rjust(width))
        print("".join(cells))
