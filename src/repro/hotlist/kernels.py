"""Columnar hot-list report kernels (Section 5.1, vectorized).

All four reporters share the same reporting rule -- compute the rank
cut-off ``c_k``, combine it with a confidence cut-off, keep every value
whose sample/observed count clears the combined cut-off, and order the
survivors by nonincreasing estimate with ties toward smaller values.
These kernels run that rule over parallel ``(values, counts)`` int64
arrays (a synopsis ``columnar_view``) instead of a per-query dict walk:
the cut-off is a partial selection (``np.partition``), the filter is
one boolean mask, and only the surviving candidates are sorted.

Estimates are affine in the count -- ``count * scale + offset`` covers
both the concise/traditional ``n/m'`` scaling (``offset = 0``) and the
counting sample's additive ``c-hat`` compensation (``scale = 1``) --
and the float64 array arithmetic is bit-identical to the per-entry
Python arithmetic of the dict path for any realistic count, so answers
match the historical path exactly (see the columnar property tests).
"""

from __future__ import annotations

import numpy as np

from repro.hotlist.base import HotListAnswer, HotListEntry

__all__ = ["rank_cutoff", "report_from_columns", "confident_from_columns"]


def rank_cutoff(counts: np.ndarray, k: int) -> int:
    """The ``k``-th largest count (``c_k``), or 0 with fewer than ``k``.

    A partial selection: ``np.partition`` places the ``k``-th largest
    at its sorted position without sorting either side.  The value
    variant beats ``np.argpartition`` here -- no index array, and the
    heavily tied count distributions of real synopses sit near
    introselect's worst case for the index variant.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if counts.size < k:
        return 0
    pivot = counts.size - k
    return int(np.partition(counts, pivot)[pivot])


def _entries(
    values: np.ndarray,
    counts: np.ndarray,
    selected: np.ndarray,
    scale: float,
    offset: float,
) -> tuple[HotListEntry, ...]:
    """Order selected candidates into canonical hot-list entries."""
    chosen_values = values[selected]
    estimates = counts[selected] * scale + offset
    # Primary key: estimate descending; secondary: value ascending --
    # the same (-estimate, value) order as ``order_entries``.
    order = np.lexsort((chosen_values, -estimates))
    ordered_values = chosen_values[order].tolist()
    ordered_estimates = estimates[order].tolist()
    return tuple(
        HotListEntry(value, estimate)
        for value, estimate in zip(
            ordered_values, ordered_estimates, strict=True
        )
    )


def report_from_columns(
    values: np.ndarray,
    counts: np.ndarray,
    k: int,
    *,
    confidence_cutoff: float = 0.0,
    scale: float = 1.0,
    offset: float = 0.0,
) -> HotListAnswer:
    """The Section 5.1 report over a columnar synopsis view.

    Keeps every value with ``count >= max(c_k, confidence_cutoff)``
    (possibly more than ``k`` entries on ties at ``c_k``, exactly as
    the dict path reported) and estimates each as
    ``count * scale + offset``.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if counts.size == 0:
        return HotListAnswer(k=k)
    cutoff = max(rank_cutoff(counts, k), confidence_cutoff)
    selected = counts >= cutoff
    if not selected.any():
        return HotListAnswer(k=k)
    return HotListAnswer(
        k=k, entries=_entries(values, counts, selected, scale, offset)
    )


def confident_from_columns(
    values: np.ndarray,
    counts: np.ndarray,
    *,
    confidence_cutoff: float = 0.0,
    scale: float = 1.0,
    offset: float = 0.0,
) -> HotListAnswer:
    """Section 5.2's "report all pairs reportable with confidence".

    No rank cut-off: every value clearing the confidence cut-off is
    reported, and the answer's ``k`` records how many qualified.
    """
    selected = counts >= confidence_cutoff
    entries = _entries(values, counts, selected, scale, offset)
    return HotListAnswer(k=len(entries), entries=entries)
