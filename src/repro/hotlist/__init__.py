"""Approximate hot-list queries (paper Section 5).

A hot-list query asks for an ordered set of ``(value, count)`` pairs
for the ``k`` most frequently occurring values.  This package provides
the paper's four incremental algorithms:

* :class:`~repro.hotlist.traditional.TraditionalHotList` -- reservoir
  sample, counts scaled by ``n/m``.
* :class:`~repro.hotlist.concise.ConciseHotList` -- concise sample,
  counts scaled by ``n/m'``.
* :class:`~repro.hotlist.counting.CountingHotList` -- counting sample,
  counts augmented by the compensation constant ``c-hat``.
* :class:`~repro.hotlist.exact.FullHistogramHotList` -- the exact
  full-histogram-on-disk baseline (one disk access per update).

plus the evaluation utilities used by the Figures 4-6 experiments.
"""

from repro.hotlist.accuracy import (
    HotListEvaluation,
    evaluate_hotlist,
    head_count_error,
)
from repro.hotlist.base import HotListAnswer, HotListEntry, HotListReporter
from repro.hotlist.concise import ConciseHotList
from repro.hotlist.counting import CountingHotList
from repro.hotlist.exact import FullHistogramHotList
from repro.hotlist.sorted_concise import SortedConciseHotList
from repro.hotlist.traditional import TraditionalHotList

__all__ = [
    "ConciseHotList",
    "CountingHotList",
    "FullHistogramHotList",
    "HotListAnswer",
    "HotListEntry",
    "HotListEvaluation",
    "HotListReporter",
    "SortedConciseHotList",
    "TraditionalHotList",
    "evaluate_hotlist",
    "head_count_error",
]
