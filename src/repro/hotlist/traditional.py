"""Hot lists from traditional (reservoir) samples (Section 5.1).

"A traditional sample of size m can be maintained using Vitter's
reservoir sampling algorithm.  To report an approximate hot list, we
first semi-sort by value, and replace every sample point occurring
multiple times by a (value, count) pair.  We then compute the k'th
largest count c_k, and report all pairs with counts at least
max(c_k, theta), scaling the counts by n/m."
"""

from __future__ import annotations

import numpy as np

from repro.core.reservoir import ReservoirSample
from repro.estimators.intervals import ConfidenceInterval
from repro.hotlist.base import HotListAnswer, HotListReporter
from repro.hotlist.intervals import scaled_top_interval
from repro.hotlist.kernels import report_from_columns
from repro.randkit.coins import CostCounters

__all__ = ["TraditionalHotList"]


class TraditionalHotList(HotListReporter):
    """Approximate hot lists over a maintained reservoir sample.

    Parameters
    ----------
    footprint_bound:
        ``m``; the reservoir capacity equals the footprint.
    confidence_threshold:
        ``theta``: the minimum number of sample points a value needs
        before it may be reported.  The paper finds ``theta = 3`` a
        good choice and uses it in all experiments.
    seed, counters:
        As for :class:`~repro.core.reservoir.ReservoirSample`.
    """

    def __init__(
        self,
        footprint_bound: int,
        *,
        confidence_threshold: int = 3,
        seed: int | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        if confidence_threshold < 1:
            raise ValueError("confidence_threshold must be at least 1")
        self.confidence_threshold = confidence_threshold
        self.footprint_bound = footprint_bound
        self.sample = ReservoirSample(
            footprint_bound, seed=seed, counters=counters
        )

    @property
    def footprint(self) -> int:
        """Words used by the underlying reservoir."""
        return self.sample.footprint

    @property
    def counters(self) -> CostCounters:
        """The cost ledger of the underlying sample."""
        return self.sample.counters

    def insert(self, value: int) -> None:
        self.sample.insert(value)

    def insert_array(self, values: np.ndarray) -> None:
        self.sample.insert_array(values)

    def report(self, k: int) -> HotListAnswer:
        """Report up to ``k`` hot values (possibly fewer; Section 5.2)."""
        if k < 1:
            raise ValueError("k must be positive")
        values, counts = self.sample.columnar_view()
        if counts.size == 0:
            return HotListAnswer(k=k)
        return report_from_columns(
            values,
            counts,
            k,
            confidence_cutoff=self.confidence_threshold,
            scale=self.sample.total_inserted / self.sample.sample_size,
        )

    def top_interval(
        self, answer: HotListAnswer, confidence: float = 0.95
    ) -> ConfidenceInterval | None:
        """Hoeffding bound on the top entry's true frequency."""
        return scaled_top_interval(self.sample, answer, confidence)
