"""Confidence intervals for hot-list top counts.

Hot-list answers are structured, so the engine's scalar interval
machinery never covered them; calibration auditing (the accuracy loop
in ``repro.obs.audit``) needs a claimed bound to check the reported
top count against.  Two finite-sample constructions:

* **Scaled samples** (traditional / concise / sorted-concise): the top
  item's raw sample count is a Binomial(``m``, ``f_v / n``) draw, so a
  Hoeffding bound on the proportion -- the same
  :func:`~repro.estimators.intervals.hoeffding_count_interval` the
  count estimator uses -- scales to an interval on ``f_v``.
* **Counting samples**: counts are exact from admission, so the only
  error is the occurrences missed *before* admission -- geometric with
  success ``1/tau`` (Theorem 6's admission coin).  The interval is
  one-sided: ``[raw count, raw count + miss quantile]`` via
  :func:`~repro.stats.theory.counting_miss_quantile`.

Both are conservative (finite-sample valid) by construction, so
empirical audit coverage cannot legitimately fall below the claimed
confidence.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.estimators.intervals import (
    ConfidenceInterval,
    hoeffding_count_interval,
)
from repro.hotlist.base import HotListAnswer
from repro.stats.theory import counting_miss_quantile

__all__ = ["counting_top_interval", "scaled_top_interval"]


def scaled_top_interval(
    sample: Any,
    answer: HotListAnswer,
    confidence: float = 0.95,
) -> ConfidenceInterval | None:
    """Hoeffding interval on the top entry's true frequency.

    ``sample`` is a scaled synopsis exposing ``columnar_view()``,
    ``sample_size``, and ``total_inserted``.  Returns ``None`` for
    empty answers or empty samples (no claim to make).
    """
    if not answer.entries or sample.sample_size == 0:
        return None
    values, counts = sample.columnar_view()
    top = answer.entries[0]
    match = np.flatnonzero(values == top.value)
    if match.size == 0:
        return None
    raw = int(counts[match[0]])
    return hoeffding_count_interval(
        raw, sample.sample_size, sample.total_inserted, confidence
    )


def counting_top_interval(
    sample: Any,
    answer: HotListAnswer,
    confidence: float = 0.95,
) -> ConfidenceInterval | None:
    """One-sided geometric interval on the top entry's true frequency.

    ``sample`` is a counting sample exposing ``columnar_view()`` and
    ``threshold``.  The raw count is a certain undercount of ``f_v``;
    the upper edge adds the ``confidence``-quantile of the geometric
    misses-before-admission count.  Returns ``None`` for empty
    answers or when the top value left the sample.
    """
    if not answer.entries:
        return None
    values, counts = sample.columnar_view()
    top = answer.entries[0]
    match = np.flatnonzero(values == top.value)
    if match.size == 0:
        return None
    raw = float(counts[match[0]])
    slack = counting_miss_quantile(sample.threshold, confidence)
    return ConfidenceInterval(raw, raw + slack, confidence)
