"""The exact full-histogram baseline (Section 5.1).

"The last algorithm maintains a full histogram on disk, i.e.
(value, count) pairs for all distinct values in R, with a copy of the
top m/2 pairs stored as a synopsis within the approximate answer
engine.  This enables exact answers to hot list queries.  The main
drawback ... is that each update to R requires a separate disk access."

We simulate the disk residency with an access counter: every insert or
delete charges one ``disk_access``.  The in-memory synopsis copy of the
top ``m/2`` pairs is refreshed on demand (the paper does not specify a
refresh discipline; refreshing at report time is the cheapest policy
that preserves exactness).
"""

from __future__ import annotations

import numpy as np

from repro.estimators.intervals import ConfidenceInterval
from repro.hotlist.base import (
    HotListAnswer,
    HotListEntry,
    HotListReporter,
)
from repro.randkit.coins import CostCounters
from repro.stats.frequency import FrequencyTable

__all__ = ["FullHistogramHotList"]


class FullHistogramHotList(HotListReporter):
    """Exact hot lists from a (simulated) disk-resident full histogram.

    Parameters
    ----------
    footprint_bound:
        ``m``, the memory words available to the in-engine synopsis;
        the top ``m // 2`` pairs fit in it.
    counters:
        Optional ledger; every update charges one disk access.
    """

    def __init__(
        self,
        footprint_bound: int,
        *,
        counters: CostCounters | None = None,
    ) -> None:
        if footprint_bound < 2:
            raise ValueError("footprint_bound must be at least 2")
        self.footprint_bound = footprint_bound
        self.counters = counters if counters is not None else CostCounters()
        self._histogram = FrequencyTable()

    @property
    def synopsis_capacity(self) -> int:
        """How many (value, count) pairs the in-engine copy can hold."""
        return self.footprint_bound // 2

    @property
    def disk_footprint(self) -> int:
        """Words of (simulated) disk used by the full histogram."""
        return 2 * len(self._histogram)

    def insert(self, value: int) -> None:
        self.counters.inserts += 1
        self.counters.disk_accesses += 1
        self._histogram.insert(value)

    def insert_array(self, values: np.ndarray) -> None:
        self.counters.inserts += len(values)
        self.counters.disk_accesses += len(values)
        self._histogram.update(values)

    def delete(self, value: int) -> None:
        self.counters.deletes += 1
        self.counters.disk_accesses += 1
        self._histogram.delete(value)

    def exact_count(self, value: int) -> int:
        """The exact occurrence count of ``value``."""
        return self._histogram.count(value)

    def truth(self) -> FrequencyTable:
        """The complete exact frequency table (ground truth)."""
        return self._histogram

    def report(self, k: int) -> HotListAnswer:
        """Exact top-``k``, limited by the synopsis capacity ``m/2``."""
        if k < 1:
            raise ValueError("k must be positive")
        top = self._histogram.top_k(min(k, self.synopsis_capacity))
        # top_k already delivers (-count, value) order -- exactly the
        # canonical hot-list entry order.
        return HotListAnswer(
            k=k,
            entries=tuple(
                HotListEntry(value, float(count)) for value, count in top
            ),
        )

    def top_interval(
        self, answer: HotListAnswer, confidence: float = 0.95
    ) -> ConfidenceInterval | None:
        """Zero-width: full-histogram counts are exact."""
        if not answer.entries:
            return None
        count = answer.entries[0].estimated_count
        return ConfidenceInterval(count, count, confidence)
