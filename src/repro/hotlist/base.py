"""Common types for hot-list reporters."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

import numpy as np

if TYPE_CHECKING:
    from repro.estimators.intervals import ConfidenceInterval

__all__ = ["HotListAnswer", "HotListEntry", "HotListReporter", "kth_largest"]


@dataclass(frozen=True)
class HotListEntry:
    """One reported hot-list item."""

    value: int
    estimated_count: float


@dataclass(frozen=True)
class HotListAnswer:
    """An approximate answer to a hot-list query.

    ``entries`` is ordered by nonincreasing estimated count (ties
    broken toward smaller values, for determinism).  The paper's
    reporters may return fewer than ``k`` entries -- Section 5.2
    explains why that is inevitable for accurate reporting on
    near-uniform data.
    """

    k: int
    entries: tuple[HotListEntry, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[HotListEntry]:
        return iter(self.entries)

    def values(self) -> list[int]:
        """The reported values, most frequent first."""
        return [entry.value for entry in self.entries]

    def as_dict(self) -> dict[int, float]:
        """Map each reported value to its estimated count."""
        return {entry.value: entry.estimated_count for entry in self.entries}


def kth_largest(counts: Iterable[int], k: int) -> int:
    """The ``k``-th largest of the given counts, or 0 if fewer than
    ``k`` are present.

    This is the ``c_k`` of Section 5.1: with fewer than ``k``
    candidates the rank cut-off imposes no constraint, and the
    confidence cut-off alone governs reporting.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if isinstance(counts, np.ndarray):
        values = counts
    else:
        values = np.fromiter(counts, dtype=np.int64)
    if len(values) < k:
        return 0
    return int(np.partition(values, len(values) - k)[len(values) - k])


def order_entries(estimates: Mapping[int, float]) -> tuple[HotListEntry, ...]:
    """Sort value -> estimate into canonical hot-list order."""
    ordered = sorted(estimates.items(), key=lambda item: (-item[1], item[0]))
    return tuple(HotListEntry(value, estimate) for value, estimate in ordered)


class HotListReporter(ABC):
    """Base class for incremental hot-list algorithms.

    Subclasses wrap a maintained synopsis and implement
    :meth:`report`.  Stream ingestion is forwarded to the synopsis.
    """

    @abstractmethod
    def insert(self, value: int) -> None:
        """Observe one warehouse insert."""

    def insert_many(self, values) -> None:
        """Observe a sequence of warehouse inserts, in order."""
        for value in values:
            self.insert(int(value))

    def insert_array(self, values: np.ndarray) -> None:
        """Observe a bulk of warehouse inserts, in order.

        Routes through the wrapped synopsis's vectorized bulk path
        when the reporter exposes one as ``self.sample``; reporters
        with extra per-insert bookkeeping must override this method
        (every concrete reporter in this package does -- see the
        override audit in the columnar tests).
        """
        sample = getattr(self, "sample", None)
        bulk = getattr(sample, "insert_array", None)
        if bulk is not None:
            bulk(np.asarray(values))
            return
        self.insert_many(values.tolist())

    @abstractmethod
    def report(self, k: int) -> HotListAnswer:
        """Approximate the ``k`` most frequent values with counts."""

    def top_interval(
        self, answer: HotListAnswer, confidence: float = 0.95
    ) -> "ConfidenceInterval | None":
        """A confidence interval on the top entry's true frequency.

        ``None`` when the reporter makes no quantified claim (the
        base-class default) or the answer is empty.  Concrete
        reporters override this with the finite-sample constructions
        in :mod:`repro.hotlist.intervals`; the engine attaches the
        result to hot-list responses so calibration auditing can score
        them like scalar estimates.
        """
        del answer, confidence
        return None
