"""Hot lists from concise samples (Section 5.1).

The concise-sample reporter mirrors the traditional one but benefits
from the (often much) larger sample-size ``m'`` at equal footprint:
counts are scaled by ``n/m'`` and the rank cut-off ``c_k`` is computed
over the concise sample's pairs.  An optional sorted view trades update
time for O(k) reporting, as the paper notes.
"""

from __future__ import annotations

import numpy as np

from repro.core.concise import ConciseSample
from repro.core.thresholds import ThresholdPolicy
from repro.estimators.intervals import ConfidenceInterval
from repro.hotlist.base import HotListAnswer, HotListReporter
from repro.hotlist.intervals import scaled_top_interval
from repro.hotlist.kernels import (
    confident_from_columns,
    report_from_columns,
)
from repro.randkit.coins import CostCounters

__all__ = ["ConciseHotList"]


class ConciseHotList(HotListReporter):
    """Approximate hot lists over a maintained concise sample.

    Parameters
    ----------
    footprint_bound:
        ``m``, the concise sample's footprint bound.
    confidence_threshold:
        ``theta``; a value needs at least this many sample points to be
        reported (paper default 3).
    seed, policy, counters:
        As for :class:`~repro.core.concise.ConciseSample`.
    """

    def __init__(
        self,
        footprint_bound: int,
        *,
        confidence_threshold: int = 3,
        seed: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        if confidence_threshold < 1:
            raise ValueError("confidence_threshold must be at least 1")
        self.confidence_threshold = confidence_threshold
        self.footprint_bound = footprint_bound
        self.sample = ConciseSample(
            footprint_bound, seed=seed, policy=policy, counters=counters
        )

    @property
    def footprint(self) -> int:
        """Words used by the underlying concise sample."""
        return self.sample.footprint

    @property
    def counters(self) -> CostCounters:
        """The cost ledger of the underlying sample."""
        return self.sample.counters

    def insert(self, value: int) -> None:
        self.sample.insert(value)

    def insert_array(self, values: np.ndarray) -> None:
        self.sample.insert_array(values)

    def report(self, k: int) -> HotListAnswer:
        """Report up to ``k`` hot values (possibly fewer; Section 5.2)."""
        if k < 1:
            raise ValueError("k must be positive")
        if self.sample.sample_size == 0:
            return HotListAnswer(k=k)
        values, counts = self.sample.columnar_view()
        return report_from_columns(
            values,
            counts,
            k,
            confidence_cutoff=self.confidence_threshold,
            scale=self.sample.total_inserted / self.sample.sample_size,
        )

    def top_interval(
        self, answer: HotListAnswer, confidence: float = 0.95
    ) -> ConfidenceInterval | None:
        """Hoeffding bound on the top entry's true frequency."""
        return scaled_top_interval(self.sample, answer, confidence)

    def report_all_confident(self) -> HotListAnswer:
        """Every value reportable with confidence (Section 5.2's
        "report all pairs that can be reported with confidence"):
        no rank cut-off, just the theta threshold on sample counts.
        Theorem 7 bounds the false-positive and false-negative rates
        of exactly this report."""
        if self.sample.sample_size == 0:
            return HotListAnswer(k=0)
        values, counts = self.sample.columnar_view()
        return confident_from_columns(
            values,
            counts,
            confidence_cutoff=self.confidence_threshold,
            scale=self.sample.total_inserted / self.sample.sample_size,
        )
