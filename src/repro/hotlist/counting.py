"""Hot lists from counting samples (Sections 5.1-5.2).

A counting sample's counts are exact from the moment a value is
admitted, so instead of scaling, the reporter *adds* a compensation
``c-hat`` for the occurrences missed before admission.  Section 5.2
derives ``c-hat = tau (e-2)/(e-1) - 1 ~= 0.418 tau - 1``, chosen so the
augmented count is unbiased exactly at ``f_v = tau`` -- "the most
accurate when it matters most".  A value is reported when its raw count
reaches ``max(c_k, tau - c-hat)``; Theorem 8 turns that into the
guarantees validated by the tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.counting import CountingSample
from repro.core.thresholds import ThresholdPolicy
from repro.estimators.intervals import ConfidenceInterval
from repro.hotlist.base import HotListAnswer, HotListReporter
from repro.hotlist.intervals import counting_top_interval
from repro.hotlist.kernels import (
    confident_from_columns,
    report_from_columns,
)
from repro.randkit.coins import CostCounters
from repro.stats.theory import compensation_constant, counting_report_cutoff

__all__ = ["CountingHotList"]


class CountingHotList(HotListReporter):
    """Approximate hot lists over a maintained counting sample.

    Parameters mirror :class:`~repro.hotlist.concise.ConciseHotList`,
    except no integer confidence threshold is needed: the counting
    reporter's cut-off ``tau - c-hat`` plays that role and "need not be
    an integer" (Section 5.2).
    """

    def __init__(
        self,
        footprint_bound: int,
        *,
        seed: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        self.footprint_bound = footprint_bound
        self.sample = CountingSample(
            footprint_bound, seed=seed, policy=policy, counters=counters
        )

    @property
    def footprint(self) -> int:
        """Words used by the underlying counting sample."""
        return self.sample.footprint

    @property
    def counters(self) -> CostCounters:
        """The cost ledger of the underlying sample."""
        return self.sample.counters

    def insert(self, value: int) -> None:
        self.sample.insert(value)

    def insert_array(self, values: np.ndarray) -> None:
        self.sample.insert_array(values)

    def delete(self, value: int) -> None:
        """Counting samples also support warehouse deletes."""
        self.sample.delete(value)

    def compensation(self) -> float:
        """The additive compensation at the current threshold.

        Clamped at zero: a raw count never exceeds the true frequency,
        so a negative compensation (which the closed form yields for
        ``tau < (e-1)/(e-2)``) would only hurt.  At ``tau = 1`` all
        counts are exact and no compensation is applied.
        """
        return max(0.0, compensation_constant(self.sample.threshold))

    def report(self, k: int) -> HotListAnswer:
        """Report up to ``k`` hot values (possibly fewer; Section 5.2)."""
        if k < 1:
            raise ValueError("k must be positive")
        values, counts = self.sample.columnar_view()
        if counts.size == 0:
            return HotListAnswer(k=k)
        threshold = self.sample.threshold
        if threshold <= 1.0:
            # Exact mode: every inserted value is present with its
            # exact count; only the rank cut-off applies.
            return report_from_columns(values, counts, k)
        return report_from_columns(
            values,
            counts,
            k,
            confidence_cutoff=counting_report_cutoff(threshold),
            offset=self.compensation(),
        )

    def top_interval(
        self, answer: HotListAnswer, confidence: float = 0.95
    ) -> ConfidenceInterval | None:
        """One-sided geometric bound on the top entry's frequency."""
        return counting_top_interval(self.sample, answer, confidence)

    def report_all_confident(self) -> HotListAnswer:
        """Every value reportable with confidence (Section 5.2): no
        rank cut-off, just the ``tau - c-hat`` count threshold whose
        error rates Theorem 8 bounds."""
        values, counts = self.sample.columnar_view()
        if counts.size == 0:
            return HotListAnswer(k=0)
        threshold = self.sample.threshold
        if threshold <= 1.0:
            return confident_from_columns(values, counts)
        return confident_from_columns(
            values,
            counts,
            confidence_cutoff=counting_report_cutoff(threshold),
            offset=self.compensation(),
        )
