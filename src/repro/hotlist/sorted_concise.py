"""Concise-sample hot lists with O(k) reporting (paper Section 5.1).

"Alternatively, we can trade-off update time vs response time by
keeping the concise sample sorted by counts.  This allows for
reporting in O(k) time."  This reporter maintains, next to the concise
sample, a count-ordered index: a mapping from sample count to the set
of values at that count, plus a descending-sorted list of occupied
counts.  Increments move a value one bucket up in O(1) dict work plus
an O(log m) sorted insertion when a new count level appears; reporting
walks the top buckets and stops after ``k`` values.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.core.concise import ConciseSample
from repro.core.thresholds import ThresholdPolicy
from repro.estimators.intervals import ConfidenceInterval
from repro.hotlist.base import HotListAnswer, HotListReporter
from repro.hotlist.intervals import scaled_top_interval
from repro.hotlist.kernels import report_from_columns
from repro.randkit.coins import CostCounters

__all__ = ["SortedConciseHotList"]


class _CountIndex:
    """Values grouped by count, iterable in descending count order."""

    def __init__(self) -> None:
        self._buckets: dict[int, set[int]] = {}
        self._counts_ascending: list[int] = []

    def rebuild(self, counts: dict[int, int]) -> None:
        """Recompute the index from scratch (used after evictions)."""
        self._buckets = {}
        for value, count in counts.items():
            self._buckets.setdefault(count, set()).add(value)
        self._counts_ascending = sorted(self._buckets)

    def move(self, value: int, old_count: int, new_count: int) -> None:
        """Relocate a value between count levels (0 = absent)."""
        if old_count > 0:
            bucket = self._buckets[old_count]
            bucket.discard(value)
            if not bucket:
                del self._buckets[old_count]
                index = bisect.bisect_left(
                    self._counts_ascending, old_count
                )
                self._counts_ascending.pop(index)
        if new_count > 0:
            bucket = self._buckets.get(new_count)
            if bucket is None:
                self._buckets[new_count] = {value}
                bisect.insort(self._counts_ascending, new_count)
            else:
                bucket.add(value)

    def top(self, k: int, minimum_count: int):
        """Up to ``k`` (value, count) pairs with count >= minimum, in
        descending count order -- O(k) once positioned."""
        taken = 0
        for count in reversed(self._counts_ascending):
            if count < minimum_count:
                return
            for value in sorted(self._buckets[count]):
                if taken >= k:
                    return
                yield value, count
                taken += 1


class SortedConciseHotList(HotListReporter):
    """A concise-sample hot list with a count-sorted reporting index.

    Functionally identical to
    :class:`~repro.hotlist.concise.ConciseHotList` (same sample
    distribution and reporting rule) but ``report`` runs in O(k)
    instead of O(m), at the cost of index bookkeeping on each admitted
    insert -- the paper's stated trade-off.
    """

    def __init__(
        self,
        footprint_bound: int,
        *,
        confidence_threshold: int = 3,
        seed: int | None = None,
        policy: ThresholdPolicy | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        if confidence_threshold < 1:
            raise ValueError("confidence_threshold must be at least 1")
        self.confidence_threshold = confidence_threshold
        self.footprint_bound = footprint_bound
        self.sample = ConciseSample(
            footprint_bound, seed=seed, policy=policy, counters=counters
        )
        self._index = _CountIndex()
        self._last_raises = 0

    @property
    def footprint(self) -> int:
        """Words of the underlying sample (the index mirrors it)."""
        return self.sample.footprint

    @property
    def counters(self) -> CostCounters:
        """The cost ledger of the underlying sample."""
        return self.sample.counters

    def _sync_insert(self, value: int, admitted: bool) -> None:
        if not admitted:
            return
        if self.sample.counters.threshold_raises != self._last_raises:
            # Evictions rearranged counts wholesale: rebuild.
            self._last_raises = self.sample.counters.threshold_raises
            self._index.rebuild(self.sample.as_dict())
            return
        new_count = self.sample.count_of(value)
        self._index.move(value, new_count - 1, new_count)

    def insert(self, value: int) -> None:
        admitted = self.sample.insert(value)
        self._sync_insert(value, admitted)

    def insert_array(self, values: np.ndarray) -> None:
        """Bulk insertion via the sample's vectorized path.

        The skip-ahead bulk pipeline does not report which values were
        admitted, so instead of feeding the stream per element the
        whole batch goes to the sample and the count index is rebuilt
        once afterwards -- O(m) index work per batch against the
        vectorized O(n) stream work, preserving O(k) reporting.
        """
        self.sample.insert_array(np.asarray(values))
        self._last_raises = self.sample.counters.threshold_raises
        self._index.rebuild(self.sample.as_dict())

    def report(self, k: int) -> HotListAnswer:
        """Report up to ``k`` hot values in O(k)."""
        if k < 1:
            raise ValueError("k must be positive")
        if self.sample.sample_size == 0:
            return HotListAnswer(k=k)
        candidates = list(
            self._index.top(k, self.confidence_threshold)
        )
        if not candidates:
            return HotListAnswer(k=k)
        # The index walk already applied both cut-offs; the kernel
        # only orders the <= k candidates and forms the estimates.
        values = np.asarray([value for value, _ in candidates], np.int64)
        counts = np.asarray([count for _, count in candidates], np.int64)
        return report_from_columns(
            values,
            counts,
            k,
            scale=self.sample.total_inserted / self.sample.sample_size,
        )

    def top_interval(
        self, answer: HotListAnswer, confidence: float = 0.95
    ) -> ConfidenceInterval | None:
        """Hoeffding bound on the top entry's true frequency."""
        return scaled_top_interval(self.sample, answer, confidence)

    def check_index(self) -> None:
        """Validate the index against the sample (test hook)."""
        expected = _CountIndex()
        expected.rebuild(self.sample.as_dict())
        actual_all = list(self._index.top(10**9, 1))
        expected_all = list(expected.top(10**9, 1))
        if actual_all != expected_all:
            raise AssertionError("sorted index out of sync with sample")
