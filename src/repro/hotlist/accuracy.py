"""Scoring of approximate hot lists against exact ground truth.

The Figures 4-6 experiments judge each algorithm by which of the truly
most frequent values it reports (false negatives appear as gaps, false
positives are "tacked on at the right"), and by the error of the
reported counts.  :func:`evaluate_hotlist` computes all of those
quantities for one answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hotlist.base import HotListAnswer
from repro.stats.frequency import FrequencyTable
from repro.stats.metrics import precision_recall

__all__ = ["HotListEvaluation", "evaluate_hotlist", "head_count_error"]


def head_count_error(
    answer: HotListAnswer,
    truth: "FrequencyTable",
    head_k: int,
) -> float:
    """Mean relative count error over the exact top-``head_k`` values.

    A value the answer misses counts as full (1.0) error, so an
    algorithm cannot look good by reporting nothing.  This is the
    head-of-the-ranking comparison the paper's figures make visually;
    :func:`evaluate_hotlist`'s ``mean_count_error`` instead averages
    over whatever was reported (including deep-tail values whose
    relative errors are naturally enormous).
    """
    if head_k < 1:
        raise ValueError("head_k must be positive")
    estimates = answer.as_dict()
    errors = []
    for value, count in truth.top_k(head_k):
        if value in estimates:
            errors.append(abs(estimates[value] - count) / count)
        else:
            errors.append(1.0)
    return sum(errors) / len(errors) if errors else 0.0


@dataclass(frozen=True)
class HotListEvaluation:
    """Accuracy summary of one hot-list answer.

    Attributes
    ----------
    k:
        The requested hot-list length.
    reported:
        Number of values the algorithm reported (may be below ``k``).
    true_positives:
        Reported values that belong to the exact top-``k``.
    false_positives:
        Reported values outside the exact top-``k``.
    false_negatives:
        Exact top-``k`` values the answer missed.
    precision, recall:
        Set precision/recall against the exact top-``k``.
    top_prefix_correct:
        Length of the longest prefix of the exact ranking that is
        entirely reported ("accurately reported the 15 most frequent
        values" in the paper's Figure 4 discussion).
    mean_count_error:
        Mean relative error of the estimated counts over reported
        values that truly occur (|est - true| / true).
    max_count_error:
        Worst such relative error (0.0 when nothing qualifies).
    """

    k: int
    reported: int
    true_positives: int
    false_positives: int
    false_negatives: int
    precision: float
    recall: float
    top_prefix_correct: int
    mean_count_error: float
    max_count_error: float


def evaluate_hotlist(
    answer: HotListAnswer,
    truth: FrequencyTable,
    k: int | None = None,
) -> HotListEvaluation:
    """Score an approximate hot list against an exact frequency table.

    ``k`` defaults to the answer's own ``k``.  Ties in the exact
    ranking are broken toward smaller values, matching
    :meth:`FrequencyTable.top_k`.
    """
    if k is None:
        k = answer.k
    if k < 1:
        raise ValueError("k must be positive")
    true_top = truth.top_k(k)
    true_values = [value for value, _ in true_top]
    reported_values = answer.values()
    precision, recall = precision_recall(reported_values, true_values)
    reported_set = set(reported_values)
    hits = len(reported_set & set(true_values))

    prefix = 0
    for value in true_values:
        if value in reported_set:
            prefix += 1
        else:
            break

    errors = []
    for entry in answer.entries:
        true_count = truth.count(entry.value)
        if true_count > 0:
            errors.append(
                abs(entry.estimated_count - true_count) / true_count
            )

    return HotListEvaluation(
        k=k,
        reported=len(reported_values),
        true_positives=hits,
        false_positives=len(reported_set) - hits,
        false_negatives=len(true_values) - hits,
        precision=precision,
        recall=recall,
        top_prefix_correct=prefix,
        mean_count_error=sum(errors) / len(errors) if errors else 0.0,
        max_count_error=max(errors) if errors else 0.0,
    )
