"""Frequency-moment estimation and the Theorem-4 gain predictor.

``F_k = sum_j n_j^k`` appears twice in the paper: as the quantity the
AMS sketches approximate, and as the driver of the concise-sample gain
formula (Theorem 4).  This module estimates moments from uniform
samples and exposes the gain predictor in terms a sample maintainer can
use online.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.stats.theory import concise_gain_expected

__all__ = ["estimate_frequency_moment", "sample_size_gain"]


def estimate_frequency_moment(
    points: np.ndarray, k: float, population: int
) -> float:
    """Estimate ``F_k`` of the relation from uniform sample points.

    Scales each sampled value's sample count by ``n/m`` to estimate its
    relation count, then sums ``count^k`` over the *estimated distinct
    support*: values unseen in the sample contribute 0.  Exact for
    ``k = 1`` (returns ``n``); increasingly skew-dominated for larger
    ``k``, where the heavy values a sample does capture carry almost
    all of the moment.
    """
    m = len(points)
    if m == 0:
        raise ValueError("cannot estimate from an empty sample")
    if population < 0:
        raise ValueError("population must be non-negative")
    scale = population / m
    _, counts = np.unique(points, return_counts=True)
    return float(np.sum((counts * scale) ** k))


def sample_size_gain(
    sample_counts: Counter[int] | dict[int, int],
    sample_size: int,
) -> float:
    """Predicted concise-over-traditional gain from sample counts.

    Applies Theorem 4's direct form using the sample's own empirical
    distribution as a plug-in for the data distribution: the expected
    number of words a concise representation of a fresh ``sample_size``
    -point sample would save.  Useful for capacity planning -- deciding
    whether a concise sample is worth it for a given attribute.
    """
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    counts = np.fromiter(
        sample_counts.values(), np.int64, len(sample_counts)
    )
    frequencies = counts[counts > 0].tolist()
    if not frequencies:
        return 0.0
    return concise_gain_expected(frequencies, sample_size)
