"""Predicate selectivity estimation.

Selectivity -- the fraction of rows matching a predicate -- drives the
query-optimizer use case the paper mentions ("techniques for fast
approximate answers can also be used ... within the query optimizer to
estimate plan costs").  Estimation works from sample points or from a
histogram synopsis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.estimators.intervals import ConfidenceInterval, clt_interval

__all__ = ["Predicate", "SelectivityEstimate", "estimate_selectivity"]


@dataclass(frozen=True)
class Predicate:
    """A simple single-attribute predicate: equality or closed range.

    Exactly one form is used: set ``equals`` for ``attr = v``, or
    ``low``/``high`` (either may be ``None`` for open ends) for range
    predicates.
    """

    equals: int | None = None
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if self.equals is not None and (
            self.low is not None or self.high is not None
        ):
            raise ValueError("predicate is either equality or range")
        if (
            self.equals is None
            and self.low is None
            and self.high is None
        ):
            raise ValueError("empty predicate")
        if (
            self.low is not None
            and self.high is not None
            and self.high < self.low
        ):
            raise ValueError("range upper bound below lower bound")

    def mask(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of matching points."""
        if self.equals is not None:
            return points == self.equals
        mask = np.ones(len(points), dtype=bool)
        if self.low is not None:
            mask &= points >= self.low
        if self.high is not None:
            mask &= points <= self.high
        return mask

    def __str__(self) -> str:
        if self.equals is not None:
            return f"= {self.equals}"
        low = "-inf" if self.low is None else str(self.low)
        high = "+inf" if self.high is None else str(self.high)
        return f"in [{low}, {high}]"


@dataclass(frozen=True)
class SelectivityEstimate:
    """A selectivity estimate in ``[0, 1]`` with its interval."""

    selectivity: float
    interval: ConfidenceInterval
    sample_size: int


def estimate_selectivity(
    points: np.ndarray,
    predicate: Predicate,
    confidence: float = 0.95,
) -> SelectivityEstimate:
    """Estimate a predicate's selectivity from uniform sample points."""
    m = len(points)
    if m == 0:
        raise ValueError("cannot estimate from an empty sample")
    proportion = float(predicate.mask(points).mean())
    standard_error = math.sqrt(
        max(proportion * (1.0 - proportion), 0.0) / m
    )
    interval = clt_interval(proportion, standard_error, confidence)
    clipped = ConfidenceInterval(
        max(0.0, interval.low), min(1.0, interval.high), confidence
    )
    return SelectivityEstimate(proportion, clipped, m)
