"""Sampling-based estimators over (concise) samples.

"A concise sample ... can be used as a uniform random sample in any
sampling-based technique for providing approximate query answers"
(Section 3).  These estimators consume sample points -- from a
traditional reservoir, from a concise sample's expansion, or from a
converted counting sample -- and return estimates with the confidence
intervals the approximate answer engine attaches to its responses.
Because concise samples provide more sample points at equal footprint,
every estimator here gets tighter intervals from them.
"""

from repro.estimators.aggregates import (
    estimate_average,
    estimate_count,
    estimate_sum,
)
from repro.estimators.distinct import (
    first_order_jackknife,
    guaranteed_error_estimator,
)
from repro.estimators.intervals import (
    ConfidenceInterval,
    clt_interval,
    empirical_bernstein_interval,
    hoeffding_count_interval,
    normal_quantile,
    wilson_interval,
)
from repro.estimators.joins import (
    join_size_from_hotlists,
    join_size_from_samples,
)
from repro.estimators.moments import (
    estimate_frequency_moment,
    sample_size_gain,
)
from repro.estimators.selectivity import (
    Predicate,
    estimate_selectivity,
)

__all__ = [
    "ConfidenceInterval",
    "Predicate",
    "clt_interval",
    "empirical_bernstein_interval",
    "estimate_average",
    "estimate_count",
    "estimate_frequency_moment",
    "estimate_selectivity",
    "estimate_sum",
    "first_order_jackknife",
    "guaranteed_error_estimator",
    "hoeffding_count_interval",
    "join_size_from_hotlists",
    "join_size_from_samples",
    "normal_quantile",
    "sample_size_gain",
    "wilson_interval",
]
