"""COUNT / SUM / AVG estimation from uniform sample points.

Each estimator takes the expanded sample points (for a concise sample,
:meth:`~repro.core.concise.ConciseSample.sample_points`), an optional
predicate over values, and the population size ``n``, and returns an
estimate with a CLT confidence interval.  More sample points mean
``1/sqrt(m')`` narrower intervals -- the concrete payoff of concise
samples for aggregation queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.estimators.intervals import (
    ConfidenceInterval,
    clt_interval,
    empirical_bernstein_interval,
    hoeffding_count_interval,
    wilson_interval,
)

__all__ = [
    "AggregateEstimate",
    "estimate_average",
    "estimate_count",
    "estimate_sum",
]


@dataclass(frozen=True)
class AggregateEstimate:
    """An aggregate estimate with its confidence interval."""

    value: float
    interval: ConfidenceInterval
    sample_size: int


def _predicate_mask(
    points: np.ndarray, predicate: Callable[[np.ndarray], np.ndarray] | None
) -> np.ndarray:
    if predicate is None:
        return np.ones(len(points), dtype=bool)
    mask = np.asarray(predicate(points), dtype=bool)
    if mask.shape != points.shape:
        raise ValueError("predicate must return one boolean per point")
    return mask


def estimate_count(
    points: np.ndarray,
    population: int,
    predicate: Callable[[np.ndarray], np.ndarray] | None = None,
    confidence: float = 0.95,
    *,
    conservative: bool = False,
) -> AggregateEstimate:
    """Estimate how many of the ``population`` rows match the predicate.

    The estimator is ``population * (matching fraction)``; the interval
    is the CLT interval of the Bernoulli proportion, except at the
    degenerate proportions 0 and 1 where the CLT interval collapses to
    zero width (the classic Wald failure) -- there the Wilson score
    interval is used so "no sample point matched" is reported with
    honest uncertainty rather than false certainty.  A ``None``
    predicate is COUNT(*): the engine knows the population exactly.

    With ``conservative=True`` the interval is the distribution-free
    Hoeffding bound instead: wider, but guaranteed at any finite
    sample size rather than asymptotically -- what calibration
    auditing checks against.
    """
    m = len(points)
    if m == 0:
        raise ValueError("cannot estimate from an empty sample")
    if population < 0:
        raise ValueError("population must be non-negative")
    if predicate is None:
        exact = ConfidenceInterval(
            float(population), float(population), confidence
        )
        return AggregateEstimate(float(population), exact, m)
    mask = _predicate_mask(points, predicate)
    matching = int(mask.sum())
    proportion = matching / m
    estimate = population * proportion
    if conservative:
        return AggregateEstimate(
            float(estimate),
            hoeffding_count_interval(matching, m, population, confidence),
            m,
        )
    if matching == 0 or matching == m:
        wilson = wilson_interval(matching, m, confidence)
        interval = ConfidenceInterval(
            wilson.low * population, wilson.high * population, confidence
        )
        return AggregateEstimate(float(estimate), interval, m)
    standard_error = (
        population * math.sqrt(max(proportion * (1 - proportion), 0.0) / m)
    )
    return AggregateEstimate(
        float(estimate),
        clt_interval(float(estimate), float(standard_error), confidence),
        m,
    )


def estimate_sum(
    points: np.ndarray,
    population: int,
    predicate: Callable[[np.ndarray], np.ndarray] | None = None,
    confidence: float = 0.95,
    *,
    conservative: bool = False,
) -> AggregateEstimate:
    """Estimate the sum of the attribute over matching rows.

    The per-sample contribution is ``value * 1[predicate]``; scaling
    its mean by ``population`` gives an unbiased sum estimate.

    With ``conservative=True`` the interval is the empirical Bernstein
    bound over the contributions (range taken from the observed sample
    extremes): finite-sample valid rather than asymptotic.
    """
    m = len(points)
    if m == 0:
        raise ValueError("cannot estimate from an empty sample")
    if population < 0:
        raise ValueError("population must be non-negative")
    mask = _predicate_mask(points, predicate)
    contributions = np.where(mask, points.astype(np.float64), 0.0)
    mean = contributions.mean()
    estimate = population * mean
    if conservative:
        variance = float(contributions.var(ddof=1)) if m > 1 else 0.0
        value_range = float(contributions.max() - contributions.min())
        bernstein = empirical_bernstein_interval(
            float(mean), variance, value_range, m, confidence
        )
        interval = ConfidenceInterval(
            bernstein.low * population,
            bernstein.high * population,
            confidence,
        )
        return AggregateEstimate(float(estimate), interval, m)
    spread = contributions.std(ddof=1) if m > 1 else 0.0
    standard_error = population * spread / math.sqrt(m)
    return AggregateEstimate(
        float(estimate),
        clt_interval(float(estimate), float(standard_error), confidence),
        m,
    )


def estimate_average(
    points: np.ndarray,
    predicate: Callable[[np.ndarray], np.ndarray] | None = None,
    confidence: float = 0.95,
    *,
    conservative: bool = False,
) -> AggregateEstimate:
    """Estimate the average attribute value over matching rows.

    Uses only the matching sample points; raises :class:`ValueError`
    when none match (the sample carries no information about the
    average then -- the caller should fall back to the exact path).

    With ``conservative=True`` the interval is the empirical Bernstein
    bound over the matching points: finite-sample valid rather than
    asymptotic.
    """
    if len(points) == 0:
        raise ValueError("cannot estimate from an empty sample")
    mask = _predicate_mask(points, predicate)
    matching = points[mask].astype(np.float64)
    m = len(matching)
    if m == 0:
        raise ValueError("no sample point matches the predicate")
    mean = matching.mean()
    if conservative:
        variance = float(matching.var(ddof=1)) if m > 1 else 0.0
        value_range = float(matching.max() - matching.min())
        return AggregateEstimate(
            float(mean),
            empirical_bernstein_interval(
                float(mean), variance, value_range, m, confidence
            ),
            m,
        )
    spread = matching.std(ddof=1) if m > 1 else 0.0
    standard_error = spread / math.sqrt(m)
    return AggregateEstimate(
        float(mean),
        clt_interval(float(mean), float(standard_error), confidence),
        m,
    )
