"""Equi-join size estimation from samples and hot lists.

Hot lists "have been shown to be quite useful for estimating predicate
selectivities and join sizes" (paper Section 1.2, citing [Ioa93, IC93,
IP95]): the join size ``|R join S|  =  sum_v f_R(v) * f_S(v)`` is
dominated by the most frequent values, which are exactly what a hot
list captures.  Two estimators are provided:

* :func:`join_size_from_hotlists` -- the high-biased approach: exact
  products over the hot values from both sides, a uniformity
  correction for the residuals.
* :func:`join_size_from_samples` -- the pure sampling approach:
  cross-match two uniform samples and scale by ``(n_R/m_R)(n_S/m_S)``,
  with the standard correction; works without hot lists but has much
  higher variance on skewed data, which is the paper's point.
"""

from __future__ import annotations

import numpy as np

from repro.hotlist.base import HotListAnswer
from repro.synopses.histogram_highbiased import HighBiasedHistogram

__all__ = ["join_size_from_hotlists", "join_size_from_samples"]


def join_size_from_hotlists(
    left: HotListAnswer,
    right: HotListAnswer,
    left_total: int,
    right_total: int,
    left_distinct: float,
    right_distinct: float,
) -> float:
    """Estimate ``|R join S|`` from two hot-list answers.

    ``*_total`` are the relation sizes and ``*_distinct`` the distinct
    counts (exact or from a sketch).  Builds a high-biased histogram
    per side and combines them (hot-hot products exact-ish,
    residual-residual under uniformity).
    """
    if left_total < 0 or right_total < 0:
        raise ValueError("relation sizes must be non-negative")
    left_histogram = HighBiasedHistogram.from_hotlist(
        left, left_total, left_distinct
    )
    right_histogram = HighBiasedHistogram.from_hotlist(
        right, right_total, right_distinct
    )
    return left_histogram.estimate_join_size(right_histogram)


def join_size_from_samples(
    left_points: np.ndarray,
    right_points: np.ndarray,
    left_total: int,
    right_total: int,
) -> float:
    """Estimate ``|R join S|`` by cross-matching two uniform samples.

    For samples of sizes ``m_R, m_S``:
    ``estimate = (n_R n_S / (m_R m_S)) * sum_v c_R(v) c_S(v)`` where
    ``c`` are sample counts -- the unbiased cross-product estimator.
    Zero when the samples share no value, which on skewed data makes
    the estimator wildly variable unless the samples are large; concise
    samples help exactly by being larger at equal footprint.
    """
    m_left, m_right = len(left_points), len(right_points)
    if m_left == 0 or m_right == 0:
        raise ValueError("cannot estimate from an empty sample")
    if left_total < 0 or right_total < 0:
        raise ValueError("relation sizes must be non-negative")
    left_values, left_counts = np.unique(left_points, return_counts=True)
    right_values, right_counts = np.unique(right_points, return_counts=True)
    _, left_index, right_index = np.intersect1d(
        left_values, right_values, assume_unique=True, return_indices=True
    )
    cross = int(left_counts[left_index] @ right_counts[right_index])
    scale = (left_total / m_left) * (right_total / m_right)
    return cross * scale
