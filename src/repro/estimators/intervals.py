"""Confidence intervals for sampling-based estimates.

The approximate answer engine returns "an approximate answer and an
accuracy measure (e.g., a 95% confidence interval for numerical
answers)" (Section 1).  Two interval families are provided: the usual
central-limit intervals, and distribution-free Hoeffding intervals for
proportions/counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ConfidenceInterval",
    "clt_interval",
    "empirical_bernstein_interval",
    "hoeffding_count_interval",
    "normal_quantile",
    "wilson_interval",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """An interval ``[low, high]`` holding with the stated confidence."""

    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        """The interval width."""
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        """The interval midpoint."""
        return (self.low + self.high) / 2.0

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def normal_quantile(p: float) -> float:
    """The standard normal quantile (inverse CDF) at ``p``.

    Acklam's rational approximation -- relative error below 1.15e-9
    across the open unit interval -- so the library needs no scipy at
    runtime.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly between 0 and 1")
    # Coefficients for the central and tail regions.
    a = (
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00,
    )
    b = (
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01,
    )
    c = (
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00, 2.938163982698783e+00,
    )
    d = (
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00,
    )
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
            + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def clt_interval(
    estimate: float,
    standard_error: float,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """A central-limit interval ``estimate +- z * standard_error``."""
    if standard_error < 0:
        raise ValueError("standard_error must be non-negative")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = normal_quantile(0.5 + confidence / 2.0)
    margin = z * standard_error
    return ConfidenceInterval(
        estimate - margin, estimate + margin, confidence
    )


def wilson_interval(
    matching: int,
    sample_size: int,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """The Wilson score interval for a Bernoulli proportion.

    Better-behaved than the Wald/CLT interval at extreme proportions
    and small samples (it never escapes ``[0, 1]`` and stays informative
    when ``matching`` is 0 or ``sample_size``), making it the right
    default for selectivities of rare predicates.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be positive")
    if not 0 <= matching <= sample_size:
        raise ValueError("matching must be within the sample size")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = normal_quantile(0.5 + confidence / 2.0)
    n = sample_size
    proportion = matching / n
    denominator = 1.0 + z * z / n
    centre = (proportion + z * z / (2 * n)) / denominator
    margin = (
        z
        * math.sqrt(
            proportion * (1 - proportion) / n + z * z / (4 * n * n)
        )
        / denominator
    )
    return ConfidenceInterval(
        max(0.0, centre - margin), min(1.0, centre + margin), confidence
    )


def hoeffding_count_interval(
    matching: int,
    sample_size: int,
    population: int,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """A distribution-free interval for a scaled count estimate.

    With ``matching`` of ``sample_size`` sample points satisfying a
    predicate, the count estimate is ``population * matching /
    sample_size``; Hoeffding's inequality bounds the proportion's
    deviation by ``sqrt(ln(2/delta) / (2 sample_size))`` with
    probability ``1 - delta``.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be positive")
    if not 0 <= matching <= sample_size:
        raise ValueError("matching must be within the sample size")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    proportion = matching / sample_size
    delta = 1.0 - confidence
    margin = math.sqrt(math.log(2.0 / delta) / (2.0 * sample_size))
    return ConfidenceInterval(
        max(0.0, (proportion - margin)) * population,
        min(1.0, (proportion + margin)) * population,
        confidence,
    )


def empirical_bernstein_interval(
    mean: float,
    variance: float,
    value_range: float,
    sample_size: int,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """A distribution-free interval around a bounded-sample mean.

    The Maurer-Pontil empirical Bernstein bound: for ``m`` i.i.d.
    samples taking values in an interval of width ``R`` with empirical
    variance ``V``, the sample mean deviates from the true mean by at
    most ``sqrt(2 V ln(3/delta) / m) + 3 R ln(3/delta) / m`` with
    probability ``1 - delta``.  Unlike the CLT interval this holds at
    any finite ``m``, so empirical coverage can never dip below the
    claimed confidence -- the property calibration auditing needs.
    Unlike plain Hoeffding it adapts to the observed variance, so for
    concentrated data it is not hopelessly wide.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be positive")
    if variance < 0:
        raise ValueError("variance must be non-negative")
    if value_range < 0:
        raise ValueError("value_range must be non-negative")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    log_term = math.log(3.0 / (1.0 - confidence))
    margin = (
        math.sqrt(2.0 * variance * log_term / sample_size)
        + 3.0 * value_range * log_term / sample_size
    )
    return ConfidenceInterval(mean - margin, mean + margin, confidence)
