"""Sample-based distinct-value estimation [HNSS95].

Estimating the number of distinct values of an attribute from a sample
is notoriously hard (the paper cites [HNSS95] among the alternatives to
sketches).  Two standard estimators are provided; both consume the
*frequency profile* of the sample -- how many values appear exactly
once, twice, ... -- which a concise sample stores explicitly in its
``(value, count)`` pairs, no expansion needed.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

__all__ = [
    "first_order_jackknife",
    "frequency_profile",
    "guaranteed_error_estimator",
]


def frequency_profile(points: np.ndarray) -> dict[int, int]:
    """``f_i``: how many distinct values occur exactly ``i`` times."""
    _, point_counts = np.unique(points, return_counts=True)
    sizes, frequencies = np.unique(point_counts, return_counts=True)
    return dict(zip(sizes.tolist(), frequencies.tolist(), strict=True))


def _profile_stats(profile: Mapping[int, int]) -> tuple[int, int, int]:
    if not profile:
        return 0, 0, 0
    sizes = np.fromiter(profile.keys(), np.int64, len(profile))
    frequencies = np.fromiter(profile.values(), np.int64, len(profile))
    distinct = int(frequencies.sum())
    sample_size = int(sizes @ frequencies)
    singletons = int(profile.get(1, 0))
    return distinct, sample_size, singletons


def first_order_jackknife(
    profile: Mapping[int, int], population: int
) -> float:
    """The first-order jackknife estimator of the distinct count.

    ``D_hat = d / (1 - f_1 (1 - m/n) / m)`` with ``d`` distinct values
    in the sample, ``f_1`` sample singletons, ``m`` the sample size and
    ``n`` the relation size.  Biased low on skewed data but cheap and
    robust.
    """
    distinct, sample_size, singletons = _profile_stats(profile)
    if sample_size == 0:
        return 0.0
    if population < sample_size:
        raise ValueError("population must be at least the sample size")
    shrink = 1.0 - singletons * (1.0 - sample_size / population) / sample_size
    if shrink <= 0.0:
        # All-singleton sample from a huge population: the jackknife
        # degenerates; fall back to the birthday-style upper estimate.
        return float(population)
    return distinct / shrink


def guaranteed_error_estimator(
    profile: Mapping[int, int], population: int
) -> float:
    """The GEE estimator of Charikar et al., rooted in [HNSS95]'s
    hybrid: ``D_hat = sqrt(n/m) * f_1 + sum_{i>=2} f_i``.

    Scales up only the sample singletons (values plausibly unseen in
    proportion) and achieves the best possible worst-case error ratio
    ``O(sqrt(n/m))`` for sample-based estimation.
    """
    distinct, sample_size, singletons = _profile_stats(profile)
    if sample_size == 0:
        return 0.0
    if population < sample_size:
        raise ValueError("population must be at least the sample size")
    repeated = distinct - singletons
    return math.sqrt(population / sample_size) * singletons + repeated
