"""Exact statistics and the paper's closed-form analysis.

:mod:`repro.stats.frequency` computes exact frequency statistics of a
concrete stream (the ground truth every experiment compares against);
:mod:`repro.stats.theory` implements the closed forms of Theorems 3, 4,
6, 7 and 8, including the counting-sample compensation constant; and
:mod:`repro.stats.metrics` provides the error metrics used to score
approximate answers.
"""

from repro.stats.frequency import (
    FrequencyTable,
    distinct_count,
    frequency_moment,
    mode_frequency,
    top_k,
)
from repro.stats.metrics import (
    mean_absolute_error,
    mean_relative_error,
    precision_recall,
    rank_displacement,
)
from repro.stats.theory import (
    compensation_constant,
    concise_gain_expected,
    counting_false_negative_bound,
    counting_report_probability,
    expected_distinct_in_sample,
    exponential_sample_size_bound,
    hotlist_false_positive_bound,
    hotlist_report_probability,
)

__all__ = [
    "FrequencyTable",
    "compensation_constant",
    "concise_gain_expected",
    "counting_false_negative_bound",
    "counting_report_probability",
    "distinct_count",
    "expected_distinct_in_sample",
    "exponential_sample_size_bound",
    "frequency_moment",
    "hotlist_false_positive_bound",
    "hotlist_report_probability",
    "mean_absolute_error",
    "mean_relative_error",
    "mode_frequency",
    "precision_recall",
    "rank_displacement",
    "top_k",
]
