"""Error metrics for scoring approximate answers against ground truth."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = [
    "mean_absolute_error",
    "mean_relative_error",
    "precision_recall",
    "rank_displacement",
]


def mean_absolute_error(
    estimates: Mapping[int, float], truth: Mapping[int, float]
) -> float:
    """Mean ``|estimate - truth|`` over the union of keys.

    Missing estimates count as 0 (a completely unreported value is an
    error equal to its true count), and estimated values with no true
    occurrence count their full estimate as error.
    """
    keys = set(estimates) | set(truth)
    if not keys:
        return 0.0
    total = sum(
        abs(estimates.get(key, 0.0) - truth.get(key, 0.0)) for key in keys
    )
    return total / len(keys)


def mean_relative_error(
    estimates: Mapping[int, float], truth: Mapping[int, float]
) -> float:
    """Mean ``|estimate - truth| / truth`` over keys present in truth.

    Keys absent from ``truth`` are ignored (relative error is undefined
    for a zero denominator); use :func:`precision_recall` to penalise
    false positives.
    """
    keys = [key for key in truth if truth[key]]
    if not keys:
        return 0.0
    total = sum(
        abs(estimates.get(key, 0.0) - truth[key]) / abs(truth[key])
        for key in keys
    )
    return total / len(keys)


def precision_recall(
    reported: Iterable[int], relevant: Iterable[int]
) -> tuple[float, float]:
    """Set precision and recall of reported values vs the relevant set.

    Empty edge cases follow the usual convention: precision of an empty
    report is 1.0 (nothing wrong was said), recall of an empty relevant
    set is 1.0 (nothing was missed).
    """
    reported_set = set(reported)
    relevant_set = set(relevant)
    hits = len(reported_set & relevant_set)
    precision = hits / len(reported_set) if reported_set else 1.0
    recall = hits / len(relevant_set) if relevant_set else 1.0
    return precision, recall


def rank_displacement(
    reported_order: Sequence[int], true_order: Sequence[int]
) -> float:
    """Mean absolute rank error of reported values that are truly ranked.

    For each reported value that appears in the true ranking, take
    ``|reported rank - true rank|``; average over those values.  Values
    the truth does not rank are ignored here (they are false positives,
    scored by :func:`precision_recall`).
    """
    true_rank = {value: rank for rank, value in enumerate(true_order)}
    displacements = [
        abs(rank - true_rank[value])
        for rank, value in enumerate(reported_order)
        if value in true_rank
    ]
    if not displacements:
        return 0.0
    return sum(displacements) / len(displacements)
