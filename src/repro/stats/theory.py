"""Closed forms from the paper's analysis (Theorems 3, 4, 6, 7, 8).

These functions give the analytical predictions that the benchmark
suite validates empirically:

* Theorem 3 -- concise sample-size lower bound on exponential data.
* Theorem 4 -- the expected sample-size *gain* of a concise sample over
  a traditional sample, as a function of the frequency moments.
* Theorems 6-8 -- inclusion and reporting guarantees for counting and
  concise samples in hot-list queries, and the counting-sample
  compensation constant ``c-hat``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "compensation_constant",
    "concise_gain_expected",
    "concise_gain_via_moments",
    "counting_count_error_bound",
    "counting_false_negative_bound",
    "counting_inclusion_probability",
    "counting_miss_quantile",
    "counting_report_cutoff",
    "counting_report_probability",
    "expected_distinct_in_sample",
    "exponential_sample_size_bound",
    "hotlist_false_positive_bound",
    "hotlist_report_probability",
]

# (e - 2) / (e - 1): the per-threshold coefficient of the compensation
# constant derived in Section 5.2 ("c-hat = 0.418 tau - 1").
_COMPENSATION_COEFFICIENT = (math.e - 2.0) / (math.e - 1.0)


def exponential_sample_size_bound(alpha: float, footprint: int) -> float:
    """Theorem 3: expected sample-size of a concise sample is at least
    ``alpha ** (footprint / 2)`` on the exponential distribution
    ``Pr(v = i) = alpha^-i (alpha - 1)``.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1")
    if footprint < 2:
        raise ValueError("footprint must be at least 2")
    return alpha ** (footprint / 2.0)


def _as_frequency_array(frequencies: Iterable[int]) -> np.ndarray:
    array = np.asarray(list(frequencies), dtype=np.float64)
    if array.size and array.min() <= 0:
        raise ValueError("frequencies must be positive")
    return array


def expected_distinct_in_sample(
    frequencies: Iterable[int], sample_size: int
) -> float:
    """Expected distinct values in a uniform sample of ``sample_size``.

    From the proof of Theorem 4:
    ``E[X] = sum_j (1 - (1 - p_j)^m)`` with ``p_j = n_j / n``.
    The sample is drawn with replacement, matching the analysis.
    """
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    array = _as_frequency_array(frequencies)
    if array.size == 0:
        return 0.0
    probabilities = array / array.sum()
    return float(np.sum(1.0 - (1.0 - probabilities) ** sample_size))


def concise_gain_expected(
    frequencies: Iterable[int], sample_size: int
) -> float:
    """Theorem 4 (direct form): expected gain of a concise sample.

    The gain is ``m - E[number of distinct values in the sample]`` --
    the expected number of words a concise representation saves
    relative to a traditional sample of ``m`` points, i.e. the room
    available for extra sample points at equal footprint.
    """
    return sample_size - expected_distinct_in_sample(frequencies, sample_size)


def concise_gain_via_moments(
    frequencies: Sequence[int], sample_size: int
) -> float:
    """Theorem 4 (moment form):
    ``E[gain] = sum_{k=2..m} (-1)^k C(m, k) F_k / n^k``.

    The alternating sum is evaluated in exact integer/rational
    arithmetic via :mod:`fractions`-free scaling: terms are computed as
    exact integers ``C(m, k) * F_k * n^(m-k)`` over the common
    denominator ``n^m``, so the identity with
    :func:`concise_gain_expected` holds to floating-point precision for
    the moderate ``m`` used in tests.  Runtime is O(m * distinct), so
    prefer the direct form for large ``m``.
    """
    array = _as_frequency_array(frequencies)
    if array.size == 0:
        return 0.0
    counts = [int(c) for c in array]
    n = sum(counts)
    m = sample_size
    numerator = 0
    for k in range(2, m + 1):
        f_k = sum(c**k for c in counts)
        term = math.comb(m, k) * f_k * n ** (m - k)
        numerator += term if k % 2 == 0 else -term
    return numerator / n**m


def compensation_constant(threshold: float) -> float:
    """The counting-sample count compensation ``c-hat``.

    Section 5.2 derives ``c-hat = tau * (e - 2) / (e - 1) - 1``
    (approximately ``0.418 tau - 1``), chosen so the augmented count
    ``c + c-hat`` is an unbiased estimate of ``f_v`` exactly at
    ``f_v = tau`` -- the regime where accuracy matters most.
    """
    if threshold < 1.0:
        raise ValueError("threshold must be at least 1")
    return threshold * _COMPENSATION_COEFFICIENT - 1.0


def counting_report_cutoff(threshold: float) -> float:
    """The raw-count reporting cut-off ``tau - c-hat``.

    A value is only reported from a counting sample when its observed
    count reaches ``tau - c-hat ~= 0.582 tau + 1``; Theorem 8(i) shows
    values occurring fewer than ``0.582 tau`` times can then never be
    reported.
    """
    return threshold - compensation_constant(threshold)


def counting_inclusion_probability(frequency: int, threshold: float) -> float:
    """Theorem 6(ii): ``Pr[v in S] = 1 - (1 - 1/tau)^f_v``."""
    if frequency < 0:
        raise ValueError("frequency must be non-negative")
    if threshold < 1.0:
        raise ValueError("threshold must be at least 1")
    return 1.0 - (1.0 - 1.0 / threshold) ** frequency


def counting_report_probability(frequency: int, threshold: float) -> float:
    """Exact probability a value is reported from a counting sample.

    The value is reported when its observed count is at least the
    cut-off ``tau - c-hat``; the count falls short only if the first
    ``f_v - ceil(tau - c-hat) + 1`` admission coins all come up tails.
    """
    cutoff = math.ceil(counting_report_cutoff(threshold))
    if frequency < cutoff:
        return 0.0
    return 1.0 - (1.0 - 1.0 / threshold) ** (frequency - cutoff + 1)


def counting_miss_quantile(
    threshold: float, confidence: float = 0.95
) -> float:
    """Upper quantile of the occurrences a counting sample misses.

    Before a value is admitted, each of its occurrences survives an
    independent ``1/tau`` admission coin, so the number of misses
    preceding admission is geometric: ``Pr[misses >= t] =
    (1 - 1/tau)^t``.  The smallest ``t`` with ``(1 - 1/tau)^t <= 1 -
    confidence`` therefore bounds the undercount of any in-sample
    value's raw count at the stated confidence -- the one-sided slack
    the hot-list calibration audit adds to counting-sample top counts.
    At ``tau <= 1`` every occurrence is counted and the quantile is 0.
    """
    if threshold < 1.0:
        raise ValueError("threshold must be at least 1")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if threshold <= 1.0:
        return 0.0
    return float(
        math.ceil(
            math.log(1.0 - confidence) / math.log1p(-1.0 / threshold)
        )
    )


def counting_false_negative_bound(beta: float) -> float:
    """Theorem 8(ii): a value with ``f_v >= beta * tau`` is reported
    with probability at least ``1 - exp(-(beta - 0.582))``; this
    returns the failure-probability bound ``exp(-(beta - 0.582))``.
    """
    if beta <= 1.0:
        raise ValueError("beta must exceed 1")
    return math.exp(-(beta - (1.0 - _COMPENSATION_COEFFICIENT)))


def counting_count_error_bound(beta: float) -> float:
    """Theorem 8(iii): the augmented count of an in-sample value lies in
    ``[f_v - beta*tau, f_v + 0.418*tau - 1]`` except with probability
    at most ``exp(-(beta + 0.418))`` (returned here).
    """
    if beta <= 0.0:
        raise ValueError("beta must be positive")
    return math.exp(-(beta + _COMPENSATION_COEFFICIENT))


def hotlist_report_probability(theta: float, delta: float) -> float:
    """Theorem 7(1): with a concise sample, a value with
    ``f_v >= theta * tau / (1 - delta)`` is reported with probability
    at least ``1 - exp(-theta * delta^2 / (2 (1 - delta)))``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    if theta <= 0:
        raise ValueError("theta must be positive")
    return 1.0 - math.exp(-theta * delta * delta / (2.0 * (1.0 - delta)))


def hotlist_false_positive_bound(theta: float, delta: float) -> float:
    """Theorem 7(2): a value with ``f_v <= theta * tau / (1 + delta)``
    is (falsely) reported with probability below
    ``exp(-theta * delta^2 / (3 (1 + delta)))``.
    """
    if delta <= 0.0:
        raise ValueError("delta must be positive")
    if theta <= 0:
        raise ValueError("theta must be positive")
    return math.exp(-theta * delta * delta / (3.0 * (1.0 + delta)))
