"""Exact frequency statistics of concrete value streams.

These are the ground-truth quantities the approximate synopses are
scored against: exact per-value counts, the frequency moments
``F_k = sum_j n_j^k`` (Section 3.2 of the paper), the mode, and exact
top-k hot lists.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np

__all__ = [
    "FrequencyTable",
    "distinct_count",
    "frequency_moment",
    "mode_frequency",
    "top_k",
]


class FrequencyTable:
    """Exact value -> count table with incremental updates.

    A thin wrapper over :class:`collections.Counter` that also supports
    deletes with validation, numpy bulk loads, and the derived
    statistics used throughout the experiments.
    """

    def __init__(self, values: Iterable[int] | np.ndarray | None = None) -> None:
        self._counts: Counter[int] = Counter()
        self._total = 0
        if values is not None:
            self.update(values)

    def update(self, values: Iterable[int] | np.ndarray) -> None:
        """Bulk-insert a stream of values."""
        if isinstance(values, np.ndarray):
            uniques, counts = np.unique(values, return_counts=True)
            for value, count in zip(uniques.tolist(), counts.tolist(), strict=True):
                self._counts[value] += count
            self._total += int(counts.sum()) if len(counts) else 0
            return
        for value in values:
            self._counts[int(value)] += 1
            self._total += 1

    def insert(self, value: int) -> None:
        """Record one occurrence of ``value``."""
        self._counts[value] += 1
        self._total += 1

    def delete(self, value: int) -> None:
        """Remove one occurrence of ``value``.

        Raises :class:`KeyError` if the value has no live occurrences,
        because a delete stream that underflows indicates a bug in the
        workload generator.
        """
        current = self._counts.get(value, 0)
        if current <= 0:
            raise KeyError(f"delete of absent value {value}")
        if current == 1:
            del self._counts[value]
        else:
            self._counts[value] = current - 1
        self._total -= 1

    def count(self, value: int) -> int:
        """Exact occurrence count of ``value`` (0 if absent)."""
        return self._counts.get(value, 0)

    def __contains__(self, value: int) -> bool:
        return value in self._counts

    def __len__(self) -> int:
        """Number of distinct live values."""
        return len(self._counts)

    @property
    def total(self) -> int:
        """Total number of live occurrences (relation size ``n``)."""
        return self._total

    def items(self):
        """Iterate ``(value, count)`` pairs."""
        return self._counts.items()

    def as_dict(self) -> dict[int, int]:
        """A copy of the table as a plain dict."""
        return dict(self._counts)

    def moment(self, k: float) -> float:
        """The frequency moment ``F_k = sum_j count_j^k``."""
        if not self._counts:
            return 0.0
        counts = np.fromiter(
            self._counts.values(), dtype=np.float64, count=len(self._counts)
        )
        return float(np.sum(counts**k))

    def mode(self) -> tuple[int, int]:
        """The most frequent value and its count.

        Raises :class:`ValueError` on an empty table.
        """
        if not self._counts:
            raise ValueError("mode of an empty table")
        value, count = max(self._counts.items(), key=lambda item: (item[1], -item[0]))
        return value, count

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """The ``k`` most frequent ``(value, count)`` pairs.

        Ties are broken toward smaller values so the output is
        deterministic.  A partial selection rather than a full sort:
        ``np.argpartition`` finds the ``k``-th largest count, only the
        values at or above it (possibly more than ``k`` on ties) are
        ordered, and the result is cut to ``k``.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        size = len(self._counts)
        if k == 0 or size == 0:
            return []
        keys = list(self._counts.keys())
        counts = np.fromiter(self._counts.values(), np.int64, size)
        # Keys may be Python floats (float columns build float tables);
        # numpy infers a common numeric dtype for tie-breaking only --
        # the returned pairs carry the original key objects.
        values = np.asarray(keys)
        if values.dtype == object:
            # Values outside int64 (wide composite encodings): sort in
            # Python, where big integers compare exactly.
            ordered = sorted(
                self._counts.items(), key=lambda item: (-item[1], item[0])
            )
            return ordered[:k]
        if k < size:
            pivot = size - k
            boundary = counts[np.argpartition(counts, pivot)[pivot]]
            candidates = np.nonzero(counts >= boundary)[0]
        else:
            candidates = np.arange(size)
        order = candidates[
            np.lexsort((values[candidates], -counts[candidates]))
        ][:k]
        return [
            (keys[index], int(counts[index])) for index in order.tolist()
        ]


def frequency_moment(values: np.ndarray | Iterable[int], k: float) -> float:
    """Exact ``F_k`` of a value stream."""
    return FrequencyTable(values).moment(k)


def distinct_count(values: np.ndarray | Iterable[int]) -> int:
    """Exact number of distinct values (``F_0``)."""
    return len(FrequencyTable(values))


def mode_frequency(values: np.ndarray | Iterable[int]) -> int:
    """Exact frequency of the most common value (``F_inf``)."""
    return FrequencyTable(values).mode()[1]


def top_k(values: np.ndarray | Iterable[int], k: int) -> list[tuple[int, int]]:
    """Exact top-``k`` hot list of a value stream."""
    return FrequencyTable(values).top_k(k)
