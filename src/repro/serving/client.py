"""A small asyncio client for the AQP service.

One :class:`AQPClient` wraps one TCP connection and (after
:meth:`hello`) one session.  Every method sends a single request frame
and awaits its reply; failure envelopes become typed exceptions, so
backpressure (:class:`ServerBusy`) and shutdown
(:class:`ServerShuttingDown`) are ordinary control flow rather than
hangs or parse errors.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any

from repro.engine.queries import Query
from repro.engine.responses import QueryResponse
from repro.serving import codec
from repro.serving.protocol import (
    NO_SYNOPSIS,
    SERVER_BUSY,
    SHUTTING_DOWN,
    FrameDecoder,
    ProtocolError,
    encode_request,
    parse_reply,
)

__all__ = [
    "AQPClient",
    "NoSynopsisRemote",
    "ServerBusy",
    "ServerError",
    "ServerShuttingDown",
]

_READ_CHUNK = 1 << 16


class ServerError(Exception):
    """A failure envelope from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServerBusy(ServerError):
    """The admission queue was full; retry later."""


class ServerShuttingDown(ServerError):
    """The server is draining and refused new work."""


class NoSynopsisRemote(ServerError):
    """No registered synopsis could answer the query remotely."""


_ERROR_TYPES: dict[str, type[ServerError]] = {
    SERVER_BUSY: ServerBusy,
    SHUTTING_DOWN: ServerShuttingDown,
    NO_SYNOPSIS: NoSynopsisRemote,
}


class AQPClient:
    """One connection + one session against an :class:`AQPServer`.

    Use :meth:`connect` to build one; call :meth:`hello` before the
    session-scoped ops (snapshot/register/query).  Not safe for
    concurrent use from multiple tasks -- open one client per task,
    as the tests and the benchmark load generator do.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(source="client-wire")
        self._pending: list[dict[str, Any]] = []
        self._ids = itertools.count(1)
        self.session_id: str | None = None

    @classmethod
    async def connect(cls, host: str, port: int) -> AQPClient:
        """Open a connection to a listening server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection (without a ``bye`` round trip)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def request(
        self, op: str, params: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """One round trip; returns the result or raises typed errors.

        :class:`ConnectionError` when the server hangs up without a
        reply (e.g. after a crash), :class:`ProtocolError` when the
        reply stream is corrupt, :class:`ServerError` (or a subclass)
        for failure envelopes.
        """
        request_id = next(self._ids)
        self._writer.write(encode_request(request_id, op, params or {}))
        await self._writer.drain()
        payload = await self._next_frame()
        reply_id, result, error = parse_reply(payload)
        if reply_id is not None and reply_id != request_id:
            raise ProtocolError(
                "bad-request",
                f"reply id {reply_id!r} does not match request "
                f"{request_id!r}",
            )
        if error is not None:
            code, message = error
            raise _ERROR_TYPES.get(code, ServerError)(code, message)
        assert result is not None
        return result

    async def _next_frame(self) -> dict[str, Any]:
        while not self._pending:
            data = await self._reader.read(_READ_CHUNK)
            if not data:
                raise ConnectionError(
                    "server closed the connection without replying"
                )
            self._pending.extend(self._decoder.feed(data))
        return self._pending.pop(0)

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------

    def _session_params(self, extra: dict[str, Any]) -> dict[str, Any]:
        if self.session_id is None:
            raise RuntimeError("call hello() before session-scoped ops")
        return {"session": self.session_id, **extra}

    async def hello(self) -> dict[str, Any]:
        """Open a session; returns the server's greeting."""
        result = await self.request("hello")
        self.session_id = result["session"]
        return result

    async def ping(self) -> bool:
        """Liveness probe."""
        result = await self.request("ping")
        return bool(result.get("pong"))

    async def snapshot(self) -> dict[str, list[int]]:
        """Pin this session to the current ingest epoch.

        Returns the pinned ``{relation: [ingest, synopsis]}`` epochs.
        """
        result = await self.request(
            "snapshot", self._session_params({})
        )
        return dict(result["epochs"])

    async def register(self, handle: str, query: Query) -> str:
        """Bind a reusable handle to a query."""
        result = await self.request(
            "register",
            self._session_params(
                {"handle": handle, "query": codec.encode_query(query)}
            ),
        )
        return str(result["handle"])

    async def query(
        self,
        query: Query | None = None,
        *,
        handle: str | None = None,
        mode: str | None = None,
        exact: bool = False,
    ) -> QueryResponse:
        """Run a query (by body or by registered handle).

        ``mode`` is ``"pinned"`` / ``"live"``; by default the server
        answers pinned when the session holds a snapshot and the query
        is approximate, live otherwise.
        """
        if (query is None) == (handle is None):
            raise ValueError("pass exactly one of query or handle")
        extra: dict[str, Any] = {}
        if query is not None:
            extra["query"] = codec.encode_query(query)
        else:
            extra["handle"] = handle
        if mode is not None:
            extra["mode"] = mode
        if exact:
            extra["exact"] = True
        result = await self.request(
            "query", self._session_params(extra)
        )
        return codec.decode_response(result["response"])

    async def query_raw(
        self,
        query: Query | None = None,
        *,
        handle: str | None = None,
        mode: str | None = None,
        exact: bool = False,
    ) -> dict[str, Any]:
        """Like :meth:`query` but returns the raw result envelope.

        The byte-identity tests compare these undecoded payloads.
        """
        if (query is None) == (handle is None):
            raise ValueError("pass exactly one of query or handle")
        extra: dict[str, Any] = {}
        if query is not None:
            extra["query"] = codec.encode_query(query)
        else:
            extra["handle"] = handle
        if mode is not None:
            extra["mode"] = mode
        if exact:
            extra["exact"] = True
        return await self.request("query", self._session_params(extra))

    async def ingest(
        self, relation: str, columns: dict[str, list[int]]
    ) -> int:
        """Load one batch; returns rows acked by the server."""
        result = await self.request(
            "ingest", {"relation": relation, "columns": columns}
        )
        return int(result["rows"])

    async def create_relation(
        self, relation: str, attributes: list[str]
    ) -> None:
        """Create a relation on the server."""
        await self.request(
            "create_relation",
            {"relation": relation, "attributes": attributes},
        )

    async def stats(self) -> dict[str, Any]:
        """The server's live load/session statistics."""
        return await self.request("stats")

    async def bye(self) -> None:
        """Close the session and the connection."""
        try:
            await self.request("bye", {})
        finally:
            self.session_id = None
            await self.close()
