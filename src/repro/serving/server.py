"""The AQP network service: an asyncio TCP server over the warehouse.

One :class:`AQPServer` owns a
:class:`~repro.engine.warehouse.DataWarehouse` and its
:class:`~repro.engine.engine.ApproximateAnswerEngine`; clients speak
the CRC-framed envelope protocol of :mod:`repro.serving.protocol`.
Connections are handled concurrently but each connection's requests
run in order, and all synopsis/warehouse access happens on the event
loop -- batches stay atomic with respect to queries by construction.

Three contracts the test battery enforces:

* **Read-snapshot isolation** -- a session's ``snapshot`` op pins a
  :class:`~repro.engine.pinned.PinnedEngineView`; its pinned-mode
  queries answer as of that epoch no matter how much concurrent
  ingest lands.
* **Bounded admission** -- at most ``max_in_flight`` heavy requests
  (query/ingest) execute at once and at most ``max_queue`` wait;
  beyond that the client gets a typed ``server-busy`` error
  immediately, never a hang.
* **Graceful shutdown** -- :meth:`shutdown` stops accepting, drains
  in-flight requests, then syncs the WAL group-commit buffer through
  the recovery manager's drain hook before closing connections, so
  every acked ingest is durable.  :meth:`abort` is the crash path:
  nothing is drained (fault-injection tests use it to model a kill).

The server never reads a clock directly (RL009): timing comes from an
injected ``clock`` callable defaulting to
:func:`repro.obs.clock.monotonic`, and fault tests substitute a
:class:`~repro.obs.clock.FakeClock`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

import numpy as np

from repro.engine.answering import NoSynopsisError
from repro.engine.engine import ApproximateAnswerEngine
from repro.engine.relation import RelationError
from repro.engine.warehouse import DataWarehouse
from repro.obs import clock as obs_clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import ActiveTrace, QueryTracer
from repro.persist.recovery import RecoveryManager
from repro.serving import codec
from repro.serving.metrics import ServerMetrics
from repro.serving.protocol import (
    BAD_REQUEST,
    DEFAULT_MAX_FRAME_BYTES,
    INTERNAL,
    NO_SESSION,
    NO_SYNOPSIS,
    QUERY_ERROR,
    SERVER_BUSY,
    SHUTTING_DOWN,
    FrameDecoder,
    ProtocolError,
    encode_error,
    encode_result,
    parse_request,
)
from repro.serving.session import Session

__all__ = ["AQPServer"]

#: Ops that go through the bounded admission queue; everything else
#: (hello/ping/snapshot/register/stats/bye) is cheap bookkeeping and
#: bypasses it.
_HEAVY_OPS = frozenset({"query", "ingest"})

_READ_CHUNK = 1 << 16


class AQPServer:
    """Sessioned concurrent query/ingest service over one warehouse.

    Parameters
    ----------
    warehouse, engine:
        The owned warehouse and its engine.  The server is the only
        writer once serving starts.
    manager:
        Optional :class:`~repro.persist.recovery.RecoveryManager`
        already attached to the warehouse; graceful shutdown calls its
        :meth:`~repro.persist.recovery.RecoveryManager.drain` so the
        WAL group-commit buffer reaches stable storage.
    registry:
        Optional metrics registry for the ``repro_server_*``
        instruments (defaults to the process registry, a no-op unless
        observability is enabled).
    tracer:
        Optional :class:`~repro.obs.tracing.QueryTracer`; query
        requests become query spans with ``queue_wait`` and
        ``execute`` children.
    clock:
        Monotonic-seconds callable for latency instruments.
    max_in_flight, max_queue:
        The admission bound: concurrent heavy requests, and waiters
        beyond them before ``server-busy``.
    max_frame_bytes:
        Largest request payload a client may frame.
    fatal_exceptions:
        Exception types the request loop must *not* convert into
        ``internal`` error responses: they abort the whole server and
        re-raise.  Fault tests pass ``(SimulatedCrash,)`` so an
        injected WAL crash kills the process model, exactly like a
        real power cut.
    """

    def __init__(
        self,
        warehouse: DataWarehouse,
        engine: ApproximateAnswerEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        manager: RecoveryManager | None = None,
        registry: MetricsRegistry | None = None,
        tracer: QueryTracer | None = None,
        clock: Callable[[], float] = obs_clock.monotonic,
        max_in_flight: int = 8,
        max_queue: int = 16,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        fatal_exceptions: tuple[type[BaseException], ...] = (),
    ) -> None:
        if max_in_flight <= 0:
            raise ValueError("max_in_flight must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.warehouse = warehouse
        self.engine = engine
        self.manager = manager
        self.tracer = tracer
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.max_frame_bytes = max_frame_bytes
        self.fatal_error: BaseException | None = None
        self._host = host
        self._port = port
        self._clock = clock
        self._fatal = tuple(fatal_exceptions)
        self._metrics = ServerMetrics(registry)
        self._server: asyncio.AbstractServer | None = None
        self._admission = asyncio.Semaphore(max_in_flight)
        self._waiting = 0
        self._active = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._drained.set()
        self._sessions: dict[str, Session] = {}
        self._session_counter = 0
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    async def start(self) -> tuple[str, int]:
        """Bind and begin accepting; returns the listening address."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def shutdown(self) -> None:
        """Graceful stop: drain in-flight work, then the WAL buffer.

        New heavy requests on existing connections are refused with
        ``shutting-down`` from the moment this is called.  Safe to
        call twice; the second call just waits again.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._drained.wait()
        if self.manager is not None:
            self.manager.drain()
        await self._close_connections()

    def abort(self) -> None:
        """Crash-stop: close everything now, drain nothing.

        The fault-injection model of a kill: acked-but-unsynced WAL
        records are abandoned to whatever the filesystem made durable,
        exactly as a power cut would.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()

    async def _close_connections(self) -> None:
        for writer in list(self._writers):
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                continue
        self._writers.clear()

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._metrics.connections_total.inc()
        self._writers.add(writer)
        decoder = FrameDecoder(max_frame_bytes=self.max_frame_bytes)
        sessions: list[Session] = []
        try:
            await self._connection_loop(reader, writer, decoder, sessions)
        except self._fatal:
            # abort() already ran and fatal_error is recorded; the
            # connection task dies quietly, exactly as the process
            # would have.
            pass
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            # The peer vanished mid-stream; its sessions are closed in
            # the finally block and nothing else is affected.
            pass
        finally:
            for session in sessions:
                self._close_session(session)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _connection_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
        sessions: list[Session],
    ) -> None:
        while True:
            data = await reader.read(_READ_CHUNK)
            if not data:
                return
            self._metrics.bytes_read_total.inc(len(data))
            try:
                payloads = decoder.feed(data)
            except ProtocolError as error:
                # A torn frame can only mean the peer's stream is
                # corrupt or hostile; answer once, typed, and hang up.
                self._metrics.protocol_errors_total.inc()
                await self._send(
                    writer,
                    encode_error(None, error.code, error.message),
                )
                return
            for payload in payloads:
                goodbye = await self._handle_request(
                    payload, writer, sessions
                )
                if goodbye:
                    return

    async def _send(
        self, writer: asyncio.StreamWriter, data: bytes
    ) -> None:
        writer.write(data)
        self._metrics.bytes_written_total.inc(len(data))
        await writer.drain()

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    async def _handle_request(
        self,
        payload: dict[str, Any],
        writer: asyncio.StreamWriter,
        sessions: list[Session],
    ) -> bool:
        """Answer one envelope; True when the connection should close."""
        try:
            request_id, op, params = parse_request(payload)
        except ProtocolError as error:
            fallback = payload.get("id") if isinstance(payload, dict) else None
            self._metrics.requests_total("invalid", "error").inc()
            await self._send(
                writer, encode_error(fallback, error.code, error.message)
            )
            return False
        started = self._clock()
        heavy = op in _HEAVY_OPS
        if self._draining and op != "bye":
            self._metrics.requests_total(op, "error").inc()
            await self._send(
                writer,
                encode_error(
                    request_id,
                    SHUTTING_DOWN,
                    "server is draining; no new requests",
                ),
            )
            return False

        trace: ActiveTrace | None = None
        if op == "query" and self.tracer is not None:
            trace = self.tracer.start_trace()

        admitted = False
        if heavy:
            if self._waiting >= self.max_queue:
                self._metrics.busy_total.inc()
                self._metrics.requests_total(op, "busy").inc()
                await self._send(
                    writer,
                    encode_error(
                        request_id,
                        SERVER_BUSY,
                        f"admission queue full "
                        f"({self._waiting} waiting); retry later",
                    ),
                )
                return False
            await self._admit(trace)
            admitted = True

        self._active += 1
        self._drained.clear()
        self._metrics.in_flight.inc()
        try:
            result, goodbye = await self._execute(
                op, params, sessions, trace
            )
            self._metrics.requests_total(op, "ok").inc()
            await self._send(writer, encode_result(request_id, result))
            return goodbye
        except ProtocolError as error:
            self._metrics.requests_total(op, "error").inc()
            await self._send(
                writer,
                encode_error(request_id, error.code, error.message),
            )
            return False
        except self._fatal:
            # A simulated crash: the server is already aborted, no
            # error response may be written (the transport is gone).
            raise
        except Exception as error:
            self._metrics.requests_total(op, "error").inc()
            await self._send(
                writer,
                encode_error(
                    request_id,
                    INTERNAL,
                    f"{type(error).__name__}: {error}",
                ),
            )
            return False
        finally:
            self._metrics.request_seconds(op).observe(
                self._clock() - started
            )
            self._metrics.in_flight.dec()
            self._active -= 1
            if self._active == 0:
                self._drained.set()
            if admitted:
                self._admission.release()

    async def _admit(self, trace: ActiveTrace | None) -> None:
        """Wait for an admission slot, timing the queue wait."""
        self._waiting += 1
        self._metrics.queue_depth.inc()
        wait_started = self._clock()
        try:
            if trace is not None and self.tracer is not None:
                with self.tracer.child(trace, "queue_wait"):
                    await self._admission.acquire()
            else:
                await self._admission.acquire()
        finally:
            self._waiting -= 1
            self._metrics.queue_depth.dec()
            self._metrics.queue_wait_seconds.observe(
                self._clock() - wait_started
            )

    async def _execute(
        self,
        op: str,
        params: dict[str, Any],
        sessions: list[Session],
        trace: ActiveTrace | None,
    ) -> tuple[dict[str, Any], bool]:
        """Run one op; returns ``(result, close_connection)``."""
        if op == "hello":
            return self._op_hello(sessions), False
        if op == "ping":
            return {"pong": True}, False
        if op == "snapshot":
            return self._op_snapshot(params), False
        if op == "register":
            return self._op_register(params), False
        if op == "query":
            return await self._op_query(params, trace), False
        if op == "ingest":
            return self._op_ingest(params), False
        if op == "create_relation":
            return self._op_create_relation(params), False
        if op == "stats":
            return self._op_stats(), False
        if op == "bye":
            return self._op_bye(params, sessions), True
        raise ProtocolError(BAD_REQUEST, f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _op_hello(self, sessions: list[Session]) -> dict[str, Any]:
        self._session_counter += 1
        session = Session(f"s{self._session_counter}")
        self._sessions[session.session_id] = session
        sessions.append(session)
        self._metrics.sessions_total.inc()
        self._metrics.sessions_open.inc()
        return {
            "session": session.session_id,
            "server": "repro-aqp",
            "relations": self.warehouse.relation_names(),
        }

    def _session_for(self, params: dict[str, Any]) -> Session:
        session_id = params.get("session")
        session = (
            self._sessions.get(session_id)
            if isinstance(session_id, str)
            else None
        )
        if session is None:
            raise ProtocolError(
                NO_SESSION, f"unknown session {session_id!r}"
            )
        return session

    def _close_session(self, session: Session) -> None:
        if self._sessions.pop(session.session_id, None) is not None:
            self._metrics.sessions_open.dec()

    def _op_snapshot(self, params: dict[str, Any]) -> dict[str, Any]:
        session = self._session_for(params)
        session.pin(self.engine.pin_view())
        return {"epochs": session.snapshot_epochs()}

    def _op_register(self, params: dict[str, Any]) -> dict[str, Any]:
        session = self._session_for(params)
        handle = params.get("handle")
        if not isinstance(handle, str) or not handle:
            raise ProtocolError(
                BAD_REQUEST, "'handle' must be a non-empty string"
            )
        try:
            query = codec.decode_query(params.get("query"))
        except ValueError as error:
            raise ProtocolError(BAD_REQUEST, str(error)) from error
        session.register(handle, query)
        return {"handle": handle}

    async def _op_query(
        self, params: dict[str, Any], trace: ActiveTrace | None
    ) -> dict[str, Any]:
        session = self._session_for(params)
        if "handle" in params:
            handle = params["handle"]
            try:
                query = session.resolve(handle)
            except KeyError:
                raise ProtocolError(
                    BAD_REQUEST, f"unregistered handle {handle!r}"
                ) from None
        else:
            try:
                query = codec.decode_query(params.get("query"))
            except ValueError as error:
                raise ProtocolError(BAD_REQUEST, str(error)) from error
        exact = bool(params.get("exact", False))
        mode = params.get("mode")
        if mode is None:
            mode = (
                "pinned"
                if session.pinned is not None and not exact
                else "live"
            )
        if mode not in ("pinned", "live"):
            raise ProtocolError(
                BAD_REQUEST, f"mode must be pinned or live, not {mode!r}"
            )
        if exact and mode == "pinned":
            raise ProtocolError(
                BAD_REQUEST,
                "exact queries scan live base data; use mode=live",
            )
        tracer = self.tracer
        try:
            if mode == "pinned":
                if session.pinned is None:
                    raise ProtocolError(
                        BAD_REQUEST,
                        "no snapshot pinned; send a snapshot op first",
                    )
                if tracer is not None and trace is not None:
                    with tracer.child(trace, "execute"):
                        response = session.pinned.answer(query)
                else:
                    response = session.pinned.answer(query)
            else:
                if tracer is not None and trace is not None:
                    with tracer.child(trace, "execute"):
                        response = self.engine.answer(query, exact=exact)
                else:
                    response = self.engine.answer(query, exact=exact)
        except self._fatal as error:
            self.fatal_error = error
            self.abort()
            raise
        except NoSynopsisError as error:
            if tracer is not None and trace is not None:
                tracer.finish_error(
                    trace, query, error, requested_exact=exact
                )
            raise ProtocolError(NO_SYNOPSIS, str(error)) from error
        except ProtocolError:
            raise
        except (ValueError, RelationError) as error:
            if tracer is not None and trace is not None:
                tracer.finish_error(
                    trace, query, error, requested_exact=exact
                )
            raise ProtocolError(QUERY_ERROR, str(error)) from error
        if tracer is not None and trace is not None:
            tracer.finish(trace, query, response, requested_exact=exact)
        return {
            "response": codec.encode_response(response),
            "mode": mode,
        }

    def _op_ingest(self, params: dict[str, Any]) -> dict[str, Any]:
        relation = params.get("relation")
        if not isinstance(relation, str) or not relation:
            raise ProtocolError(
                BAD_REQUEST, "'relation' must be a non-empty string"
            )
        columns = params.get("columns")
        if not isinstance(columns, dict) or not columns:
            raise ProtocolError(
                BAD_REQUEST, "'columns' must be a non-empty object"
            )
        arrays: dict[str, np.ndarray] = {}
        for attribute, values in columns.items():
            if not isinstance(values, list):
                raise ProtocolError(
                    BAD_REQUEST,
                    f"column {attribute!r} must be a list of integers",
                )
            try:
                arrays[attribute] = np.asarray(values, dtype=np.int64)
            except (TypeError, ValueError, OverflowError) as error:
                raise ProtocolError(
                    BAD_REQUEST,
                    f"column {attribute!r} is not integral: {error}",
                ) from error
        try:
            rows = self.warehouse.load_batch(relation, arrays)
        except self._fatal as error:
            self.fatal_error = error
            self.abort()
            raise
        except (ValueError, RelationError) as error:
            raise ProtocolError(QUERY_ERROR, str(error)) from error
        # The ack: load_batch returned, so the relation, every
        # registered synopsis, and (when a recovery manager observes
        # the warehouse) the WAL have all absorbed the batch.
        return {"rows": rows}

    def _op_create_relation(
        self, params: dict[str, Any]
    ) -> dict[str, Any]:
        relation = params.get("relation")
        attributes = params.get("attributes")
        if not isinstance(relation, str) or not relation:
            raise ProtocolError(
                BAD_REQUEST, "'relation' must be a non-empty string"
            )
        if not isinstance(attributes, list) or not all(
            isinstance(attribute, str) and attribute
            for attribute in attributes
        ):
            raise ProtocolError(
                BAD_REQUEST, "'attributes' must be a list of strings"
            )
        try:
            self.warehouse.create_relation(relation, list(attributes))
        except RelationError as error:
            raise ProtocolError(QUERY_ERROR, str(error)) from error
        return {"relation": relation}

    def _op_stats(self) -> dict[str, Any]:
        return {
            "sessions": len(self._sessions),
            "in_flight": self._active,
            "queue_depth": self._waiting,
            "draining": self._draining,
            "relations": {
                name: self.warehouse.relation(name).size
                for name in self.warehouse.relation_names()
            },
        }

    def _op_bye(
        self, params: dict[str, Any], sessions: list[Session]
    ) -> dict[str, Any]:
        for session in sessions:
            self._close_session(session)
        sessions.clear()
        return {"closed": True}
