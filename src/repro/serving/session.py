"""Per-client sessions: query handles plus a pinned snapshot.

A session is created by the ``hello`` op and lives until ``bye`` or
disconnect.  It owns two things:

* **handles** -- queries registered once by name and re-run by handle,
  so a dashboard client does not re-send the query body per refresh;
* **a pinned view** -- an epoch-stamped
  :class:`~repro.engine.pinned.PinnedEngineView` taken by the
  ``snapshot`` op.  Queries in ``pinned`` mode are answered from it,
  so every answer the session sees is as-of one ingest epoch no
  matter how much concurrent ``ingest`` traffic lands in between
  (read-snapshot isolation).  ``live`` mode (and every exact query)
  reads the current engine instead.
"""

from __future__ import annotations

from repro.engine.pinned import PinnedEngineView
from repro.engine.queries import Query

__all__ = ["Session"]


class Session:
    """One client's registered handles and snapshot pin."""

    def __init__(self, session_id: str) -> None:
        self.session_id = session_id
        self.handles: dict[str, Query] = {}
        self.pinned: PinnedEngineView | None = None

    def register(self, handle: str, query: Query) -> None:
        """Bind a handle name to a query (re-binding replaces)."""
        self.handles[handle] = query

    def resolve(self, handle: str) -> Query:
        """The query bound to a handle.

        Raises :class:`KeyError` when the handle was never registered;
        the server reports that as ``bad-request``.
        """
        return self.handles[handle]

    def pin(self, view: PinnedEngineView) -> PinnedEngineView:
        """Adopt a freshly captured snapshot view; returns it."""
        self.pinned = view
        return view

    def snapshot_epochs(self) -> dict[str, list[int]]:
        """The pinned ``{relation: [ingest, synopsis]}`` epoch map."""
        if self.pinned is None:
            return {}
        return {
            name: list(self.pinned.epoch_token(name))
            for name in self.pinned.relation_names()
        }
