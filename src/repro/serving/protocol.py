"""The wire protocol: CRC-framed JSON envelopes over a byte stream.

Every message in either direction is one frame in the
:mod:`repro.persist.framing` codec -- ``<length:08x> <crc32:08x>
<hcrc32:08x> <payload JSON>\\n`` -- so the wire inherits the WAL's
torn-vs-corrupt triage: an incomplete frame is simply *not yet
arrived* (the decoder waits for more bytes), while a complete frame
that fails its checksum, a malformed header, or a wrong terminator is
corruption and surfaces as a :class:`ProtocolError` the peer can
report cleanly.  A silent partial decode is impossible by
construction.

Envelopes:

* request: ``{"id": ..., "op": "...", "params": {...}}``
* success: ``{"id": ..., "ok": true, "result": {...}}``
* failure: ``{"id": ..., "ok": false, "error": {"code": "...",
  "message": "..."}}``

``id`` is caller-chosen and echoed verbatim, so a client can match
pipelined responses to requests.
"""

from __future__ import annotations

from typing import Any

from repro.persist.errors import ChecksumMismatch
from repro.persist.framing import HEADER_LENGTH, decode_frames, encode_frame

__all__ = [
    "BAD_FRAME",
    "BAD_REQUEST",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecoder",
    "INTERNAL",
    "NO_SESSION",
    "NO_SYNOPSIS",
    "ProtocolError",
    "QUERY_ERROR",
    "SERVER_BUSY",
    "SHUTTING_DOWN",
    "encode_error",
    "encode_request",
    "encode_result",
    "parse_reply",
    "parse_request",
]

#: Largest payload a peer may frame; bigger declared lengths are
#: rejected before the payload is buffered.
DEFAULT_MAX_FRAME_BYTES = 1 << 20

# Error codes carried in failure envelopes.  Typed, not free-form:
# clients dispatch on them (ServerBusy is the backpressure contract).
BAD_FRAME = "bad-frame"
BAD_REQUEST = "bad-request"
SERVER_BUSY = "server-busy"
SHUTTING_DOWN = "shutting-down"
NO_SESSION = "no-session"
NO_SYNOPSIS = "no-synopsis"
QUERY_ERROR = "query-error"
INTERNAL = "internal"


class ProtocolError(Exception):
    """A wire-level violation: corrupt frame or malformed envelope."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class FrameDecoder:
    """Incremental frame reassembly for one direction of one socket.

    Feed it whatever ``read()`` returned; it returns every frame that
    completed and buffers the rest.  Corruption (checksum or header
    failure, wrong terminator) and oversized declared lengths raise
    :class:`ProtocolError` -- after which the stream is unusable and
    the connection should be closed.
    """

    def __init__(
        self,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        source: str = "wire",
    ) -> None:
        if max_frame_bytes <= 0:
            raise ValueError("max_frame_bytes must be positive")
        self.max_frame_bytes = max_frame_bytes
        self._source = source
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered inside an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb bytes; return the payloads of every completed frame."""
        self._buffer.extend(data)
        self._reject_oversized()
        try:
            payloads, torn = decode_frames(
                bytes(self._buffer), source=self._source
            )
        except ChecksumMismatch as error:
            raise ProtocolError(
                BAD_FRAME, f"corrupt frame: {error}"
            ) from error
        if torn is None:
            self._buffer.clear()
        else:
            del self._buffer[: torn.offset]
        return payloads

    def _reject_oversized(self) -> None:
        """Refuse any frame whose header declares too long a payload.

        Walks every complete header in the buffer *before* decoding,
        so an oversized frame is rejected whether it arrived whole in
        one read or is still trickling in -- the peer never gets to
        make the server buffer an unbounded payload.  A header that
        does not even parse as hex is left for the decoder's own
        corruption triage.
        """
        buffer = self._buffer
        offset = 0
        while len(buffer) - offset >= 8:
            try:
                declared = int(bytes(buffer[offset : offset + 8]), 16)
            except ValueError:
                return
            if declared > self.max_frame_bytes:
                raise ProtocolError(
                    BAD_FRAME,
                    f"declared frame length {declared} exceeds the "
                    f"{self.max_frame_bytes}-byte limit",
                )
            offset += HEADER_LENGTH + declared + 1


def encode_request(
    request_id: Any, op: str, params: dict[str, Any]
) -> bytes:
    """One request envelope as a wire frame."""
    return encode_frame({"id": request_id, "op": op, "params": params})


def encode_result(request_id: Any, result: dict[str, Any]) -> bytes:
    """One success envelope as a wire frame."""
    return encode_frame({"id": request_id, "ok": True, "result": result})


def encode_error(request_id: Any, code: str, message: str) -> bytes:
    """One failure envelope as a wire frame."""
    return encode_frame(
        {
            "id": request_id,
            "ok": False,
            "error": {"code": code, "message": message},
        }
    )


def parse_request(payload: dict[str, Any]) -> tuple[Any, str, dict[str, Any]]:
    """Validate a request envelope into ``(id, op, params)``.

    Raises :class:`ProtocolError` (``bad-request``) on a malformed
    envelope; the frame itself already passed its checksums, so this
    is the peer speaking the wrong dialect, not line noise.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(BAD_REQUEST, "request must be a JSON object")
    if "id" not in payload:
        raise ProtocolError(BAD_REQUEST, "request is missing 'id'")
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError(BAD_REQUEST, "request 'op' must be a string")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            BAD_REQUEST, "request 'params' must be an object"
        )
    return payload["id"], op, params


def parse_reply(
    payload: dict[str, Any],
) -> tuple[Any, dict[str, Any] | None, tuple[str, str] | None]:
    """Validate a reply envelope into ``(id, result, error)``.

    Exactly one of ``result`` / ``error`` is non-``None``; ``error``
    is a ``(code, message)`` pair.
    """
    if not isinstance(payload, dict) or "id" not in payload:
        raise ProtocolError(BAD_REQUEST, "reply is missing 'id'")
    if payload.get("ok") is True:
        result = payload.get("result")
        if not isinstance(result, dict):
            raise ProtocolError(
                BAD_REQUEST, "ok reply 'result' must be an object"
            )
        return payload["id"], result, None
    if payload.get("ok") is False:
        error = payload.get("error")
        if (
            not isinstance(error, dict)
            or not isinstance(error.get("code"), str)
            or not isinstance(error.get("message"), str)
        ):
            raise ProtocolError(
                BAD_REQUEST, "error reply must carry code and message"
            )
        return payload["id"], None, (error["code"], error["message"])
    raise ProtocolError(BAD_REQUEST, "reply 'ok' must be true or false")
