"""JSON codec for queries and responses crossing the wire.

Purely structural: a query dataclass maps to a tagged JSON object and
back, a :class:`~repro.engine.responses.QueryResponse` likewise.
Floats travel as JSON numbers, which round-trip bit-exactly through
Python's ``repr``-based serialization -- so two byte-identical
responses stay byte-identical after a wire round trip, the property
the serving concurrency battery leans on.

Decoding raises :class:`ValueError` on anything malformed; the server
maps that to a ``bad-request`` protocol error.
"""

from __future__ import annotations

from typing import Any

from repro.engine.queries import (
    AverageQuery,
    CountQuery,
    DistinctCountQuery,
    FrequencyQuery,
    HotListQuery,
    JoinSizeQuery,
    Query,
    SelectivityQuery,
    SumQuery,
)
from repro.engine.responses import QueryResponse
from repro.estimators.intervals import ConfidenceInterval
from repro.estimators.selectivity import Predicate
from repro.hotlist.base import HotListAnswer, HotListEntry

__all__ = [
    "decode_query",
    "decode_response",
    "encode_query",
    "encode_response",
]

_PREDICATE_QUERIES = {
    "count": CountQuery,
    "sum": SumQuery,
    "average": AverageQuery,
    "selectivity": SelectivityQuery,
}


def _encode_predicate(predicate: Predicate | None) -> dict[str, Any] | None:
    if predicate is None:
        return None
    if predicate.equals is not None:
        return {"equals": predicate.equals}
    return {"low": predicate.low, "high": predicate.high}


def _decode_predicate(payload: Any) -> Predicate | None:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ValueError("predicate must be an object or null")
    if "equals" in payload:
        return Predicate(equals=payload["equals"])
    if "low" in payload or "high" in payload:
        return Predicate(
            low=payload.get("low"), high=payload.get("high")
        )
    raise ValueError("predicate needs 'equals' or 'low'/'high'")


def encode_query(query: Query) -> dict[str, Any]:
    """One query dataclass as a tagged JSON object."""
    if isinstance(query, JoinSizeQuery):
        return {
            "type": "join_size",
            "left_relation": query.left_relation,
            "left_attribute": query.left_attribute,
            "right_relation": query.right_relation,
            "right_attribute": query.right_attribute,
        }
    if isinstance(query, HotListQuery):
        return {
            "type": "hotlist",
            "relation": query.relation,
            "attribute": query.attribute,
            "k": query.k,
        }
    if isinstance(query, FrequencyQuery):
        return {
            "type": "frequency",
            "relation": query.relation,
            "attribute": query.attribute,
            "value": query.value,
        }
    if isinstance(query, DistinctCountQuery):
        return {
            "type": "distinct",
            "relation": query.relation,
            "attribute": query.attribute,
        }
    for tag, query_type in _PREDICATE_QUERIES.items():
        if isinstance(query, query_type):
            return {
                "type": tag,
                "relation": query.relation,
                "attribute": query.attribute,
                "predicate": _encode_predicate(query.predicate),
            }
    raise ValueError(f"unsupported query {query!r}")


def decode_query(payload: Any) -> Query:
    """A tagged JSON object back into its query dataclass."""
    if not isinstance(payload, dict):
        raise ValueError("query must be a JSON object")
    tag = payload.get("type")
    if tag == "join_size":
        return JoinSizeQuery(
            left_relation=_string(payload, "left_relation"),
            left_attribute=_string(payload, "left_attribute"),
            right_relation=_string(payload, "right_relation"),
            right_attribute=_string(payload, "right_attribute"),
        )
    relation = _string(payload, "relation")
    attribute = _string(payload, "attribute")
    if tag == "hotlist":
        k = payload.get("k", 10)
        if not isinstance(k, int) or k <= 0:
            raise ValueError("hotlist 'k' must be a positive integer")
        return HotListQuery(relation, attribute, k=k)
    if tag == "frequency":
        value = payload.get("value", 0)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError("frequency 'value' must be an integer")
        return FrequencyQuery(relation, attribute, value=value)
    if tag == "distinct":
        return DistinctCountQuery(relation, attribute)
    query_type = _PREDICATE_QUERIES.get(tag) if isinstance(tag, str) else None
    if query_type is not None:
        return query_type(
            relation,
            attribute,
            predicate=_decode_predicate(payload.get("predicate")),
        )
    raise ValueError(f"unknown query type {tag!r}")


def _string(payload: dict[str, Any], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ValueError(f"query {key!r} must be a non-empty string")
    return value


def _encode_interval(
    interval: ConfidenceInterval | None,
) -> dict[str, Any] | None:
    if interval is None:
        return None
    return {
        "low": float(interval.low),
        "high": float(interval.high),
        "confidence": float(interval.confidence),
    }


def _decode_interval(payload: Any) -> ConfidenceInterval | None:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ValueError("interval must be an object or null")
    return ConfidenceInterval(
        low=float(payload["low"]),
        high=float(payload["high"]),
        confidence=float(payload["confidence"]),
    )


def _encode_answer(answer: Any) -> dict[str, Any]:
    if isinstance(answer, HotListAnswer):
        return {
            "kind": "hotlist",
            "k": answer.k,
            "entries": [
                [int(entry.value), float(entry.estimated_count)]
                for entry in answer.entries
            ],
        }
    return {"kind": "scalar", "value": float(answer)}


def _decode_answer(payload: Any) -> Any:
    if not isinstance(payload, dict):
        raise ValueError("answer must be an object")
    kind = payload.get("kind")
    if kind == "scalar":
        return float(payload["value"])
    if kind == "hotlist":
        entries = tuple(
            HotListEntry(int(value), float(count))
            for value, count in payload["entries"]
        )
        return HotListAnswer(k=int(payload["k"]), entries=entries)
    raise ValueError(f"unknown answer kind {kind!r}")


def encode_response(response: QueryResponse) -> dict[str, Any]:
    """One engine response as a JSON object."""
    return {
        "answer": _encode_answer(response.answer),
        "interval": _encode_interval(response.interval),
        "method": response.method,
        "is_exact": bool(response.is_exact),
        "disk_accesses": int(response.disk_accesses),
        "exact_cost_estimate": int(response.exact_cost_estimate),
    }


def decode_response(payload: Any) -> QueryResponse:
    """A JSON object back into a :class:`QueryResponse`."""
    if not isinstance(payload, dict):
        raise ValueError("response must be a JSON object")
    return QueryResponse(
        answer=_decode_answer(payload["answer"]),
        interval=_decode_interval(payload.get("interval")),
        method=str(payload["method"]),
        is_exact=bool(payload["is_exact"]),
        disk_accesses=int(payload.get("disk_accesses", 0)),
        exact_cost_estimate=int(payload.get("exact_cost_estimate", 0)),
    )
