"""The AQP network service: server, client, and wire protocol.

Turns the library-only approximate answer engine into a sessioned
concurrent TCP service (ROADMAP item 1, BlinkDB's framing of AQP as a
service with response-time contracts):

* :mod:`~repro.serving.protocol` -- CRC-framed JSON envelopes reusing
  the WAL codec, with torn-vs-corrupt triage on the wire;
* :mod:`~repro.serving.codec` -- query/response JSON that round-trips
  bit-exactly;
* :mod:`~repro.serving.session` -- per-client handles plus an
  epoch-pinned snapshot view (read-snapshot isolation);
* :mod:`~repro.serving.server` -- the asyncio server: bounded
  admission (typed ``server-busy``), graceful WAL-draining shutdown,
  full ``repro_server_*`` instrumentation;
* :mod:`~repro.serving.client` -- a small typed client.

See ``docs/serving.md`` for the protocol and contract details.
"""

from repro.serving.client import (
    AQPClient,
    NoSynopsisRemote,
    ServerBusy,
    ServerError,
    ServerShuttingDown,
)
from repro.serving.codec import (
    decode_query,
    decode_response,
    encode_query,
    encode_response,
)
from repro.serving.protocol import FrameDecoder, ProtocolError
from repro.serving.server import AQPServer
from repro.serving.session import Session

__all__ = [
    "AQPClient",
    "AQPServer",
    "FrameDecoder",
    "NoSynopsisRemote",
    "ProtocolError",
    "ServerBusy",
    "ServerError",
    "ServerShuttingDown",
    "Session",
    "decode_query",
    "decode_response",
    "encode_query",
    "encode_response",
]
