"""The server's instrument bundle.

One object acquiring every ``repro_server_*`` series from a
:class:`~repro.obs.metrics.MetricsRegistry` (the process-wide null
registry by default, so an uninstrumented server costs nothing).
Every name here has a documented row in ``docs/observability.md`` --
RL014 cross-checks the two.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = ["ServerMetrics"]


class ServerMetrics:
    """Counters, gauges, and histograms for one server instance."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else get_registry()
        registry = self._registry
        self.connections_total: Counter = registry.counter(
            "repro_server_connections_total",
            "Client connections accepted",
        )
        self.sessions_total: Counter = registry.counter(
            "repro_server_sessions_total",
            "Sessions opened over the server's lifetime",
        )
        self.sessions_open: Gauge = registry.gauge(
            "repro_server_sessions_open",
            "Sessions currently open",
        )
        self.in_flight: Gauge = registry.gauge(
            "repro_server_in_flight",
            "Requests currently executing",
        )
        self.queue_depth: Gauge = registry.gauge(
            "repro_server_queue_depth",
            "Requests waiting in the admission queue",
        )
        self.busy_total: Counter = registry.counter(
            "repro_server_busy_total",
            "Requests rejected with server-busy backpressure",
        )
        self.protocol_errors_total: Counter = registry.counter(
            "repro_server_protocol_errors_total",
            "Connections dropped for corrupt or malformed frames",
        )
        self.bytes_read_total: Counter = registry.counter(
            "repro_server_bytes_read_total",
            "Bytes read off client sockets",
        )
        self.bytes_written_total: Counter = registry.counter(
            "repro_server_bytes_written_total",
            "Bytes written to client sockets",
        )
        self.queue_wait_seconds: Histogram = registry.histogram(
            "repro_server_queue_wait_seconds",
            "Time requests spent waiting for an admission slot",
        )

    def requests_total(self, op: str, outcome: str) -> Counter:
        """The request counter series for one ``(op, outcome)``."""
        return self._registry.counter(
            "repro_server_requests_total",
            "Requests handled, by operation and outcome",
            {"op": op, "outcome": outcome},
        )

    def request_seconds(self, op: str) -> Histogram:
        """The end-to-end latency histogram series for one op."""
        return self._registry.histogram(
            "repro_server_request_seconds",
            "End-to-end request latency (queue wait included)",
            {"op": op},
        )
