"""Query-path tracing for the approximate answer engine.

One :class:`QuerySpan` per engine query, recording which synopsis
answered it, the estimator latency, the reported error bounds and
confidence, and whether the caller demanded the exact fallback -- the
runtime counterpart of the paper's "decide whether or not to have an
exact answer computed from the base data".

The engine itself never reads a clock (reprolint RL005/RL009): the
tracer owns an injected :data:`~repro.obs.clock.Clock`, the engine
only shuttles the opaque start value between
:meth:`QueryTracer.begin` and :meth:`QueryTracer.record`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.obs import clock as obs_clock
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["QuerySpan", "QueryTracer"]


@dataclass(frozen=True)
class QuerySpan:
    """One traced engine query.

    Attributes
    ----------
    query:
        Query class name (``"CountQuery"``, ``"HotListQuery"``, ...).
    relation / attribute:
        Query target; join queries record ``"left⋈right"`` pairs.
    method:
        Which synopsis or path produced the answer (the response's
        ``method``), or ``"error"`` when the query raised.
    duration_seconds:
        Wall time between begin and record, by the injected clock.
    is_exact:
        Whether the answer came from base data.
    requested_exact:
        Whether the caller demanded the exact fallback (the
        user-decision half of the paper's Figure 1 loop).
    answer:
        The scalar estimate, or ``None`` for structured/hot-list
        answers and errors.
    interval_low / interval_high / confidence:
        The reported error bound, when the estimator provides one.
    exact_cost_estimate:
        Disk accesses an exact recomputation was estimated to cost.
    error:
        Exception class name when the query raised, else ``None``.
    cache:
        ``"hit"`` or ``"miss"`` when the engine consulted its
        query-result cache, else ``None`` (no cache attached, or the
        exact path, which is never cached).
    """

    query: str
    relation: str
    attribute: str
    method: str
    duration_seconds: float
    is_exact: bool
    requested_exact: bool
    answer: float | None
    interval_low: float | None
    interval_high: float | None
    confidence: float | None
    exact_cost_estimate: int
    error: str | None
    cache: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """The span as a JSON-able dict (exposition/CLI payload)."""
        return {
            "query": self.query,
            "relation": self.relation,
            "attribute": self.attribute,
            "method": self.method,
            "duration_seconds": self.duration_seconds,
            "is_exact": self.is_exact,
            "requested_exact": self.requested_exact,
            "answer": self.answer,
            "interval_low": self.interval_low,
            "interval_high": self.interval_high,
            "confidence": self.confidence,
            "exact_cost_estimate": self.exact_cost_estimate,
            "error": self.error,
            "cache": self.cache,
        }


def _query_target(query: Any) -> tuple[str, str]:
    relation = getattr(query, "relation", None)
    if relation is not None:
        return str(relation), str(getattr(query, "attribute", ""))
    # Join queries carry two sides.
    left = getattr(query, "left_relation", "?")
    right = getattr(query, "right_relation", "?")
    left_attr = getattr(query, "left_attribute", "?")
    right_attr = getattr(query, "right_attribute", "?")
    return f"{left}*{right}", f"{left_attr}*{right_attr}"


class QueryTracer:
    """Per-query spans plus latency/outcome metrics.

    Parameters
    ----------
    registry:
        Metrics sink; defaults to the process-wide active registry
        (a no-op registry unless observability was enabled).
    clock:
        Injected monotonic clock; tests pass a
        :class:`~repro.obs.clock.FakeClock`.
    max_spans:
        Ring-buffer capacity for :meth:`spans`.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        clock: obs_clock.Clock = obs_clock.monotonic,
        max_spans: int = 256,
    ) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._clock = clock
        self._spans: deque[QuerySpan] = deque(maxlen=max_spans)

    # -- the engine-facing protocol ------------------------------------

    def begin(self) -> float:
        """Clock reading handed back opaquely to :meth:`record`."""
        return self._clock()

    def record(
        self,
        query: Any,
        response: Any,
        started: float,
        *,
        requested_exact: bool = False,
        cache: str | None = None,
    ) -> QuerySpan:
        """Close the span for a successfully answered query."""
        interval = getattr(response, "interval", None)
        answer = getattr(response, "answer", None)
        span = self._finish(
            query,
            started,
            method=str(getattr(response, "method", "unknown")),
            is_exact=bool(getattr(response, "is_exact", False)),
            requested_exact=requested_exact,
            answer=float(answer) if isinstance(answer, (int, float)) else None,
            interval_low=(
                float(interval.low) if interval is not None else None
            ),
            interval_high=(
                float(interval.high) if interval is not None else None
            ),
            confidence=(
                float(interval.confidence) if interval is not None else None
            ),
            exact_cost_estimate=int(
                getattr(response, "exact_cost_estimate", 0)
            ),
            error=None,
            cache=cache,
        )
        return span

    def record_error(
        self,
        query: Any,
        error: BaseException,
        started: float,
        *,
        requested_exact: bool = False,
    ) -> QuerySpan:
        """Close the span for a query that raised."""
        return self._finish(
            query,
            started,
            method="error",
            is_exact=False,
            requested_exact=requested_exact,
            answer=None,
            interval_low=None,
            interval_high=None,
            confidence=None,
            exact_cost_estimate=0,
            error=type(error).__name__,
        )

    def spans(self) -> tuple[QuerySpan, ...]:
        """The most recent spans, oldest first."""
        return tuple(self._spans)

    # -- internals ------------------------------------------------------

    def _finish(self, query: Any, started: float, **fields: Any) -> QuerySpan:
        duration = max(0.0, self._clock() - started)
        relation, attribute = _query_target(query)
        span = QuerySpan(
            query=type(query).__name__,
            relation=relation,
            attribute=attribute,
            duration_seconds=duration,
            **fields,
        )
        self._spans.append(span)
        self._export(span)
        return span

    def _export(self, span: QuerySpan) -> None:
        registry = self._registry
        registry.counter(
            "repro_queries_total",
            "Engine queries answered, by query type, path, and exactness",
            {
                "query": span.query,
                "method": span.method,
                "exact": "true" if span.is_exact else "false",
            },
        ).inc()
        registry.histogram(
            "repro_query_seconds",
            "Estimator latency per engine query",
            {"query": span.query},
        ).observe(span.duration_seconds)
        if span.requested_exact:
            registry.counter(
                "repro_exact_fallbacks_total",
                "Queries where the caller demanded the exact fallback",
                {"query": span.query},
            ).inc()
        if span.error is not None:
            registry.counter(
                "repro_query_errors_total",
                "Engine queries that raised",
                {"query": span.query, "error": span.error},
            ).inc()
