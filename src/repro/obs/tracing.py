"""Query-path tracing for the approximate answer engine.

One :class:`QuerySpan` per engine query, recording which synopsis
answered it, the estimator latency, the reported error bounds and
confidence, and whether the caller demanded the exact fallback -- the
runtime counterpart of the paper's "decide whether or not to have an
exact answer computed from the base data".

Spans form one-level trees: every root span carries a deterministic
``trace_id`` (a process-wide sequence, no randomness) and the engine
attaches :class:`ChildSpan` records for the phases of an answer --
cache lookup, synopsis answering, exact fallback, and the calibration
audit shadow.  The ring buffer can be handed off wholesale to a
:class:`~repro.obs.sink.TraceSink` via :meth:`QueryTracer.drain`, which
clears it so every span is exported exactly once.

The engine itself never reads a clock (reprolint RL005/RL009): the
tracer owns an injected :data:`~repro.obs.clock.Clock`; the engine
only shuttles the opaque :class:`ActiveTrace` between
:meth:`QueryTracer.start_trace` and :meth:`QueryTracer.finish`, and
wraps phases in the :meth:`QueryTracer.child` context manager.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs import clock as obs_clock
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "ActiveTrace",
    "ChildScope",
    "ChildSpan",
    "QuerySpan",
    "QueryTracer",
]

#: Process-wide tracer instance sequence: keeps trace ids unique when
#: several tracers drain into one sink, without any randomness (the
#: ids must be deterministic for a given call sequence -- RL001).
_TRACER_SEQUENCE = itertools.count(1)


@dataclass(frozen=True)
class ChildSpan:
    """One phase of an answered query, parented under its root span.

    ``name`` is one of ``"cache_lookup"``, ``"synopsis_answer"``,
    ``"exact_fallback"``, or ``"audit_shadow"``; ``status`` is
    ``"ok"`` unless the phase reports otherwise (cache lookups use
    ``"hit"`` / ``"miss"`` / ``"invalidated"``, failed phases
    ``"error"``).
    """

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    duration_seconds: float
    status: str

    def to_dict(self) -> dict[str, Any]:
        """The child span as a JSON-able dict (one sink record)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
        }


@dataclass(frozen=True)
class QuerySpan:
    """One traced engine query.

    Attributes
    ----------
    query:
        Query class name (``"CountQuery"``, ``"HotListQuery"``, ...).
    relation / attribute:
        Query target; join queries record ``"left⋈right"`` pairs.
    method:
        Which synopsis or path produced the answer (the response's
        ``method``), or ``"error"`` when the query raised.
    duration_seconds:
        Wall time between begin and record, by the injected clock.
    is_exact:
        Whether the answer came from base data.
    requested_exact:
        Whether the caller demanded the exact fallback (the
        user-decision half of the paper's Figure 1 loop).
    answer:
        The scalar estimate, or ``None`` for structured/hot-list
        answers and errors.
    interval_low / interval_high / confidence:
        The reported error bound, when the estimator provides one.
    exact_cost_estimate:
        Disk accesses an exact recomputation was estimated to cost.
    error:
        Exception class name when the query raised, else ``None``.
    cache:
        ``"hit"`` or ``"miss"`` when the engine consulted its
        query-result cache, else ``None`` (no cache attached, or the
        exact path, which is never cached).
    result_cardinality:
        For structured (hot-list) answers, the number of reported
        entries; ``None`` for scalar answers and errors.
    top_value / top_count:
        For structured answers, the top reported item and its
        estimated count; ``None`` otherwise (including empty reports).
    trace_id / span_id / parent_id:
        Trace identity: deterministic, sequence-based ids.  Root spans
        always have ``parent_id is None``.
    children:
        Phase spans attached by the engine, in execution order.
    """

    query: str
    relation: str
    attribute: str
    method: str
    duration_seconds: float
    is_exact: bool
    requested_exact: bool
    answer: float | None
    interval_low: float | None
    interval_high: float | None
    confidence: float | None
    exact_cost_estimate: int
    error: str | None
    cache: str | None = None
    result_cardinality: int | None = None
    top_value: int | None = None
    top_count: float | None = None
    trace_id: str = ""
    span_id: str = ""
    parent_id: str | None = None
    children: tuple[ChildSpan, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """The span as a JSON-able dict (exposition/CLI payload).

        Children are *not* inlined: sinks export them as separate
        flat records keyed by ``trace_id``/``parent_id``, and
        :func:`repro.obs.sink.span_tree` reassembles the tree.
        """
        return {
            "query": self.query,
            "relation": self.relation,
            "attribute": self.attribute,
            "method": self.method,
            "duration_seconds": self.duration_seconds,
            "is_exact": self.is_exact,
            "requested_exact": self.requested_exact,
            "answer": self.answer,
            "interval_low": self.interval_low,
            "interval_high": self.interval_high,
            "confidence": self.confidence,
            "exact_cost_estimate": self.exact_cost_estimate,
            "error": self.error,
            "cache": self.cache,
            "result_cardinality": self.result_cardinality,
            "top_value": self.top_value,
            "top_count": self.top_count,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


class ActiveTrace:
    """An in-flight query trace: identity, start time, child spans.

    Opaque to the engine -- it is created by
    :meth:`QueryTracer.start_trace`, threaded through
    :meth:`QueryTracer.child` scopes, and closed by
    :meth:`QueryTracer.finish` / :meth:`QueryTracer.finish_error`.
    """

    __slots__ = ("trace_id", "root_span_id", "started", "children", "_next")

    def __init__(self, trace_id: str, started: float) -> None:
        self.trace_id = trace_id
        self.root_span_id = f"{trace_id}:0"
        self.started = started
        self.children: list[ChildSpan] = []
        self._next = 1

    def next_span_id(self) -> str:
        """Allocate the next child span id within this trace."""
        span_id = f"{self.trace_id}:{self._next}"
        self._next += 1
        return span_id


class ChildScope:
    """Mutable handle yielded by :meth:`QueryTracer.child`.

    The engine sets :attr:`status` before the scope closes (cache
    outcome, audit failure); an exception escaping the scope forces
    ``"error"``.
    """

    __slots__ = ("status",)

    def __init__(self) -> None:
        self.status = "ok"


def _answer_summary(
    answer: Any,
) -> tuple[int | None, int | None, float | None]:
    """Cardinality and top item of a structured (hot-list) answer.

    Duck-typed on ``entries`` so the obs layer never imports
    ``repro.hotlist``; scalar answers return all-``None``.
    """
    entries = getattr(answer, "entries", None)
    if entries is None:
        return None, None, None
    if not entries:
        return 0, None, None
    top = entries[0]
    return len(entries), int(top.value), float(top.estimated_count)


def _query_target(query: Any) -> tuple[str, str]:
    relation = getattr(query, "relation", None)
    if relation is not None:
        return str(relation), str(getattr(query, "attribute", ""))
    # Join queries carry two sides.
    left = getattr(query, "left_relation", "?")
    right = getattr(query, "right_relation", "?")
    left_attr = getattr(query, "left_attribute", "?")
    right_attr = getattr(query, "right_attribute", "?")
    return f"{left}*{right}", f"{left_attr}*{right_attr}"


class QueryTracer:
    """Per-query spans plus latency/outcome metrics.

    Parameters
    ----------
    registry:
        Metrics sink; defaults to the process-wide active registry
        (a no-op registry unless observability was enabled).
    clock:
        Injected monotonic clock; tests pass a
        :class:`~repro.obs.clock.FakeClock`.
    max_spans:
        Ring-buffer capacity for :meth:`spans`.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        clock: obs_clock.Clock = obs_clock.monotonic,
        max_spans: int = 256,
    ) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._clock = clock
        self._spans: deque[QuerySpan] = deque(maxlen=max_spans)
        self._prefix = f"t{next(_TRACER_SEQUENCE)}"
        self._trace_counter = itertools.count(1)

    # -- the engine-facing protocol ------------------------------------

    def start_trace(self) -> ActiveTrace:
        """Open a trace for one :meth:`answer` call."""
        return ActiveTrace(self._new_trace_id(), self._clock())

    @contextmanager
    def child(self, trace: ActiveTrace, name: str) -> Iterator[ChildScope]:
        """Record one phase of the in-flight query as a child span.

        The yielded :class:`ChildScope` lets the engine set a phase
        status (cache outcome, audit failure); exceptions escaping the
        scope mark the child ``"error"`` and propagate.
        """
        scope = ChildScope()
        started = self._clock()
        try:
            yield scope
        except BaseException:
            scope.status = "error"
            raise
        finally:
            trace.children.append(
                ChildSpan(
                    trace_id=trace.trace_id,
                    span_id=trace.next_span_id(),
                    parent_id=trace.root_span_id,
                    name=name,
                    duration_seconds=max(0.0, self._clock() - started),
                    status=scope.status,
                )
            )

    def finish(
        self,
        trace: ActiveTrace,
        query: Any,
        response: Any,
        *,
        requested_exact: bool = False,
        cache: str | None = None,
    ) -> QuerySpan:
        """Close the trace for a successfully answered query."""
        interval = getattr(response, "interval", None)
        answer = getattr(response, "answer", None)
        cardinality, top_value, top_count = _answer_summary(answer)
        return self._finish(
            trace,
            query,
            method=str(getattr(response, "method", "unknown")),
            is_exact=bool(getattr(response, "is_exact", False)),
            requested_exact=requested_exact,
            answer=float(answer) if isinstance(answer, (int, float)) else None,
            interval_low=(
                float(interval.low) if interval is not None else None
            ),
            interval_high=(
                float(interval.high) if interval is not None else None
            ),
            confidence=(
                float(interval.confidence) if interval is not None else None
            ),
            exact_cost_estimate=int(
                getattr(response, "exact_cost_estimate", 0)
            ),
            error=None,
            cache=cache,
            result_cardinality=cardinality,
            top_value=top_value,
            top_count=top_count,
        )

    def finish_error(
        self,
        trace: ActiveTrace,
        query: Any,
        error: BaseException,
        *,
        requested_exact: bool = False,
    ) -> QuerySpan:
        """Close the trace for a query that raised."""
        return self._finish(
            trace,
            query,
            method="error",
            is_exact=False,
            requested_exact=requested_exact,
            answer=None,
            interval_low=None,
            interval_high=None,
            confidence=None,
            exact_cost_estimate=0,
            error=type(error).__name__,
        )

    # -- the pre-trace protocol (kept for direct callers) --------------

    def begin(self) -> float:
        """Clock reading handed back opaquely to :meth:`record`."""
        return self._clock()

    def record(
        self,
        query: Any,
        response: Any,
        started: float,
        *,
        requested_exact: bool = False,
        cache: str | None = None,
    ) -> QuerySpan:
        """Close a span begun with :meth:`begin` (no child spans)."""
        trace = ActiveTrace(self._new_trace_id(), started)
        return self.finish(
            trace,
            query,
            response,
            requested_exact=requested_exact,
            cache=cache,
        )

    def record_error(
        self,
        query: Any,
        error: BaseException,
        started: float,
        *,
        requested_exact: bool = False,
    ) -> QuerySpan:
        """Close a span begun with :meth:`begin` for a raised query."""
        trace = ActiveTrace(self._new_trace_id(), started)
        return self.finish_error(
            trace, query, error, requested_exact=requested_exact
        )

    # -- buffered spans -------------------------------------------------

    def spans(self) -> tuple[QuerySpan, ...]:
        """The most recent spans, oldest first."""
        return tuple(self._spans)

    def drain(self) -> tuple[QuerySpan, ...]:
        """Hand the buffered spans off and clear the ring buffer.

        The single-export handoff used by
        :meth:`repro.obs.sink.TraceSink.drain`: a span returned here is
        gone from the tracer, so repeated drains never double-export.
        """
        spans = tuple(self._spans)
        self._spans.clear()
        return spans

    # -- internals ------------------------------------------------------

    def _new_trace_id(self) -> str:
        return f"{self._prefix}-{next(self._trace_counter):08d}"

    def _finish(
        self, trace: ActiveTrace, query: Any, **fields: Any
    ) -> QuerySpan:
        duration = max(0.0, self._clock() - trace.started)
        relation, attribute = _query_target(query)
        span = QuerySpan(
            query=type(query).__name__,
            relation=relation,
            attribute=attribute,
            duration_seconds=duration,
            trace_id=trace.trace_id,
            span_id=trace.root_span_id,
            parent_id=None,
            children=tuple(trace.children),
            **fields,
        )
        self._spans.append(span)
        self._export(span)
        return span

    def _export(self, span: QuerySpan) -> None:
        registry = self._registry
        registry.counter(
            "repro_queries_total",
            "Engine queries answered, by query type, path, and exactness",
            {
                "query": span.query,
                "method": span.method,
                "exact": "true" if span.is_exact else "false",
            },
        ).inc()
        registry.histogram(
            "repro_query_seconds",
            "Estimator latency per engine query",
            {"query": span.query},
        ).observe(span.duration_seconds)
        if span.requested_exact:
            registry.counter(
                "repro_exact_fallbacks_total",
                "Queries where the caller demanded the exact fallback",
                {"query": span.query},
            ).inc()
        if span.error is not None:
            registry.counter(
                "repro_query_errors_total",
                "Engine queries that raised",
                {"query": span.query, "error": span.error},
            ).inc()
