"""Bounded trace export: ring buffer plus JSONL file writer.

:class:`TraceSink` takes whole spans off a
:class:`~repro.obs.tracing.QueryTracer` via the single-export
:meth:`~repro.obs.tracing.QueryTracer.drain` handoff, flattens each
root span and its children into one JSON record per span, keeps the
most recent records in a bounded in-process ring, and optionally
appends them to a JSONL file.  File I/O goes through the
``repro.persist`` filesystem helpers (RL010): the sink never calls
``open`` itself, and the ``repro.persist`` import is deferred to call
time so that importing ``repro.obs`` does not drag in
``repro.persist.recovery`` (which imports the engine back -- see the
layering note in ``repro/obs/__init__.py``).

:func:`read_trace_file` and :func:`span_tree` invert the export:
parse the JSONL records and reassemble the one-level span trees, the
round-trip the acceptance tests assert through.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import QuerySpan, QueryTracer

if TYPE_CHECKING:
    from repro.persist.fsio import FileSystem

__all__ = ["TraceSink", "read_trace_file", "span_tree"]


def _span_records(span: QuerySpan) -> list[dict[str, Any]]:
    """One flat JSON record per span: the root, then its children."""
    records = [span.to_dict()]
    records.extend(child.to_dict() for child in span.children)
    return records


class TraceSink:
    """Bounded collector for drained query spans.

    Parameters
    ----------
    capacity:
        Maximum flat records retained in the in-process ring; older
        records are dropped (and counted) once exceeded.
    path:
        Optional JSONL file to append drained records to.
    filesystem:
        Filesystem used for the JSONL writes; defaults to the local
        filesystem when ``path`` is given.  Injectable for tests.
    registry:
        Metrics sink; defaults to the process-wide active registry.
    """

    def __init__(
        self,
        capacity: int = 2048,
        *,
        path: "str | Path | None" = None,
        filesystem: "FileSystem | None" = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._path = Path(path) if path is not None else None
        if filesystem is None and path is not None:
            # Deferred so importing repro.obs never imports repro.persist
            # (whose recovery module imports the engine back).
            from repro.persist.fsio import LocalFileSystem

            filesystem = LocalFileSystem()
        self._filesystem = filesystem
        registry = registry if registry is not None else get_registry()
        self._exported_total = registry.counter(
            "repro_trace_spans_exported_total",
            "Flat span records exported through the trace sink",
        )
        self._drains_total = registry.counter(
            "repro_trace_drains_total",
            "Tracer-to-sink drain handoffs performed",
        )
        self._dropped_total = registry.counter(
            "repro_trace_dropped_records_total",
            "Span records evicted from the bounded trace ring",
        )
        self._file_bytes_total = registry.counter(
            "repro_trace_file_bytes_total",
            "Bytes appended to the JSONL trace file",
        )
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)

    @property
    def path(self) -> "Path | None":
        """The JSONL file records are appended to, if any."""
        return self._path

    def records(self) -> tuple[dict[str, Any], ...]:
        """The buffered flat records, oldest first."""
        return tuple(self._ring)

    def export(self, span: QuerySpan) -> int:
        """Export one span (root + children); returns records written."""
        return self._ingest(_span_records(span))

    def drain(self, tracer: QueryTracer) -> int:
        """Take every buffered span off ``tracer`` and export it.

        The tracer's ring buffer is cleared by the handoff, so a span
        is exported exactly once no matter how often ``drain`` runs.
        Returns the number of flat records exported.
        """
        records: list[dict[str, Any]] = []
        for span in tracer.drain():
            records.extend(_span_records(span))
        return self._ingest(records)

    def _ingest(self, records: list[dict[str, Any]]) -> int:
        self._drains_total.inc()
        if not records:
            return 0
        overflow = len(self._ring) + len(records) - self._capacity
        if overflow > 0:
            self._dropped_total.inc(overflow)
        self._ring.extend(records)
        if self._filesystem is not None and self._path is not None:
            payload = "".join(
                json.dumps(record, sort_keys=True) + "\n"
                for record in records
            ).encode("utf-8")
            stream = self._filesystem.open(self._path, "ab")
            try:
                stream.write(payload)
            finally:
                stream.close()
            self._file_bytes_total.inc(len(payload))
        self._exported_total.inc(len(records))
        return len(records)


def read_trace_file(
    path: "str | Path", filesystem: "FileSystem | None" = None
) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into flat span records."""
    if filesystem is None:
        from repro.persist.fsio import LocalFileSystem

        filesystem = LocalFileSystem()
    text = filesystem.read_bytes(Path(path)).decode("utf-8")
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def span_tree(
    records: list[dict[str, Any]],
) -> dict[str, dict[str, Any]]:
    """Reassemble flat records into ``{trace_id: {span, children}}``.

    Root records are the ones with ``parent_id`` null; children are
    attached to their trace in span-id order.  Raises ``ValueError``
    on duplicate roots or children whose trace has no root -- a
    malformed export should fail loudly, not silently mis-nest.
    """
    trees: dict[str, dict[str, Any]] = {}
    children: list[dict[str, Any]] = []
    for record in records:
        trace_id = record.get("trace_id", "")
        if record.get("parent_id") is None:
            if trace_id in trees:
                raise ValueError(f"duplicate root span for trace {trace_id}")
            trees[trace_id] = {"span": record, "children": []}
        else:
            children.append(record)
    for record in children:
        trace_id = record.get("trace_id", "")
        tree = trees.get(trace_id)
        if tree is None:
            raise ValueError(
                f"child span {record.get('span_id')!r} has no root "
                f"for trace {trace_id}"
            )
        tree["children"].append(record)
    for tree in trees.values():
        # Span ids are "<trace>:<n>"; sort numerically, not
        # lexicographically, so traces survive >9 children.
        tree["children"].sort(
            key=lambda rec: int(str(rec["span_id"]).rsplit(":", 1)[1])
        )
    return trees
