"""Synopsis lifecycle probe: the hook the core layers emit into.

The synopsis maintenance code (``repro.core``) calls the module-level
functions below at its *rare* lifecycle events -- admissions batches,
threshold raises, shard merges, snapshot/restore.  Each call site is
guarded by ``PROBE is None`` (the default), so with observability
disabled the cost is one module-attribute load and a pointer test at
events that already involve hashing or RNG work; the per-element
fast path between events carries no instrumentation at all.

Continuous state (footprint, sample-size, threshold, the
``CostCounters`` ledger) is deliberately *not* pushed through the
probe: :func:`repro.obs.instruments.watch_synopsis` pulls it at
scrape time instead.

This module must stay import-light: ``repro.core`` imports it, so it
may only depend on :mod:`repro.obs.metrics` (never on core/engine).
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_RATIO_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "MetricsProbe",
    "PROBE",
    "install",
    "uninstall",
]


class MetricsProbe:
    """Bridges synopsis lifecycle events into registry instruments.

    All event metrics are labelled by synopsis ``kind`` (the snapshot
    kind string, e.g. ``"concise-sample"``), the aggregation level at
    which fleet-wide dashboards read them; per-instance state comes
    from the scrape-time collectors instead.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._admissions: dict[str, Counter] = {}
        self._raises: dict[str, Counter] = {}
        self._evictions: dict[str, Counter] = {}
        self._survivors: dict[str, Counter] = {}
        self._survivor_ratio: dict[str, Histogram] = {}
        self._raise_factor: dict[str, Histogram] = {}
        self._merges: dict[str, Counter] = {}
        self._merged_shards: dict[str, Counter] = {}
        self._snapshot_ops: dict[tuple[str, str], Counter] = {}
        self._shard_batches: dict[str, Counter] = {}
        self._shard_rows: dict[str, Counter] = {}

    # -- events ---------------------------------------------------------

    def on_admission(self, kind: str, count: int) -> None:
        """``count`` sample points entered a synopsis of ``kind``."""
        counter = self._admissions.get(kind)
        if counter is None:
            counter = self._registry.counter(
                "repro_synopsis_admissions_total",
                "Sample points admitted into synopses",
                {"kind": kind},
            )
            self._admissions[kind] = counter
        counter.inc(count)

    def on_threshold_raise(
        self,
        kind: str,
        old_threshold: float,
        new_threshold: float,
        size_before: int,
        size_after: int,
    ) -> None:
        """One eviction round: tau -> tau' over ``size_before`` points."""
        if kind not in self._raises:
            labels = {"kind": kind}
            self._raises[kind] = self._registry.counter(
                "repro_synopsis_threshold_raises_total",
                "Threshold raises (eviction rounds)",
                labels,
            )
            self._evictions[kind] = self._registry.counter(
                "repro_synopsis_evictions_total",
                "Sample points evicted by threshold raises",
                labels,
            )
            self._survivors[kind] = self._registry.counter(
                "repro_synopsis_eviction_survivors_total",
                "Sample points surviving threshold raises",
                labels,
            )
            self._survivor_ratio[kind] = self._registry.histogram(
                "repro_synopsis_eviction_survivor_ratio",
                "Per-round fraction of sample points surviving a raise",
                labels,
                buckets=DEFAULT_RATIO_BUCKETS,
            )
            self._raise_factor[kind] = self._registry.histogram(
                "repro_synopsis_threshold_raise_factor",
                "Per-round threshold growth factor tau'/tau",
                labels,
                buckets=(1.01, 1.1, 1.25, 1.5, 2.0, 4.0, 16.0),
            )
        self._raises[kind].inc()
        self._evictions[kind].inc(max(0, size_before - size_after))
        self._survivors[kind].inc(size_after)
        if size_before > 0:
            self._survivor_ratio[kind].observe(size_after / size_before)
        if old_threshold > 0:
            self._raise_factor[kind].observe(new_threshold / old_threshold)

    def on_merge(self, kind: str, shards: int) -> None:
        """``shards`` shard synopses of ``kind`` were merged into one."""
        if kind not in self._merges:
            labels = {"kind": kind}
            self._merges[kind] = self._registry.counter(
                "repro_synopsis_merges_total",
                "Shard-merge operations",
                labels,
            )
            self._merged_shards[kind] = self._registry.counter(
                "repro_synopsis_merged_shards_total",
                "Shard synopses consumed by merges",
                labels,
            )
        self._merges[kind].inc()
        self._merged_shards[kind].inc(shards)

    def on_shard_ingest(self, kind: str, shards: int, rows: int) -> None:
        """A batch of ``rows`` was partitioned across ``shards`` shards."""
        if kind not in self._shard_batches:
            labels = {"kind": kind}
            self._shard_batches[kind] = self._registry.counter(
                "repro_sharded_ingest_batches_total",
                "Batches partitioned across shard synopses",
                labels,
            )
            self._shard_rows[kind] = self._registry.counter(
                "repro_sharded_ingest_rows_total",
                "Rows partitioned across shard synopses",
                labels,
            )
        self._shard_batches[kind].inc()
        self._shard_rows[kind].inc(rows)

    def on_snapshot(self, kind: str, op: str) -> None:
        """A synopsis of ``kind`` was dumped/restored (``op``)."""
        counter = self._snapshot_ops.get((kind, op))
        if counter is None:
            counter = self._registry.counter(
                "repro_synopsis_snapshot_events_total",
                "Synopsis snapshot dumps and restores",
                {"kind": kind, "op": op},
            )
            self._snapshot_ops[(kind, op)] = counter
        counter.inc()


# The process-wide probe.  ``None`` (the default) means observability
# is off and every core call site short-circuits on the None test.
PROBE: MetricsProbe | None = None


def install(registry: MetricsRegistry) -> MetricsProbe:
    """Point the synopsis lifecycle hooks at ``registry``."""
    global PROBE
    PROBE = MetricsProbe(registry)
    return PROBE


def uninstall() -> None:
    """Return the lifecycle hooks to their no-op default."""
    global PROBE
    PROBE = None
