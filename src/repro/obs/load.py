"""Warehouse load metering: a registry-backed ``LoadObserver``.

Attach a :class:`MeteredLoadObserver` to a
:class:`~repro.engine.warehouse.DataWarehouse` with ``add_observer``
and every row and batch flowing through the load stream is counted --
per relation, split by insert/delete, with a batch-size histogram and
a scrape-time rows-per-second throughput gauge.  The observer is both
row-capable (``__call__``) and batch-capable (``observe_batch``), so
it meters ``load_batch`` at one event per batch, not per row.

Duck-typed against the warehouse observer protocol on purpose: this
module is imported by ``repro.obs.__init__`` and must not import
``repro.engine``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.obs import clock as obs_clock
from repro.obs.metrics import Counter, MetricsRegistry, get_registry

__all__ = ["MeteredLoadObserver"]

_BATCH_ROW_BUCKETS: tuple[float, ...] = (
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
)


class MeteredLoadObserver:
    """Meters row and batch ingestion throughput per relation."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        clock: obs_clock.Clock = obs_clock.monotonic,
    ) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._clock = clock
        self._started = clock()
        self._rows: dict[tuple[str, str], Counter] = {}
        self._batches: dict[str, Counter] = {}
        self._totals: dict[str, int] = {}
        self._registry.add_collector(self._collect_throughput)

    # -- the warehouse observer protocol --------------------------------

    def __call__(
        self, relation_name: str, row: tuple, is_insert: bool
    ) -> None:
        """Per-row load event (inserts and deletes)."""
        self._count_rows(relation_name, 1, is_insert)

    def observe_batch(
        self, relation_name: str, columns: Mapping[str, np.ndarray]
    ) -> None:
        """Whole-batch load event (``DataWarehouse.load_batch``)."""
        length = len(next(iter(columns.values()))) if columns else 0
        self._count_rows(relation_name, length, True)
        batches = self._batches.get(relation_name)
        if batches is None:
            batches = self._registry.counter(
                "repro_load_batches_total",
                "Columnar load batches ingested",
                {"relation": relation_name},
            )
            self._batches[relation_name] = batches
        batches.inc()
        self._registry.histogram(
            "repro_load_batch_rows",
            "Rows per columnar load batch",
            {"relation": relation_name},
            buckets=_BATCH_ROW_BUCKETS,
        ).observe(float(length))

    # -- bookkeeping ----------------------------------------------------

    def rows_seen(self, relation_name: str) -> int:
        """Rows this observer has metered for a relation."""
        return self._totals.get(relation_name, 0)

    def _count_rows(
        self, relation_name: str, count: int, is_insert: bool
    ) -> None:
        op = "insert" if is_insert else "delete"
        counter = self._rows.get((relation_name, op))
        if counter is None:
            counter = self._registry.counter(
                "repro_load_rows_total",
                "Rows observed on the warehouse load stream",
                {"relation": relation_name, "op": op},
            )
            self._rows[(relation_name, op)] = counter
        counter.inc(count)
        self._totals[relation_name] = (
            self._totals.get(relation_name, 0) + count
        )

    def _collect_throughput(self) -> None:
        """Scrape-time gauge: average rows/second since attachment."""
        elapsed = self._clock() - self._started
        if elapsed <= 0:
            return
        for relation_name, total in self._totals.items():
            self._registry.gauge(
                "repro_load_rows_per_second",
                "Average ingest throughput since the observer attached",
                {"relation": relation_name},
            ).set(total / elapsed)
