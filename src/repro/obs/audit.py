"""Accuracy-calibration auditing for the approximate answer engine.

The paper's value proposition is *quantified* error -- Theorem 4 and
Theorems 6-8 attach confidence intervals to every estimate -- but an
interval is only trustworthy if, in a running system, the true value
actually falls inside it at the claimed rate.  The
:class:`CalibrationAuditor` closes that loop: it shadows a seeded,
deterministic fraction of approximate answers with the exact fallback,
measures the observed relative error against the predicted interval,
and maintains ``repro_audit_*`` metrics -- per-(query, method)
coverage ratios, observed-error and interval-width histograms, and an
error-budget gauge that goes negative the moment empirical coverage
drops below the claimed confidence.

Audit sampling draws from :class:`repro.randkit.ReproRandom` (RL001):
the same seed and call sequence audits the same queries, so coverage
numbers reproduce exactly.

Hot-list answers have no scalar truth of their own, so their shadow
re-asks the *frequency* of the reported top item against base data and
checks it against the reporter's top-count interval -- covering the
paper's hot-list guarantees, not just the scalar estimators.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.randkit import ReproRandom

__all__ = ["AuditObservation", "CalibrationAuditor"]

#: Relative-error histogram buckets: dense near zero, where a healthy
#: estimator should live.
_ERROR_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)

#: Interval width relative to the exact value (how loose the claimed
#: bound is, independent of whether it covered).
_WIDTH_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0)


@dataclass(frozen=True)
class AuditObservation:
    """One shadowed answer: the estimate versus base-data truth.

    ``in_bounds`` is ``None`` when the response carried no interval
    (nothing was claimed, so nothing can be violated); coverage and
    the error budget only aggregate over interval-bearing answers.
    """

    query: str
    method: str
    estimate: float | None
    exact_value: float | None
    relative_error: float | None
    interval_low: float | None
    interval_high: float | None
    confidence: float | None
    in_bounds: bool | None
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """The observation as a JSON-able dict."""
        return {
            "query": self.query,
            "method": self.method,
            "estimate": self.estimate,
            "exact_value": self.exact_value,
            "relative_error": self.relative_error,
            "interval_low": self.interval_low,
            "interval_high": self.interval_high,
            "confidence": self.confidence,
            "in_bounds": self.in_bounds,
            "error": self.error,
        }


class _GroupStats:
    """Running calibration tallies for one (query, method) pair."""

    __slots__ = (
        "shadows",
        "with_interval",
        "in_bounds",
        "confidence_sum",
        "error_sum",
        "error_max",
    )

    def __init__(self) -> None:
        self.shadows = 0
        self.with_interval = 0
        self.in_bounds = 0
        self.confidence_sum = 0.0
        self.error_sum = 0.0
        self.error_max = 0.0

    @property
    def coverage(self) -> float | None:
        if self.with_interval == 0:
            return None
        return self.in_bounds / self.with_interval

    @property
    def mean_confidence(self) -> float | None:
        if self.with_interval == 0:
            return None
        return self.confidence_sum / self.with_interval

    @property
    def error_budget(self) -> float | None:
        """Empirical coverage minus claimed confidence.

        Negative means the intervals are over-claiming: the true value
        escapes the bound more often than the confidence admits.
        """
        coverage = self.coverage
        claimed = self.mean_confidence
        if coverage is None or claimed is None:
            return None
        return coverage - claimed


class CalibrationAuditor:
    """Shadow a seeded fraction of approximate answers with exact ones.

    Parameters
    ----------
    fraction:
        Probability that any given approximate answer is audited.
        ``0`` disables auditing entirely (no random draws are
        consumed); ``1`` audits everything.
    seed:
        Seed for the audit-selection stream (RL001: all randomness via
        ``repro.randkit``).
    registry:
        Metrics sink; defaults to the process-wide active registry.
    max_observations:
        Ring-buffer capacity for :meth:`observations`.
    """

    def __init__(
        self,
        fraction: float,
        *,
        seed: int,
        registry: MetricsRegistry | None = None,
        max_observations: int = 1024,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"audit fraction must be in [0, 1], got {fraction}"
            )
        self.fraction = fraction
        self._random = ReproRandom(seed)
        self._registry = (
            registry if registry is not None else get_registry()
        )
        self._observations: deque[AuditObservation] = deque(
            maxlen=max_observations
        )
        self._groups: dict[tuple[str, str], _GroupStats] = {}

    def should_audit(self, query: Any) -> bool:
        """Seeded coin flip: audit this answer?

        Fractions of exactly 0 or 1 short-circuit without consuming a
        draw, so toggling auditing off does not perturb other seeded
        streams.
        """
        del query  # selection is query-independent by design
        return self._random.bernoulli(self.fraction)

    def shadow(
        self,
        query: Any,
        response: Any,
        exact_answerer: Callable[[Any], Any],
    ) -> AuditObservation | None:
        """Re-answer ``query`` exactly and score the approximate answer.

        ``exact_answerer`` is the engine's exact path
        (``_answer_exact``); the auditor never touches base data
        itself.  Hot-list responses are shadowed through a frequency
        query on the reported top item (see the module docstring);
        empty hot-list reports are skipped (``None`` -- there is no
        claim to check).
        """
        query_kind = type(query).__name__
        method = str(getattr(response, "method", "unknown"))
        shadow_query, estimate = self._shadow_target(query, response)
        if shadow_query is None:
            return None
        try:
            exact_response = exact_answerer(shadow_query)
        except Exception as error:  # noqa: BLE001 - scored, not dropped
            self._registry.counter(
                "repro_audit_errors_total",
                "Audit shadows whose exact re-answer raised",
                {"query": query_kind, "error": type(error).__name__},
            ).inc()
            observation = AuditObservation(
                query=query_kind,
                method=method,
                estimate=estimate,
                exact_value=None,
                relative_error=None,
                interval_low=None,
                interval_high=None,
                confidence=None,
                in_bounds=None,
                error=type(error).__name__,
            )
            self._observations.append(observation)
            return observation
        exact_value = float(exact_response.answer)
        self._registry.counter(
            "repro_audit_exact_disk_accesses_total",
            "Base-data disk accesses estimated spent on audit shadows",
            {"query": query_kind},
        ).inc(max(0, int(getattr(response, "exact_cost_estimate", 0))))
        observation = self._observe(
            query_kind, method, response, estimate, exact_value
        )
        self._observations.append(observation)
        return observation

    def observations(self) -> tuple[AuditObservation, ...]:
        """The most recent audit observations, oldest first."""
        return tuple(self._observations)

    def snapshot(self) -> list[dict[str, Any]]:
        """Per-(query, method) calibration summary, JSON-able."""
        rows: list[dict[str, Any]] = []
        for (query_kind, method), stats in sorted(self._groups.items()):
            rows.append(
                {
                    "query": query_kind,
                    "method": method,
                    "shadows": stats.shadows,
                    "with_interval": stats.with_interval,
                    "in_bounds": stats.in_bounds,
                    "coverage": stats.coverage,
                    "mean_claimed_confidence": stats.mean_confidence,
                    "error_budget": stats.error_budget,
                    "mean_relative_error": (
                        stats.error_sum / stats.shadows
                        if stats.shadows
                        else None
                    ),
                    "max_relative_error": stats.error_max,
                }
            )
        return rows

    # -- internals ------------------------------------------------------

    def _shadow_target(
        self, query: Any, response: Any
    ) -> tuple[Any, float | None]:
        """The query to re-answer exactly, and the scalar under audit."""
        answer = getattr(response, "answer", None)
        entries = getattr(answer, "entries", None)
        if entries is None:
            return query, (
                float(answer) if isinstance(answer, (int, float)) else None
            )
        if not entries:
            return None, None
        # Hot list: audit the top item's estimated count against its
        # exact frequency (the exact hot-list answer only keeps top-k,
        # so the reported item could be legitimately absent from it).
        from repro.engine.queries import FrequencyQuery

        top = entries[0]
        shadow = FrequencyQuery(
            relation=query.relation,
            attribute=query.attribute,
            value=int(top.value),
        )
        return shadow, float(top.estimated_count)

    def _observe(
        self,
        query_kind: str,
        method: str,
        response: Any,
        estimate: float | None,
        exact_value: float,
    ) -> AuditObservation:
        interval = getattr(response, "interval", None)
        relative_error = None
        if estimate is not None:
            relative_error = abs(estimate - exact_value) / max(
                abs(exact_value), 1.0
            )
        interval_low = interval_high = confidence = None
        in_bounds: bool | None = None
        if interval is not None:
            interval_low = float(interval.low)
            interval_high = float(interval.high)
            confidence = float(interval.confidence)
            in_bounds = interval_low <= exact_value <= interval_high
        self._export(
            query_kind, method, relative_error, interval, in_bounds,
            exact_value,
        )
        stats = self._groups.setdefault(
            (query_kind, method), _GroupStats()
        )
        stats.shadows += 1
        if relative_error is not None:
            stats.error_sum += relative_error
            stats.error_max = max(stats.error_max, relative_error)
        if in_bounds is not None:
            stats.with_interval += 1
            stats.confidence_sum += confidence or 0.0
            if in_bounds:
                stats.in_bounds += 1
        self._export_group(query_kind, method, stats)
        return AuditObservation(
            query=query_kind,
            method=method,
            estimate=estimate,
            exact_value=exact_value,
            relative_error=relative_error,
            interval_low=interval_low,
            interval_high=interval_high,
            confidence=confidence,
            in_bounds=in_bounds,
        )

    def _export(
        self,
        query_kind: str,
        method: str,
        relative_error: float | None,
        interval: Any,
        in_bounds: bool | None,
        exact_value: float,
    ) -> None:
        registry = self._registry
        labels = {"query": query_kind, "method": method}
        registry.counter(
            "repro_audit_shadows_total",
            "Approximate answers shadowed with the exact fallback",
            labels,
        ).inc()
        if relative_error is not None:
            registry.histogram(
                "repro_audit_relative_error",
                "Observed |estimate - exact| / max(|exact|, 1)"
                " on audited answers",
                labels,
                buckets=_ERROR_BUCKETS,
            ).observe(relative_error)
        if in_bounds is None:
            return
        if in_bounds:
            registry.counter(
                "repro_audit_in_bounds_total",
                "Audited answers whose exact value fell inside the"
                " claimed interval",
                labels,
            ).inc()
        else:
            registry.counter(
                "repro_audit_out_of_bounds_total",
                "Audited answers whose exact value escaped the claimed"
                " interval",
                labels,
            ).inc()
        registry.histogram(
            "repro_audit_interval_width_ratio",
            "Claimed interval width / max(|exact|, 1) on audited answers",
            labels,
            buckets=_WIDTH_BUCKETS,
        ).observe(
            (float(interval.high) - float(interval.low))
            / max(abs(exact_value), 1.0)
        )

    def _export_group(
        self, query_kind: str, method: str, stats: _GroupStats
    ) -> None:
        if stats.with_interval == 0:
            return
        registry = self._registry
        labels = {"query": query_kind, "method": method}
        registry.gauge(
            "repro_audit_coverage_ratio",
            "Fraction of audited answers whose exact value fell inside"
            " the claimed interval",
            labels,
        ).set(stats.coverage or 0.0)
        registry.gauge(
            "repro_audit_error_budget",
            "Empirical coverage minus claimed confidence; negative"
            " means intervals over-claim",
            labels,
        ).set(stats.error_budget or 0.0)
