"""Exposition: render a registry as Prometheus text or JSON.

:func:`render_prometheus` emits the Prometheus text exposition format
(version 0.0.4: ``# HELP`` / ``# TYPE`` headers, cumulative
``_bucket{le=...}`` rows for histograms); :func:`render_json` emits a
structured snapshot for programmatic consumers and the
``python -m repro.obs`` CLI.  :func:`parse_prometheus` inverts the
text format back into ``{name: {labels: value}}`` -- the round-trip
the selftest and the metrics tests assert through.
"""

from __future__ import annotations

import math
import re
from typing import Any

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelSet,
    MetricsRegistry,
)

__all__ = ["parse_prometheus", "render_json", "render_prometheus"]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: LabelSet, extra: str = "") -> str:
    parts = [f'{key}="{_escape_label(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _format_bound(bound: float) -> str:
    return _format_value(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (scrape payload)."""
    lines: list[str] = []
    for family in registry.collect():
        if family.help_text:
            lines.append(f"# HELP {family.name} {family.help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, instrument in sorted(family.series.items()):
            if isinstance(instrument, Histogram):
                for bound, cumulative in instrument.cumulative():
                    le = f'le="{_format_bound(bound)}"'
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_format_labels(labels, le)} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)}"
                    f" {_format_value(instrument.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(labels)}"
                    f" {instrument.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_format_labels(labels)}"
                    f" {_format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def render_json(registry: MetricsRegistry) -> dict[str, Any]:
    """The registry as a JSON-able snapshot dict."""
    metrics: list[dict[str, Any]] = []
    for family in registry.collect():
        series: list[dict[str, Any]] = []
        for labels, instrument in sorted(family.series.items()):
            entry: dict[str, Any] = {"labels": dict(labels)}
            if isinstance(instrument, Histogram):
                entry["sum"] = instrument.sum
                entry["count"] = instrument.count
                entry["buckets"] = [
                    [_format_bound(bound), cumulative]
                    for bound, cumulative in instrument.cumulative()
                ]
            elif isinstance(instrument, (Counter, Gauge)):
                entry["value"] = instrument.value
            series.append(entry)
        metrics.append(
            {
                "name": family.name,
                "type": family.kind,
                "help": family.help_text,
                "series": series,
            }
        )
    return {"metrics": metrics}


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')


_UNESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape_label(value: str) -> str:
    """Invert :func:`_escape_label` with a single left-to-right scan.

    Chained ``str.replace`` calls cannot do this correctly: a label
    containing a literal backslash followed by ``n`` escapes to
    ``\\\\n``, which a ``\\n``-first replacement chain would decode as
    backslash + newline instead of backslash + ``n``.
    """
    if "\\" not in value:
        return value
    out: list[str] = []
    index = 0
    length = len(value)
    while index < length:
        char = value[index]
        if char == "\\" and index + 1 < length:
            out.append(_UNESCAPES.get(value[index + 1], value[index + 1]))
            index += 2
            continue
        out.append(char)
        index += 1
    return "".join(out)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> dict[str, dict[LabelSet, float]]:
    """Parse Prometheus text exposition into ``{name: {labels: value}}``.

    Histogram series come back under their flattened sample names
    (``<name>_bucket`` with an ``le`` label, ``<name>_sum``,
    ``<name>_count``), exactly as scraped.
    """
    samples: dict[str, dict[LabelSet, float]] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw_line!r}")
        labels: LabelSet = tuple(
            sorted(
                (key, _unescape_label(value))
                for key, value in _LABEL_PAIR.findall(
                    match.group("labels") or ""
                )
            )
        )
        samples.setdefault(match.group("name"), {})[labels] = _parse_value(
            match.group("value")
        )
    return samples
