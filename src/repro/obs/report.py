"""The ops health report: "is the approximation trustworthy right now".

:func:`render_health_report` turns a registry snapshot (the
:func:`~repro.obs.exposition.render_json` payload) and/or a drained
trace file (flat records from :func:`~repro.obs.sink.read_trace_file`)
into a plain-text report a human can read in one terminal screen:
per-method calibration (audited coverage vs claimed confidence, with
an ALERT verdict the moment the error budget goes negative), query
latency percentiles recovered from histogram buckets, cache hit rate,
serving health (sessions, admission-gate state, per-endpoint request
latency), cluster fleet health (shards up, failovers, per-shard
round-trip latency), durability counters, and a trace digest.  Any
``repro_``-prefixed family no section knows how to read is named in
an "unrecognized series" footer rather than silently dropped.

The module is pure data-shuffling: it never imports the engine or
touches a clock, so the report can run against snapshots exported from
another process entirely -- the "survives a process boundary" half of
the trace-export story.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["histogram_quantile", "render_health_report"]


def histogram_quantile(
    rows: Sequence[tuple[float, float]], quantile: float
) -> float | None:
    """Estimate a quantile from cumulative histogram buckets.

    ``rows`` are ``(upper_bound, cumulative_count)`` pairs in
    ascending bound order with the ``+Inf`` bucket last -- exactly the
    shape :meth:`~repro.obs.metrics.Histogram.cumulative` and the
    JSON snapshot emit.  Linear interpolation within the winning
    bucket, the same convention as PromQL's ``histogram_quantile``;
    observations in the ``+Inf`` bucket clamp to the highest finite
    bound.  Returns ``None`` on empty data.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if not rows:
        return None
    total = rows[-1][1]
    if total <= 0:
        return None
    target = quantile * total
    previous_bound = 0.0
    previous_cumulative = 0.0
    for bound, cumulative in rows:
        if cumulative >= target:
            if math.isinf(bound):
                return previous_bound
            if cumulative <= previous_cumulative:
                return bound
            fraction = (target - previous_cumulative) / (
                cumulative - previous_cumulative
            )
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound, previous_cumulative = bound, cumulative
    return previous_bound


def _parse_bound(text: str | float) -> float:
    if isinstance(text, (int, float)):
        return float(text)
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _families(metrics: Mapping[str, Any]) -> dict[str, list[dict[str, Any]]]:
    """Index a JSON snapshot: metric name -> its series list."""
    indexed: dict[str, list[dict[str, Any]]] = {}
    for family in metrics.get("metrics", []):
        indexed[family["name"]] = family.get("series", [])
    return indexed


def _series_values(
    families: Mapping[str, list[dict[str, Any]]], name: str
) -> dict[tuple[tuple[str, str], ...], float]:
    """Flat ``{sorted-labels: value}`` view of a counter/gauge family."""
    values: dict[tuple[tuple[str, str], ...], float] = {}
    for entry in families.get(name, []):
        labels = tuple(sorted(entry.get("labels", {}).items()))
        values[labels] = float(entry.get("value", 0.0))
    return values


def _fmt(value: float | None, digits: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _table(
    header: Sequence[str], rows: Iterable[Sequence[str]]
) -> list[str]:
    """Render an aligned plain-text table."""
    materialized = [list(header)] + [list(row) for row in rows]
    widths = [
        max(len(row[column]) for row in materialized)
        for column in range(len(header))
    ]
    lines = []
    for index, row in enumerate(materialized):
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines


def _calibration_section(
    families: Mapping[str, list[dict[str, Any]]],
) -> list[str]:
    shadows = _series_values(families, "repro_audit_shadows_total")
    in_bounds = _series_values(families, "repro_audit_in_bounds_total")
    out_bounds = _series_values(families, "repro_audit_out_of_bounds_total")
    coverage = _series_values(families, "repro_audit_coverage_ratio")
    budget = _series_values(families, "repro_audit_error_budget")
    if not shadows:
        return ["  no audit data (auditor not attached or fraction 0)"]
    rows = []
    alerts = 0
    for labels in sorted(shadows):
        label_map = dict(labels)
        group_budget = budget.get(labels)
        verdict = "-"
        if group_budget is not None:
            verdict = "ALERT" if group_budget < 0 else "ok"
            alerts += group_budget < 0
        rows.append(
            [
                label_map.get("query", "?"),
                label_map.get("method", "?"),
                f"{shadows[labels]:.0f}",
                f"{in_bounds.get(labels, 0.0):.0f}",
                f"{out_bounds.get(labels, 0.0):.0f}",
                _fmt(coverage.get(labels)),
                _fmt(group_budget),
                verdict,
            ]
        )
    lines = _table(
        (
            "query",
            "method",
            "shadows",
            "in",
            "out",
            "coverage",
            "budget",
            "verdict",
        ),
        rows,
    )
    if alerts:
        lines.append("")
        lines.append(
            f"  !! {alerts} group(s) below claimed confidence -- "
            "intervals are over-claiming"
        )
    return ["  " + line for line in lines]


def _latency_section(
    families: Mapping[str, list[dict[str, Any]]],
) -> list[str]:
    series = families.get("repro_query_seconds", [])
    if not series:
        return ["  no latency data"]
    rows = []
    for entry in sorted(
        series, key=lambda item: sorted(item.get("labels", {}).items())
    ):
        buckets = [
            (_parse_bound(bound), float(cumulative))
            for bound, cumulative in entry.get("buckets", [])
        ]
        rows.append(
            [
                dict(entry.get("labels", {})).get("query", "?"),
                f"{entry.get('count', 0)}",
                _fmt_seconds(histogram_quantile(buckets, 0.50)),
                _fmt_seconds(histogram_quantile(buckets, 0.90)),
                _fmt_seconds(histogram_quantile(buckets, 0.99)),
            ]
        )
    return [
        "  " + line
        for line in _table(("query", "count", "p50", "p90", "p99"), rows)
    ]


def _cache_section(
    families: Mapping[str, list[dict[str, Any]]],
) -> list[str]:
    hits = sum(
        _series_values(families, "repro_query_cache_hits_total").values()
    )
    misses = sum(
        _series_values(families, "repro_query_cache_misses_total").values()
    )
    invalidations = sum(
        _series_values(
            families, "repro_query_cache_invalidations_total"
        ).values()
    )
    evictions = sum(
        _series_values(
            families, "repro_query_cache_evictions_total"
        ).values()
    )
    lookups = hits + misses
    if lookups == 0:
        return ["  no cache traffic"]
    return [
        f"  lookups {lookups:.0f}  hits {hits:.0f}  misses {misses:.0f}"
        f"  invalidations {invalidations:.0f}  evictions {evictions:.0f}",
        f"  hit rate {hits / lookups:.1%}",
    ]


#: Durability counters surfaced verbatim when present in the snapshot.
_DURABILITY_METRICS = (
    "repro_wal_appends_total",
    "repro_wal_batch_appends_total",
    "repro_wal_bytes_written_total",
    "repro_wal_fsyncs_total",
    "repro_wal_truncated_segments_total",
    "repro_checkpoints_total",
    "repro_checkpoint_writes_total",
    "repro_checkpoint_pruned_total",
    "repro_recovery_runs_total",
    "repro_recovery_replayed_operations_total",
    "repro_recovery_torn_tails_total",
    "repro_recovery_seconds",
)


def _durability_section(
    families: Mapping[str, list[dict[str, Any]]],
) -> list[str]:
    lines = []
    for name in _DURABILITY_METRICS:
        series = families.get(name)
        if not series:
            continue
        total = 0.0
        for entry in series:
            if "value" in entry:
                total += float(entry["value"])
            else:
                total += float(entry.get("sum", 0.0))
        lines.append(f"  {name} {total:g}")
    return lines or ["  no durability data"]


#: Serving counters/gauges surfaced on the summary line when present.
_SERVING_SUMMARY_METRICS = (
    ("connections", "repro_server_connections_total"),
    ("sessions", "repro_server_sessions_total"),
    ("open", "repro_server_sessions_open"),
    ("in-flight", "repro_server_in_flight"),
    ("queued", "repro_server_queue_depth"),
    ("busy", "repro_server_busy_total"),
    ("protocol-errors", "repro_server_protocol_errors_total"),
)


def _serving_section(
    families: Mapping[str, list[dict[str, Any]]],
) -> list[str]:
    """Serving health: admission state plus per-endpoint latency.

    Summarizes the ``repro_server_*`` family exported by
    :class:`~repro.serving.server.AQPServer`: connection/session
    counts, admission-gate state (in-flight, queued, busy refusals),
    protocol errors, and p50/p90/p99 per operation recovered from the
    ``repro_server_request_seconds`` histogram buckets.
    """
    present = any(
        families.get(name) for _, name in _SERVING_SUMMARY_METRICS
    ) or families.get("repro_server_request_seconds")
    if not present:
        return ["  no serving data (no AQPServer metrics in snapshot)"]
    summary = "  ".join(
        f"{label} {sum(_series_values(families, name).values()):g}"
        for label, name in _SERVING_SUMMARY_METRICS
    )
    lines = ["  " + summary]
    outcomes: dict[str, dict[str, float]] = {}
    for labels, value in _series_values(
        families, "repro_server_requests_total"
    ).items():
        label_map = dict(labels)
        per_op = outcomes.setdefault(label_map.get("op", "?"), {})
        per_op[label_map.get("outcome", "?")] = (
            per_op.get(label_map.get("outcome", "?"), 0.0) + value
        )
    rows = []
    for entry in sorted(
        families.get("repro_server_request_seconds", []),
        key=lambda item: sorted(item.get("labels", {}).items()),
    ):
        op = dict(entry.get("labels", {})).get("op", "?")
        buckets = [
            (_parse_bound(bound), float(cumulative))
            for bound, cumulative in entry.get("buckets", [])
        ]
        per_op = outcomes.get(op, {})
        rows.append(
            [
                op,
                f"{entry.get('count', 0)}",
                f"{per_op.get('ok', 0.0):.0f}",
                f"{per_op.get('error', 0.0):.0f}",
                f"{per_op.get('busy', 0.0):.0f}",
                _fmt_seconds(histogram_quantile(buckets, 0.50)),
                _fmt_seconds(histogram_quantile(buckets, 0.90)),
                _fmt_seconds(histogram_quantile(buckets, 0.99)),
            ]
        )
    if rows:
        lines.append("")
        lines.extend(
            "  " + line
            for line in _table(
                ("op", "count", "ok", "error", "busy", "p50", "p90", "p99"),
                rows,
            )
        )
    return lines


#: Cluster fleet gauges/counters surfaced on the summary line.
_CLUSTER_SUMMARY_METRICS = (
    ("failovers", "repro_cluster_failovers_total"),
    ("restarts", "repro_cluster_restarts_total"),
    ("degraded-answers", "repro_cluster_degraded_answers_total"),
)


def _cluster_quantiles(
    families: Mapping[str, list[dict[str, Any]]], name: str
) -> dict[str, tuple[int, float | None, float | None]]:
    """Per-shard ``(count, p50, p99)`` from one latency histogram."""
    quantiles: dict[str, tuple[int, float | None, float | None]] = {}
    for entry in families.get(name, []):
        shard = dict(entry.get("labels", {})).get("shard", "?")
        buckets = [
            (_parse_bound(bound), float(cumulative))
            for bound, cumulative in entry.get("buckets", [])
        ]
        quantiles[shard] = (
            int(entry.get("count", 0)),
            histogram_quantile(buckets, 0.50),
            histogram_quantile(buckets, 0.99),
        )
    return quantiles


def _cluster_section(
    families: Mapping[str, list[dict[str, Any]]],
) -> list[str]:
    """Cluster fleet health: failover counters plus per-shard latency.

    Summarizes the ``repro_cluster_*`` family exported by
    :class:`~repro.cluster.ShardedWarehouse`: shards up vs configured
    (with a DEGRADED banner while any worker is down or recovering),
    failover/restart/degraded-answer counters, and a per-shard table
    of scattered rows with ingest and query round-trip p50/p99
    recovered from the coordinator-side histograms.
    """
    totals = _series_values(families, "repro_cluster_shards_total")
    present = bool(totals) or any(
        families.get(name) for _, name in _CLUSTER_SUMMARY_METRICS
    )
    if not present:
        return ["  no cluster data (no ShardedWarehouse metrics in snapshot)"]
    up = sum(_series_values(families, "repro_cluster_shards_up").values())
    total = sum(totals.values())
    degraded = sum(
        _series_values(families, "repro_cluster_degraded").values()
    )
    summary = f"  shards {up:g}/{total:g}"
    if degraded:
        summary += "  DEGRADED"
    summary += "  " + "  ".join(
        f"{label} {sum(_series_values(families, name).values()):g}"
        for label, name in _CLUSTER_SUMMARY_METRICS
    )
    lines = [summary]
    rows_by_shard = {
        dict(labels).get("shard", "?"): value
        for labels, value in _series_values(
            families, "repro_cluster_ingest_rows_total"
        ).items()
    }
    ingest = _cluster_quantiles(
        families, "repro_cluster_shard_ingest_seconds"
    )
    query = _cluster_quantiles(
        families, "repro_cluster_shard_query_seconds"
    )
    shards = sorted(
        set(rows_by_shard) | set(ingest) | set(query),
        key=lambda shard: (len(shard), shard),
    )
    table_rows = []
    for shard in shards:
        _, ingest_p50, ingest_p99 = ingest.get(shard, (0, None, None))
        query_count, query_p50, query_p99 = query.get(
            shard, (0, None, None)
        )
        table_rows.append(
            [
                shard,
                f"{rows_by_shard.get(shard, 0.0):.0f}",
                _fmt_seconds(ingest_p50),
                _fmt_seconds(ingest_p99),
                f"{query_count}",
                _fmt_seconds(query_p50),
                _fmt_seconds(query_p99),
            ]
        )
    if table_rows:
        lines.append("")
        lines.extend(
            "  " + line
            for line in _table(
                (
                    "shard",
                    "rows",
                    "ingest-p50",
                    "ingest-p99",
                    "queries",
                    "query-p50",
                    "query-p99",
                ),
                table_rows,
            )
        )
    return lines


#: Every metric-name prefix a report section knows how to read.  The
#: trailing underscore is deliberate: these are prefixes, not series
#: names, and must not collide with the RL014 catalogue contract.
_KNOWN_SERIES_PREFIXES = (
    "repro_audit_",
    "repro_checkpoint_",
    "repro_checkpoints_",
    "repro_cluster_",
    "repro_cost_",
    "repro_exact_",
    "repro_load_",
    "repro_queries_",
    "repro_query_",
    "repro_recovery_",
    "repro_server_",
    "repro_sharded_",
    "repro_synopsis_",
    "repro_trace_",
    "repro_wal_",
)


def _unrecognized_series(
    families: Mapping[str, list[dict[str, Any]]],
) -> list[str]:
    """Snapshot families no report section knows how to read.

    A snapshot can carry series this report was not written for -- a
    newer exporter, a renamed subsystem.  Silently dropping them makes
    the report lie by omission, so any ``repro_``-prefixed family
    matching none of the known subsystem prefixes is named in a
    footer instead.
    """
    return sorted(
        name
        for name in families
        if name.startswith("repro_")
        and not name.startswith(_KNOWN_SERIES_PREFIXES)
    )


def _trace_section(traces: Sequence[Mapping[str, Any]]) -> list[str]:
    roots = [
        record for record in traces if record.get("parent_id") is None
    ]
    children = [
        record for record in traces if record.get("parent_id") is not None
    ]
    if not roots:
        return ["  no trace data"]
    lines = [
        f"  {len(roots)} root span(s), {len(children)} child span(s)"
    ]
    slowest = max(
        roots, key=lambda record: record.get("duration_seconds", 0.0)
    )
    lines.append(
        "  slowest: "
        f"{slowest.get('query', '?')} on "
        f"{slowest.get('relation', '?')}.{slowest.get('attribute', '?')}"
        f" ({_fmt_seconds(slowest.get('duration_seconds'))},"
        f" trace {slowest.get('trace_id', '?')})"
    )
    by_phase: dict[str, list[float]] = {}
    for record in children:
        by_phase.setdefault(str(record.get("name", "?")), []).append(
            float(record.get("duration_seconds", 0.0))
        )
    for phase in sorted(by_phase):
        durations = by_phase[phase]
        lines.append(
            f"  {phase}: {len(durations)} span(s), mean "
            f"{_fmt_seconds(sum(durations) / len(durations))}"
        )
    return lines


def render_health_report(
    metrics: Mapping[str, Any] | None = None,
    traces: Sequence[Mapping[str, Any]] | None = None,
) -> str:
    """Render the plain-text ops health report.

    ``metrics`` is a JSON registry snapshot
    (:func:`~repro.obs.exposition.render_json` output); ``traces`` is
    a list of flat span records
    (:func:`~repro.obs.sink.read_trace_file` output).  Either may be
    omitted; each section degrades to a "no data" line.
    """
    families = _families(metrics) if metrics is not None else {}
    sections = [
        ("calibration (audited coverage vs claimed confidence)",
         _calibration_section(families)),
        ("query latency", _latency_section(families)),
        ("query-result cache", _cache_section(families)),
        ("serving", _serving_section(families)),
        ("cluster", _cluster_section(families)),
        ("durability", _durability_section(families)),
        ("traces", _trace_section(traces if traces is not None else [])),
    ]
    lines = ["repro health report", "===================", ""]
    for title, body in sections:
        lines.append(title)
        lines.extend(body)
        lines.append("")
    unrecognized = _unrecognized_series(families)
    if unrecognized:
        lines.append("unrecognized series (no report section reads these)")
        lines.extend("  " + name for name in unrecognized)
        lines.append("")
    return "\n".join(lines)
