"""``python -m repro.obs``: dump, tail, selftest, or health-report.

Runs an example warehouse workload (zipf-skewed sales stream feeding
concise/counting/reservoir synopses through the engine, with traced,
cached, and calibration-audited queries) under full instrumentation,
then renders the registry:

* default / ``--format prometheus|json``: one dump after the workload
* ``--tail N``: ingest in ``N`` rounds, rendering after each round
* ``--selftest``: assert the Prometheus round-trip (parsed gauge
  values must equal ``sample_size`` / ``footprint`` / ``CostCounters``
  read directly from the synopses), the audit metric registrations,
  and the trace-sink JSONL round-trip -- and exit 0/1.
* ``report``: render the plain-text ops health report, either from
  ``--metrics``/``--trace`` files exported elsewhere or from a fresh
  demo workload when neither is given; ``--serving`` additionally
  drives a loopback :class:`~repro.serving.server.AQPServer` so the
  serving section has data, and ``--cluster`` a two-shard
  :class:`~repro.cluster.ShardedWarehouse` (one failover included)
  so the cluster section has data.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Any

from repro import obs
from repro.obs.metrics import MetricsRegistry


def build_workload(
    registry: MetricsRegistry, seed: int
) -> dict[str, Any]:
    """An instrumented warehouse + engine over a sales relation."""
    from repro.core import ConciseSample, CountingSample, ReservoirSample
    from repro.engine import ApproximateAnswerEngine, DataWarehouse
    from repro.engine.cache import QueryResultCache
    from repro.hotlist import CountingHotList

    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["store", "item"])
    cache = QueryResultCache(capacity=64, registry=registry)
    auditor = obs.CalibrationAuditor(
        1.0, seed=seed + 5, registry=registry
    )
    engine = ApproximateAnswerEngine(
        warehouse,
        budget_words=16_384,
        cache=cache,
        auditor=auditor,
    )

    concise = ConciseSample(1_000, seed=seed + 1)
    counting = CountingSample(1_000, seed=seed + 2)
    reservoir = ReservoirSample(500, seed=seed + 3)
    hotlist = CountingHotList(footprint_bound=500, seed=seed + 4)
    engine.register_sample("sales", "item", concise)
    engine.register_sample("sales", "store", counting)
    engine.register_hotlist("sales", "item", hotlist)

    obs.watch_synopsis(registry, concise, "sales.item")
    obs.watch_synopsis(registry, counting, "sales.store")
    obs.watch_synopsis(registry, reservoir, "sales.item/reservoir")

    loader = obs.MeteredLoadObserver(registry)
    warehouse.add_observer(loader)
    tracer = obs.QueryTracer(registry)
    engine.tracer = tracer
    sink = obs.TraceSink(capacity=256, registry=registry)

    return {
        "warehouse": warehouse,
        "engine": engine,
        "tracer": tracer,
        "loader": loader,
        "auditor": auditor,
        "cache": cache,
        "sink": sink,
        "reservoir": reservoir,
        "synopses": {
            "sales.item": concise,
            "sales.store": counting,
            "sales.item/reservoir": reservoir,
        },
    }


def ingest_round(
    workload: dict[str, Any], rows: int, seed: int
) -> None:
    """Load one batch of skewed sales rows and run traced queries."""
    from repro.engine import CountQuery, FrequencyQuery, HotListQuery
    from repro.estimators import Predicate
    from repro.streams import zipf_stream

    items = zipf_stream(rows, 5_000, 1.25, seed=seed)
    stores = zipf_stream(rows, 50, 0.5, seed=seed + 1)
    workload["warehouse"].load_batch(
        "sales", {"store": stores, "item": items}
    )
    workload["reservoir"].insert_array(items)

    engine = workload["engine"]
    engine.answer(CountQuery("sales", "item", Predicate(high=100)))
    engine.answer(FrequencyQuery("sales", "item", value=1))
    engine.answer(HotListQuery("sales", "item", k=5))
    engine.answer(
        CountQuery("sales", "store", Predicate(high=10)), exact=True
    )


def serving_round(
    registry: MetricsRegistry, rows: int, seed: int
) -> None:
    """Serve a small workload over a real socket.

    Spins an :class:`~repro.serving.server.AQPServer` on a loopback
    port against its own warehouse, drives one client through
    hello/ingest/snapshot/query/bye (including one failing query so an
    error outcome registers), and shuts down -- populating every
    ``repro_server_*`` series on ``registry`` for the report's serving
    section.
    """
    import asyncio

    from repro.core import ConciseSample
    from repro.engine import (
        ApproximateAnswerEngine,
        CountQuery,
        DataWarehouse,
        HotListQuery,
    )
    from repro.estimators import Predicate
    from repro.hotlist import CountingHotList
    from repro.serving import AQPClient, AQPServer, ServerError
    from repro.streams import zipf_stream

    async def run() -> None:
        warehouse = DataWarehouse()
        warehouse.create_relation("sales", ["item"])
        engine = ApproximateAnswerEngine(warehouse)
        engine.register_sample(
            "sales", "item", ConciseSample(500, seed=seed + 1)
        )
        engine.register_hotlist(
            "sales",
            "item",
            CountingHotList(footprint_bound=200, seed=seed + 2),
        )
        server = AQPServer(warehouse, engine, registry=registry)
        host, port = await server.start()
        try:
            client = await AQPClient.connect(host, port)
            await client.hello()
            items = zipf_stream(rows, 1_000, 1.25, seed=seed + 3)
            await client.ingest(
                "sales", {"item": [int(value) for value in items]}
            )
            await client.snapshot()
            await client.query(
                CountQuery("sales", "item", Predicate(high=100))
            )
            await client.query(HotListQuery("sales", "item", k=5))
            await client.query(CountQuery("sales", "item"), mode="live")
            try:
                await client.query(CountQuery("sales", "store"))
            except ServerError:
                pass
            await client.bye()
        finally:
            await server.shutdown()

    asyncio.run(run())


def cluster_round(
    registry: MetricsRegistry, rows: int, seed: int
) -> None:
    """Drive a small sharded-warehouse round, failover included.

    Boots a two-shard :class:`~repro.cluster.ShardedWarehouse` over a
    throwaway directory, scatters a zipf batch, answers routed and
    scattered queries, then kills one worker and answers degraded
    before letting the coordinator restart it -- populating every
    ``repro_cluster_*`` series on ``registry`` for the report's
    cluster section.
    """
    from repro.cluster import ShardedWarehouse
    from repro.engine import CountQuery, FrequencyQuery, HotListQuery
    from repro.streams import zipf_stream

    directory = tempfile.mkdtemp(prefix="repro-obs-cluster-")
    try:
        with ShardedWarehouse(
            2, directory, seed=seed, registry=registry
        ) as cluster:
            cluster.create_relation("sales", ["item"])
            cluster.register_synopsis(
                "sales", "item", footprint_bound=400, hotlist=True
            )
            items = zipf_stream(rows, 1_000, 1.25, seed=seed + 1)
            cluster.load_batch("sales", {"item": items})
            cluster.answer(FrequencyQuery("sales", "item", value=1))
            cluster.answer(CountQuery("sales", "item"))
            cluster.answer(HotListQuery("sales", "item", k=5))
            cluster.kill_shard(0)
            cluster.answer(CountQuery("sales", "item"))
            cluster.wait_until_healthy(timeout=30.0)
            cluster.answer(CountQuery("sales", "item"))
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def selftest(rows: int, seed: int) -> int:
    """Exposition round-trip assertions; returns the exit code."""
    registry = obs.enable()
    try:
        workload = build_workload(registry, seed)
        ingest_round(workload, rows, seed + 10)

        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        failures: list[str] = []

        def expect(name: str, labels: dict[str, str], want: float) -> None:
            key = tuple(sorted(labels.items()))
            got = parsed.get(name, {}).get(key)
            if got is None or abs(got - want) > 1e-9:
                failures.append(
                    f"{name}{labels}: exposition {got!r} != direct {want!r}"
                )

        for name, synopsis in workload["synopses"].items():
            labels = {"synopsis": name, "kind": synopsis.SNAPSHOT_KIND}
            if hasattr(synopsis, "sample_size"):
                expect(
                    "repro_synopsis_sample_size",
                    labels,
                    float(synopsis.sample_size),
                )
            expect(
                "repro_synopsis_footprint_words",
                labels,
                float(synopsis.footprint),
            )
            expect(
                "repro_cost_flips_total",
                labels,
                float(synopsis.counters.flips),
            )
            expect(
                "repro_cost_inserts_total",
                labels,
                float(synopsis.counters.inserts),
            )

        loader = workload["loader"]
        expect(
            "repro_load_rows_total",
            {"relation": "sales", "op": "insert"},
            float(loader.rows_seen("sales")),
        )

        spans = workload["tracer"].spans()
        if len(spans) != 4:
            failures.append(f"expected 4 query spans, got {len(spans)}")
        if not any(span.is_exact for span in spans):
            failures.append("no exact-fallback span recorded")

        # Calibration audit: every approximate answer was shadowed
        # (fraction 1.0) and the repro_audit_* series registered.
        observations = workload["auditor"].observations()
        if len(observations) != 3:
            failures.append(
                f"expected 3 audit observations, got {len(observations)}"
            )
        shadow_series = parsed.get("repro_audit_shadows_total", {})
        shadow_total = sum(shadow_series.values())
        if shadow_total != len(observations):
            failures.append(
                f"repro_audit_shadows_total {shadow_total} != "
                f"{len(observations)} observations"
            )
        for name in (
            "repro_audit_coverage_ratio",
            "repro_audit_error_budget",
        ):
            if not parsed.get(name):
                failures.append(f"{name} never registered")

        # Trace sink: drained spans round-trip through the JSONL file
        # and the tracer buffer is left empty (single export).
        trace_dir = tempfile.mkdtemp(prefix="repro-obs-selftest-")
        try:
            trace_path = f"{trace_dir}/trace.jsonl"
            file_sink = obs.TraceSink(
                capacity=256, path=trace_path, registry=registry
            )
            exported = file_sink.drain(workload["tracer"])
            if workload["tracer"].spans():
                failures.append("tracer still holds spans after drain")
            records = obs.read_trace_file(trace_path)
            if len(records) != exported:
                failures.append(
                    f"trace file holds {len(records)} records, "
                    f"sink exported {exported}"
                )
            trees = obs.span_tree(records)
            for span in spans:
                tree = trees.get(span.trace_id)
                if tree is None or tree["span"] != span.to_dict():
                    failures.append(
                        f"trace {span.trace_id} did not round-trip"
                    )
                elif len(tree["children"]) != len(span.children):
                    failures.append(
                        f"trace {span.trace_id}: file has "
                        f"{len(tree['children'])} children, span has "
                        f"{len(span.children)}"
                    )
        finally:
            shutil.rmtree(trace_dir, ignore_errors=True)

        payload = obs.render_json(registry)
        json.loads(json.dumps(payload))  # must be JSON-able
        if not payload["metrics"]:
            failures.append("JSON exposition is empty")

        if failures:
            for failure in failures:
                print(f"selftest FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"selftest ok: {len(payload['metrics'])} metric families, "
            f"{len(spans)} spans, round-trip exact"
        )
        return 0
    finally:
        obs.disable()


def dump(fmt: str, rows: int, seed: int, rounds: int) -> int:
    """Run the workload and print the registry ``rounds`` times."""
    registry = obs.enable()
    try:
        workload = build_workload(registry, seed)
        per_round = max(1, rows // rounds)
        for round_index in range(rounds):
            ingest_round(workload, per_round, seed + 10 * round_index)
            if rounds > 1:
                print(f"--- round {round_index + 1}/{rounds} ---")
            if fmt == "json":
                payload = obs.render_json(registry)
                payload["spans"] = [
                    span.to_dict() for span in workload["tracer"].spans()
                ]
                print(json.dumps(payload, indent=2))
            else:
                print(obs.render_prometheus(registry), end="")
        return 0
    finally:
        obs.disable()


def report_command(argv: list[str]) -> int:
    """``python -m repro.obs report``: render the ops health report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs report",
        description="Render the plain-text ops health report from a "
        "JSON registry snapshot and/or a drained JSONL trace file; "
        "with neither, run a fresh demo workload.",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE.json",
        help="registry snapshot (render_json output) to report over",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="drained trace file (TraceSink output) to report over",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=100_000,
        help="demo workload rows when no files are given",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="demo workload seed"
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help="also run a loopback AQPServer workload so the serving "
        "section has data (demo mode only)",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="also run a two-shard ShardedWarehouse workload (one "
        "failover included) so the cluster section has data (demo "
        "mode only)",
    )
    args = parser.parse_args(argv)

    metrics: dict[str, Any] | None = None
    traces: list[dict[str, Any]] | None = None
    if args.metrics:
        from repro.persist.fsio import LocalFileSystem

        metrics = json.loads(
            LocalFileSystem().read_bytes(Path(args.metrics)).decode("utf-8")
        )
    if args.trace:
        traces = obs.read_trace_file(args.trace)
    if metrics is None and traces is None:
        registry = obs.enable()
        try:
            workload = build_workload(registry, args.seed)
            ingest_round(workload, args.rows, args.seed + 10)
            if args.serving:
                serving_round(
                    registry, max(100, args.rows // 10), args.seed + 20
                )
            if args.cluster:
                cluster_round(
                    registry, max(100, args.rows // 10), args.seed + 30
                )
            sink = workload["sink"]
            sink.drain(workload["tracer"])
            metrics = obs.render_json(registry)
            traces = list(sink.records())
        finally:
            obs.disable()
    print(obs.render_health_report(metrics, traces))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return report_command(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Dump, tail, or selftest the observability layer "
        "over an example workload.",
    )
    parser.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="exposition format for dumps (default: prometheus)",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=100_000,
        help="total workload rows (default: 100000)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: 7)"
    )
    parser.add_argument(
        "--tail",
        type=int,
        default=1,
        metavar="N",
        help="ingest in N rounds, rendering the registry after each",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="assert the exposition round-trip and exit 0/1",
    )
    args = parser.parse_args(argv)
    if args.selftest:
        return selftest(args.rows, args.seed)
    return dump(args.format, args.rows, args.seed, max(1, args.tail))


if __name__ == "__main__":
    sys.exit(main())
