"""Scrape-time collectors mirroring synopsis state into a registry.

:func:`watch_synopsis` is the pull half of the instrumentation story:
instead of pushing footprint/sample-size updates from the insert hot
path (millions of events), a collector reads the synopsis properties
and its :class:`~repro.randkit.coins.CostCounters` ledger once per
scrape and writes them into labelled gauges/counters.  Combined with
the event probe (:mod:`repro.obs.probe`) this gives full visibility
at zero amortised hot-path cost.

Structurally typed on purpose: this module is imported by
``repro.obs.__init__`` and must not import ``repro.core`` (the core
synopses import the probe from this package).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.obs.metrics import MetricsRegistry

__all__ = ["ObservedSynopsis", "watch_synopsis"]


@runtime_checkable
class ObservedSynopsis(Protocol):
    """What a synopsis must expose to be watchable: just a footprint.

    Everything else (sample-size, threshold, the cost ledger) is
    picked up opportunistically when present, so reservoir samples,
    sketches, and histogram synopses are all watchable.
    """

    @property
    def footprint(self) -> int:
        """Current memory footprint in words."""
        ...


# (attribute, metric name, help) gauges read off the synopsis when the
# attribute exists.  ``footprint`` is required; the rest are optional.
_OPTIONAL_GAUGES: tuple[tuple[str, str, str], ...] = (
    (
        "sample_size",
        "repro_synopsis_sample_size",
        "Represented sample points (m' in the paper)",
    ),
    (
        "footprint_bound",
        "repro_synopsis_footprint_bound_words",
        "Configured footprint bound in words (m)",
    ),
    ("threshold", "repro_synopsis_threshold", "Entry threshold tau"),
    (
        "total_inserted",
        "repro_synopsis_stream_length",
        "Stream elements observed by the synopsis (n)",
    ),
    (
        "distinct_in_sample",
        "repro_synopsis_distinct_values",
        "Distinct values currently represented",
    ),
)

# CostCounters ledger fields bridged as monotonic counters.
_LEDGER_COUNTERS: tuple[tuple[str, str, str], ...] = (
    ("flips", "repro_cost_flips_total", "Counted random draws (coin flips)"),
    ("lookups", "repro_cost_lookups_total", "Hash-table probes"),
    (
        "threshold_raises",
        "repro_cost_threshold_raises_total",
        "Ledger-counted threshold raises",
    ),
    ("inserts", "repro_cost_inserts_total", "Stream inserts offered"),
    ("deletes", "repro_cost_deletes_total", "Stream deletes offered"),
    (
        "disk_accesses",
        "repro_cost_disk_accesses_total",
        "Simulated base-data accesses",
    ),
)


def watch_synopsis(
    registry: MetricsRegistry,
    synopsis: ObservedSynopsis,
    name: str,
) -> None:
    """Register a collector exporting ``synopsis`` state under ``name``.

    ``name`` becomes the ``synopsis`` label (conventionally
    ``"relation.attribute"``); the synopsis class's snapshot kind (or
    type name) becomes the ``kind`` label.  The collector runs on
    every registry scrape and costs a handful of attribute reads.
    """
    kind = getattr(
        synopsis, "SNAPSHOT_KIND", type(synopsis).__name__.lower()
    )
    labels = {"synopsis": name, "kind": str(kind)}
    footprint_gauge = registry.gauge(
        "repro_synopsis_footprint_words",
        "Current memory footprint in words",
        labels,
    )
    gauges = [
        (attribute, registry.gauge(metric, help_text, labels))
        for attribute, metric, help_text in _OPTIONAL_GAUGES
        if hasattr(synopsis, attribute)
    ]
    ledger = getattr(synopsis, "counters", None)
    counters = (
        [
            (field, registry.counter(metric, help_text, labels))
            for field, metric, help_text in _LEDGER_COUNTERS
        ]
        if ledger is not None
        else []
    )

    def collect() -> None:
        footprint_gauge.set(float(synopsis.footprint))
        for attribute, gauge in gauges:
            gauge.set(float(getattr(synopsis, attribute)))
        for field, counter in counters:
            counter.set_monotonic(float(getattr(ledger, field)))

    registry.add_collector(collect)
