"""Observability for the synopsis engine: metrics, tracing, exposition.

The paper's central quantities -- the concise-sample gain m'/m
(Theorems 3-4), the Section-3.1 threshold trajectory, the amortised
O(1) flip/lookup rates of Tables 1-2 -- become runtime-watchable here:

* :mod:`repro.obs.metrics` -- counters, gauges, fixed-bucket
  histograms, and the registry; the process default is a true no-op.
* :mod:`repro.obs.probe` -- lifecycle event hooks the core synopses
  emit into (admissions, threshold raises, eviction survivors, shard
  merges, snapshot/restore).
* :mod:`repro.obs.instruments` -- scrape-time collectors mirroring
  synopsis state and ``CostCounters`` ledgers into labelled series.
* :mod:`repro.obs.tracing` -- one span tree per engine query:
  answering synopsis, estimator latency, error bounds, exact-fallback
  decisions, plus child spans for the cache/synopsis/audit phases.
* :mod:`repro.obs.audit` -- calibration auditing: a seeded fraction
  of approximate answers is shadowed with the exact path and scored
  against the claimed interval (``repro_audit_*`` series).
* :mod:`repro.obs.sink` -- bounded trace export: ring buffer plus
  JSONL writer, fed by the tracer's single-export ``drain()``.
* :mod:`repro.obs.report` -- the ``python -m repro.obs report``
  plain-text health report over snapshots and trace files.
* :mod:`repro.obs.recovery` -- one span per checkpoint or recovery
  run: durations, replay lengths, torn-tail repairs.
* :mod:`repro.obs.load` -- warehouse load-stream throughput metering.
* :mod:`repro.obs.exposition` -- Prometheus text and JSON rendering.
* :mod:`repro.obs.clock` -- the repository's only direct wall-clock
  reads (reprolint RL009); everything else takes an injected clock.

Typical setup::

    from repro import obs

    registry = obs.enable()                    # metrics + probe on
    obs.watch_synopsis(registry, sample, "sales.item")
    tracer = obs.QueryTracer(registry)
    engine = ApproximateAnswerEngine(warehouse, tracer=tracer)
    ...
    print(obs.render_prometheus(registry))
    obs.disable()

``python -m repro.obs`` dumps or tails a live registry over an
example workload; ``--selftest`` asserts the exposition round-trip.
"""

from __future__ import annotations

from repro.obs import probe
from repro.obs.clock import Clock, FakeClock, monotonic, perf_counter
from repro.obs.exposition import (
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.obs.instruments import ObservedSynopsis, watch_synopsis
from repro.obs.load import MeteredLoadObserver
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)
from repro.obs.audit import AuditObservation, CalibrationAuditor
from repro.obs.probe import MetricsProbe
from repro.obs.recovery import RecoverySpan, RecoveryTracer
from repro.obs.report import histogram_quantile, render_health_report
from repro.obs.sink import TraceSink, read_trace_file, span_tree
from repro.obs.tracing import (
    ActiveTrace,
    ChildSpan,
    QuerySpan,
    QueryTracer,
)

__all__ = [
    "ActiveTrace",
    "AuditObservation",
    "CalibrationAuditor",
    "ChildSpan",
    "Clock",
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "MeteredLoadObserver",
    "MetricsProbe",
    "MetricsRegistry",
    "NullRegistry",
    "ObservedSynopsis",
    "QuerySpan",
    "QueryTracer",
    "RecoverySpan",
    "RecoveryTracer",
    "TraceSink",
    "disable",
    "enable",
    "get_registry",
    "histogram_quantile",
    "monotonic",
    "parse_prometheus",
    "perf_counter",
    "read_trace_file",
    "render_health_report",
    "render_json",
    "render_prometheus",
    "set_registry",
    "span_tree",
    "watch_synopsis",
]


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn observability on: activate a registry and install the probe.

    Returns the now-active registry (a fresh one unless provided).
    """
    active = registry if registry is not None else MetricsRegistry()
    set_registry(active)
    probe.install(active)
    return active


def disable() -> None:
    """Return to the no-op default: null registry, no probe."""
    probe.uninstall()
    set_registry(None)
