"""The repository's single monotonic-clock boundary.

Reprolint rule RL009 bans direct ``time.monotonic`` /
``time.perf_counter`` calls everywhere outside ``repro.obs``: synopsis
state must stay a pure function of (stream, seed) (RL005), and every
latency measurement must flow through an *injected* clock so tests can
substitute a fake one.  This module is the one place the real clocks
live; everything else -- the query tracer, the load observer, the
benchmark drivers -- takes a ``Clock`` argument defaulting to one of
the callables below.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "FakeClock", "monotonic", "perf_counter"]

# A clock is any zero-argument callable returning seconds as a float.
Clock = Callable[[], float]


def monotonic() -> float:
    """Seconds from a monotonic clock (span timing)."""
    return time.monotonic()


def perf_counter() -> float:
    """Seconds from the highest-resolution monotonic clock (benchmarks)."""
    return time.perf_counter()


class FakeClock:
    """A deterministic clock for tests: advances only when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds
