"""Recovery-path tracing: one span per checkpoint or recovery run.

The paper keeps synopses useful across failures by footnote 2's
"snapshots and/or logs stored on disk"; this module makes the runtime
cost of that machinery watchable.  A :class:`RecoverySpan` records
what the persist layer did -- how long a checkpoint took, how many
logged operations a recovery replayed, whether a torn tail was
dropped -- and the tracer mirrors each span into ``repro_recovery_*``
and ``repro_checkpoint_*`` metric families.

Like :class:`~repro.obs.tracing.QueryTracer`, the persist layer never
reads a clock itself (reprolint RL005/RL009): the tracer owns an
injected :data:`~repro.obs.clock.Clock` and hands opaque start values
through :meth:`RecoveryTracer.begin`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.obs import clock as obs_clock
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["RecoverySpan", "RecoveryTracer"]


@dataclass(frozen=True)
class RecoverySpan:
    """One traced persist-layer event.

    Attributes
    ----------
    event:
        ``"checkpoint"`` or ``"recovery"``.
    outcome:
        ``"ok"`` for success, the exception class name otherwise.
    duration_seconds:
        Wall time by the injected clock.
    sequence:
        The operation sequence the event landed at (checkpoint
        sequence, or the recovered state's last applied sequence).
    replayed_operations:
        Log records replayed on top of the snapshot (0 for
        checkpoints).
    checkpoint_sequence:
        The snapshot a recovery started from (-1 when recovering from
        an empty store).
    torn_tail_dropped:
        Whether recovery tolerated and repaired a torn WAL tail.
    """

    event: str
    outcome: str
    duration_seconds: float
    sequence: int
    replayed_operations: int
    checkpoint_sequence: int
    torn_tail_dropped: bool

    def to_dict(self) -> dict[str, Any]:
        """The span as a JSON-able dict (exposition/CLI payload)."""
        return {
            "event": self.event,
            "outcome": self.outcome,
            "duration_seconds": self.duration_seconds,
            "sequence": self.sequence,
            "replayed_operations": self.replayed_operations,
            "checkpoint_sequence": self.checkpoint_sequence,
            "torn_tail_dropped": self.torn_tail_dropped,
        }


class RecoveryTracer:
    """Checkpoint/recovery spans plus duration and outcome metrics.

    Parameters
    ----------
    registry:
        Metrics sink; defaults to the process-wide active registry.
    clock:
        Injected monotonic clock; tests pass a
        :class:`~repro.obs.clock.FakeClock`.
    max_spans:
        Ring-buffer capacity for :meth:`spans`.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        clock: obs_clock.Clock = obs_clock.monotonic,
        max_spans: int = 256,
    ) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._clock = clock
        self._spans: deque[RecoverySpan] = deque(maxlen=max_spans)

    def begin(self) -> float:
        """Clock reading handed back opaquely to the ``record_*`` calls."""
        return self._clock()

    def record_checkpoint(
        self, started: float, *, sequence: int, outcome: str = "ok"
    ) -> RecoverySpan:
        """Close the span for a checkpoint attempt."""
        return self._finish(
            event="checkpoint",
            outcome=outcome,
            started=started,
            sequence=sequence,
            replayed_operations=0,
            checkpoint_sequence=sequence,
            torn_tail_dropped=False,
        )

    def record_recovery(
        self,
        started: float,
        *,
        sequence: int,
        replayed_operations: int,
        checkpoint_sequence: int,
        torn_tail_dropped: bool,
        outcome: str = "ok",
    ) -> RecoverySpan:
        """Close the span for a recovery attempt."""
        return self._finish(
            event="recovery",
            outcome=outcome,
            started=started,
            sequence=sequence,
            replayed_operations=replayed_operations,
            checkpoint_sequence=checkpoint_sequence,
            torn_tail_dropped=torn_tail_dropped,
        )

    def spans(self) -> tuple[RecoverySpan, ...]:
        """The most recent spans, oldest first."""
        return tuple(self._spans)

    # -- internals ------------------------------------------------------

    def _finish(self, *, started: float, **fields: Any) -> RecoverySpan:
        duration = max(0.0, self._clock() - started)
        span = RecoverySpan(duration_seconds=duration, **fields)
        self._spans.append(span)
        self._export(span)
        return span

    def _export(self, span: RecoverySpan) -> None:
        registry = self._registry
        if span.event == "checkpoint":
            registry.counter(
                "repro_checkpoints_total",
                "Checkpoint attempts, by outcome",
                {"outcome": span.outcome},
            ).inc()
            registry.histogram(
                "repro_checkpoint_seconds",
                "Wall time per checkpoint write",
            ).observe(span.duration_seconds)
            return
        registry.counter(
            "repro_recovery_runs_total",
            "Recovery attempts, by outcome",
            {"outcome": span.outcome},
        ).inc()
        registry.histogram(
            "repro_recovery_seconds",
            "Wall time per recovery (snapshot load plus log replay)",
        ).observe(span.duration_seconds)
        registry.counter(
            "repro_recovery_replayed_operations_total",
            "WAL operations replayed on top of checkpoints",
        ).inc(span.replayed_operations)
        if span.torn_tail_dropped:
            registry.counter(
                "repro_recovery_torn_tails_total",
                "Recoveries that dropped and repaired a torn WAL tail",
            ).inc()
