"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the passive half of the observability layer: event
hooks (:mod:`repro.obs.probe`), the query tracer
(:mod:`repro.obs.tracing`), and the load observer
(:mod:`repro.obs.load`) all write into instruments obtained from a
:class:`MetricsRegistry`, and the exposition renderers
(:mod:`repro.obs.exposition`) read the whole registry back out.

Two cost tiers, by design:

* **Disabled (the default).**  The process-wide registry is a
  :class:`NullRegistry` whose instruments are shared no-op singletons,
  and the synopsis probe (:data:`repro.obs.probe.PROBE`) is ``None`` --
  an uninstrumented hot path pays at most one module-attribute load
  and an ``is None`` test, and the per-element insert loop pays
  nothing at all (continuous state is *pulled* by collectors at
  scrape time rather than pushed per event).
* **Enabled.**  ``MetricsRegistry`` instruments are plain attribute
  updates; collectors registered with :meth:`MetricsRegistry.add_collector`
  run once per :meth:`MetricsRegistry.collect`, which is once per
  exposition scrape, never per stream element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelSet",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
]

# Labels frozen into a hashable, order-independent key.
LabelSet = tuple[tuple[str, str], ...]

DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.00001,
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
)

DEFAULT_RATIO_BUCKETS: tuple[float, ...] = (
    0.1,
    0.25,
    0.5,
    0.75,
    0.9,
    0.95,
    0.99,
    1.0,
)


def _label_key(labels: Mapping[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def set_monotonic(self, value: float) -> None:
        """Advance the counter to ``value`` if larger.

        Bridge entry point for external monotonic sources (the
        :class:`~repro.randkit.coins.CostCounters` ledger): collectors
        mirror the ledger into the registry at scrape time without
        double counting across scrapes.
        """
        if value > self.value:
            self.value = value


class Gauge:
    """A value that can go up and down (or be sampled at scrape time)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram: cumulative buckets, sum, and count.

    ``boundaries`` are the inclusive upper bounds of the finite
    buckets, strictly increasing; a ``+Inf`` bucket is implicit (its
    cumulative count equals the observation count).
    """

    __slots__ = ("boundaries", "bucket_counts", "sum", "count")

    def __init__(self, boundaries: tuple[float, ...]) -> None:
        if not boundaries:
            raise ValueError("histogram needs at least one boundary")
        if any(
            later <= earlier
            for earlier, later in zip(boundaries, boundaries[1:], strict=False)
        ):
            raise ValueError("histogram boundaries must be increasing")
        self.boundaries = boundaries
        self.bucket_counts = [0] * len(boundaries)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.boundaries):
            if value <= bound:
                self.bucket_counts[index] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper bound, cumulative count)`` rows, ``+Inf`` last."""
        rows = list(zip(self.boundaries, self.bucket_counts, strict=True))
        rows.append((float("inf"), self.count))
        return rows


Instrument = Counter | Gauge | Histogram


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set_monotonic(self, value: float) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__((1.0,))

    def observe(self, value: float) -> None:
        return None


@dataclass
class MetricFamily:
    """All series of one metric name: type, help text, instruments."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help_text: str
    series: dict[LabelSet, Instrument] = field(default_factory=dict)


# Every metric name must match the Prometheus grammar so the text
# exposition is always parseable.
_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


class MetricsRegistry:
    """Holds metric families and scrape-time collector callbacks.

    Instruments are created on first request and shared on every
    subsequent request with the same ``(name, labels)``; requesting an
    existing name as a different metric type raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- instrument acquisition ----------------------------------------

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        instrument = self._series(name, "counter", help_text, labels, Counter)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        """Get or create the gauge series ``name{labels}``."""
        instrument = self._series(name, "gauge", help_text, labels, Gauge)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram series ``name{labels}``."""
        instrument = self._series(
            name, "histogram", help_text, labels, lambda: Histogram(buckets)
        )
        assert isinstance(instrument, Histogram)
        return instrument

    def _series(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Mapping[str, str] | None,
        factory: Callable[[], Instrument],
    ) -> Instrument:
        family = self._families.get(_check_name(name))
        if family is None:
            family = MetricFamily(name=name, kind=kind, help_text=help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
            )
        if help_text and not family.help_text:
            family.help_text = help_text
        key = _label_key(labels)
        instrument = family.series.get(key)
        if instrument is None:
            instrument = factory()
            family.series[key] = instrument
        return instrument

    # -- scrape-time pull ----------------------------------------------

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run once per :meth:`collect`.

        Collectors pull continuous state (synopsis gauges, ledger
        counters, throughput rates) into the registry at scrape time,
        so the instrumented hot paths never push it.
        """
        self._collectors.append(collector)

    def remove_collector(self, collector: Callable[[], None]) -> None:
        """Drop a previously registered collector (no-op if absent)."""
        try:
            self._collectors.remove(collector)
        except ValueError:
            return

    def collect(self) -> list[MetricFamily]:
        """Run collectors, then return families sorted by name."""
        for collector in list(self._collectors):
            collector()
        return [
            self._families[name] for name in sorted(self._families)
        ]

    def value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float:
        """Current value of a counter/gauge series (for tests/CLIs)."""
        family = self._families[name]
        instrument = family.series[_label_key(labels)]
        if isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is a histogram; read .series")
        return instrument.value


class NullRegistry(MetricsRegistry):
    """A registry whose instruments discard every write.

    This is the process-wide default: code holding a registry
    reference unconditionally (tracers, load observers) can write to
    it blindly, and nothing is recorded or retained.
    """

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        return self._COUNTER

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        return self._GAUGE

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._HISTOGRAM

    def add_collector(self, collector: Callable[[], None]) -> None:
        return None

    def collect(self) -> list[MetricFamily]:
        return []


NULL_REGISTRY = NullRegistry()
_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide active registry (a no-op one by default)."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Swap the active registry; ``None`` restores the no-op default.

    Returns the previously active registry so callers can restore it.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


def iter_series(
    families: list[MetricFamily],
) -> Iterator[tuple[MetricFamily, LabelSet, Instrument]]:
    """Flatten collected families into ``(family, labels, instrument)``."""
    for family in families:
        for labels, instrument in sorted(family.series.items()):
            yield family, labels, instrument
