"""Zipf-distributed value streams over a bounded integer domain.

The paper's experiments use "the integer value domain from ``[1, D]``"
with "a large variety of Zipf data distributions", zipf parameter 0
(uniform) through 3 (extremely skewed).  ``numpy.random.zipf`` samples
from the *unbounded* zeta distribution, so we implement the bounded
variant directly: value ``i`` has probability proportional to
``1 / i**z`` for ``i`` in ``[1, D]``.
"""

from __future__ import annotations

import numpy as np

from repro.randkit.rng import numpy_generator

__all__ = ["ZipfDistribution", "zipf_stream"]


class ZipfDistribution:
    """A bounded Zipf distribution over ``{1, ..., domain_size}``.

    Parameters
    ----------
    domain_size:
        ``D``, the number of potential distinct values.
    skew:
        The zipf parameter ``z >= 0``; ``z == 0`` is the uniform
        distribution.

    Value ``i`` is drawn with probability ``(1/i^z) / H`` where ``H``
    is the generalised harmonic number ``sum_{j=1..D} 1/j^z``.  Ranks
    double as values, exactly as in the paper (the most frequent value
    is ``1``).
    """

    def __init__(self, domain_size: int, skew: float) -> None:
        if domain_size < 1:
            raise ValueError("domain_size must be at least 1")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.domain_size = domain_size
        self.skew = skew
        ranks = np.arange(1, domain_size + 1, dtype=np.float64)
        weights = ranks ** (-skew)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)
        # Guard against floating-point drift at the tail.
        self._cdf[-1] = 1.0

    @property
    def probabilities(self) -> np.ndarray:
        """The probability of each value ``1..D`` (read-only view)."""
        view = self._probabilities.view()
        view.flags.writeable = False
        return view

    def probability(self, value: int) -> float:
        """The probability of drawing ``value``."""
        if not 1 <= value <= self.domain_size:
            return 0.0
        return float(self._probabilities[value - 1])

    def expected_frequencies(self, n: int) -> np.ndarray:
        """Expected occurrence counts of each value in a stream of ``n``."""
        return self._probabilities * n

    def sample(self, n: int, seed: int) -> np.ndarray:
        """Draw ``n`` i.i.d. values as an ``int64`` array."""
        if n < 0:
            raise ValueError("n must be non-negative")
        rng = numpy_generator(seed)
        uniforms = rng.random(n)
        return np.searchsorted(self._cdf, uniforms, side="right").astype(
            np.int64
        ) + 1

    def frequency_moment(self, k: float, n: int) -> float:
        """The expected ``F_k`` of an ``n``-element stream, approximately.

        Uses the expected per-value frequencies; exact moments of a
        concrete stream come from :mod:`repro.stats.frequency`.
        """
        return float(np.sum((self._probabilities * n) ** k))


def zipf_stream(
    n: int, domain_size: int, skew: float, seed: int
) -> np.ndarray:
    """Convenience wrapper: ``n`` bounded-Zipf draws as an array."""
    return ZipfDistribution(domain_size, skew).sample(n, seed)
