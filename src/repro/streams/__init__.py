"""Workload and data-stream generators.

The paper's experiments insert 500K values drawn from Zipf
distributions over an integer domain ``[1, D]`` into an initially empty
warehouse (Sections 3.3 and 5.3), and its analysis covers exponential
distributions (Theorem 3).  This package generates those streams --
plus mixed insert/delete operation streams and a synthetic retail
workload used by the examples -- reproducibly from explicit seeds.
"""

from repro.streams.distributions import (
    exponential_stream,
    uniform_stream,
)
from repro.streams.operations import (
    Delete,
    Insert,
    Operation,
    insert_delete_stream,
    inserts_only,
    replay,
)
from repro.streams.sales import SalesGenerator, SalesRecord
from repro.streams.zipf import ZipfDistribution, zipf_stream

__all__ = [
    "Delete",
    "Insert",
    "Operation",
    "SalesGenerator",
    "SalesRecord",
    "ZipfDistribution",
    "exponential_stream",
    "insert_delete_stream",
    "inserts_only",
    "replay",
    "uniform_stream",
    "zipf_stream",
]
