"""Non-Zipf value distributions used by the analysis and ablations.

Theorem 3 of the paper analyses the family of exponential
distributions ``Pr(v = i) = alpha^-i (alpha - 1)`` for ``i = 1, 2, ...``
and ``alpha > 1``; :func:`exponential_stream` samples it exactly via
the geometric identity ``Pr(v = i) = (1 - 1/alpha) (1/alpha)^(i-1)``.
"""

from __future__ import annotations

import numpy as np

from repro.randkit.rng import numpy_generator

__all__ = [
    "exponential_stream",
    "mixture_stream",
    "shifting_stream",
    "uniform_stream",
]


def uniform_stream(
    n: int, domain_size: int, seed: int
) -> np.ndarray:
    """``n`` i.i.d. uniform draws from ``{1, ..., domain_size}``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if domain_size < 1:
        raise ValueError("domain_size must be at least 1")
    rng = numpy_generator(seed)
    return rng.integers(1, domain_size + 1, size=n, dtype=np.int64)


def exponential_stream(n: int, alpha: float, seed: int) -> np.ndarray:
    """``n`` draws from the Theorem-3 exponential family.

    ``Pr(v = i) = alpha^-i (alpha - 1)`` for ``i >= 1`` equals a
    geometric distribution with success probability ``1 - 1/alpha``,
    so sampling is exact and O(n).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1")
    rng = numpy_generator(seed)
    return rng.geometric(1.0 - 1.0 / alpha, size=n).astype(np.int64)


def mixture_stream(
    n: int,
    components: list[np.ndarray],
    weights: list[float],
    seed: int,
) -> np.ndarray:
    """Interleave pre-drawn component streams by weighted choice.

    Each element of the output picks component ``j`` with probability
    ``weights[j]`` and consumes that component's next value.  Component
    arrays must each hold at least ``n`` values.
    """
    if len(components) != len(weights):
        raise ValueError("one weight per component is required")
    if not components:
        raise ValueError("at least one component is required")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    for component in components:
        if len(component) < n:
            raise ValueError("every component needs at least n values")
    rng = numpy_generator(seed)
    choices = rng.choice(
        len(components), size=n, p=[w / total for w in weights]
    )
    out = np.empty(n, dtype=np.int64)
    cursors = [0] * len(components)
    for position, component_index in enumerate(choices):
        cursor = cursors[component_index]
        out[position] = components[component_index][cursor]
        cursors[component_index] = cursor + 1
    return out


def shifting_stream(
    n: int,
    domain_size: int,
    skew: float,
    seed: int,
    shift_at: float = 0.5,
    shift_offset: int | None = None,
) -> np.ndarray:
    """A Zipf stream whose popular values change mid-stream.

    The first ``shift_at`` fraction of the stream is ordinary bounded
    Zipf; the remainder relabels value ``v`` to
    ``((v - 1 + shift_offset) mod domain_size) + 1``, so previously
    rare values become the hot ones.  This is the "detecting when
    itemsets that were small become large due to a shift in the
    distribution of the newer data" scenario the paper motivates hot
    lists with (Section 1.2).
    """
    from repro.streams.zipf import zipf_stream

    if not 0.0 <= shift_at <= 1.0:
        raise ValueError("shift_at must be in [0, 1]")
    if shift_offset is None:
        shift_offset = domain_size // 2
    values = zipf_stream(n, domain_size, skew, seed)
    cut = int(n * shift_at)
    shifted = (values[cut:] - 1 + shift_offset) % domain_size + 1
    return np.concatenate([values[:cut], shifted])
