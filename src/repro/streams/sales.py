"""Synthetic retail-sales workload.

The paper's motivating hot-list example is "the top selling items in a
database of sales transactions" (Section 1.2).  :class:`SalesGenerator`
produces a reproducible stream of transaction records whose product
popularity follows a bounded Zipf law, for use by the examples and the
end-to-end engine tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.randkit.rng import numpy_generator
from repro.streams.zipf import ZipfDistribution

__all__ = ["SalesGenerator", "SalesRecord"]


@dataclass(frozen=True)
class SalesRecord:
    """One line item of a sales transaction."""

    transaction_id: int
    product_id: int
    store_id: int
    quantity: int
    unit_price: float

    @property
    def revenue(self) -> float:
        """Total revenue of the line item."""
        return self.quantity * self.unit_price


class SalesGenerator:
    """Reproducible synthetic sales transactions.

    Product popularity is bounded-Zipf over the catalogue; unit prices
    are stable per product (log-uniform over ``[price_low, price_high]``);
    store choice is uniform; quantities are geometric with mean 2.

    Parameters
    ----------
    catalogue_size:
        Number of distinct products.
    skew:
        Zipf parameter of product popularity.
    stores:
        Number of stores.
    seed:
        Master seed for the whole generator.
    """

    def __init__(
        self,
        catalogue_size: int = 5000,
        skew: float = 1.25,
        stores: int = 20,
        seed: int = 0,
        price_low: float = 0.5,
        price_high: float = 500.0,
    ) -> None:
        if catalogue_size < 1:
            raise ValueError("catalogue_size must be at least 1")
        if stores < 1:
            raise ValueError("stores must be at least 1")
        if not 0 < price_low <= price_high:
            raise ValueError("require 0 < price_low <= price_high")
        self.catalogue_size = catalogue_size
        self.skew = skew
        self.stores = stores
        self.seed = seed
        self._popularity = ZipfDistribution(catalogue_size, skew)
        price_rng = numpy_generator(seed)
        log_low, log_high = np.log(price_low), np.log(price_high)
        self._prices = np.exp(
            price_rng.uniform(log_low, log_high, size=catalogue_size)
        ).round(2)

    def price_of(self, product_id: int) -> float:
        """The (stable) unit price of a product."""
        if not 1 <= product_id <= self.catalogue_size:
            raise ValueError("unknown product")
        return float(self._prices[product_id - 1])

    def records(self, n: int) -> Iterator[SalesRecord]:
        """Generate ``n`` sales records."""
        products = self._popularity.sample(n, self.seed + 1)
        detail_rng = numpy_generator(self.seed + 2)
        store_ids = detail_rng.integers(1, self.stores + 1, size=n)
        quantities = detail_rng.geometric(0.5, size=n)
        for i in range(n):
            product = int(products[i])
            yield SalesRecord(
                transaction_id=i + 1,
                product_id=product,
                store_id=int(store_ids[i]),
                quantity=int(quantities[i]),
                unit_price=float(self._prices[product - 1]),
            )

    def product_stream(self, n: int) -> np.ndarray:
        """Just the product-id stream (the hot-list attribute)."""
        return self._popularity.sample(n, self.seed + 1)
