"""Insert/delete operation streams.

Counting samples (paper Section 4.1) are maintainable under deletions
as well as insertions; this module builds mixed operation streams that
exercise that path while guaranteeing a delete never targets a value
that is not currently live in the relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol

import numpy as np

from repro.randkit.rng import numpy_generator

__all__ = [
    "Delete",
    "Insert",
    "Operation",
    "insert_delete_stream",
    "inserts_only",
    "replay",
]


@dataclass(frozen=True)
class Insert:
    """Insert one tuple whose tracked attribute equals ``value``."""

    value: int


@dataclass(frozen=True)
class Delete:
    """Delete one tuple whose tracked attribute equals ``value``."""

    value: int


Operation = Insert | Delete


class _SupportsInsertDelete(Protocol):
    def insert(self, value: int) -> None: ...

    def delete(self, value: int) -> None: ...


def inserts_only(values: Iterable[int]) -> Iterator[Operation]:
    """Wrap a plain value stream as insert operations."""
    for value in values:
        yield Insert(int(value))


def insert_delete_stream(
    values: np.ndarray,
    delete_fraction: float,
    seed: int,
) -> list[Operation]:
    """Interleave deletes into an insert stream.

    Parameters
    ----------
    values:
        The base insert stream (consumed in order).
    delete_fraction:
        Target ratio of delete operations to insert operations, in
        ``[0, 1)``.  Each emitted operation is a delete with this
        probability *when at least one tuple is live*; the deleted
        value is chosen uniformly from the live multiset, so the
        relation state is always consistent.
    seed:
        Randomness for interleaving and victim choice.

    Returns a list of operations containing every value of ``values``
    as an insert, in their original relative order.
    """
    if not 0.0 <= delete_fraction < 1.0:
        raise ValueError("delete_fraction must be in [0, 1)")
    rng = numpy_generator(seed)
    operations: list[Operation] = []
    live: list[int] = []
    cursor = 0
    n = len(values)
    # Each loop iteration emits exactly one operation.
    while cursor < n:
        if live and rng.random() < delete_fraction:
            victim_index = int(rng.integers(len(live)))
            # Swap-remove keeps victim choice O(1).
            live[victim_index], live[-1] = live[-1], live[victim_index]
            operations.append(Delete(live.pop()))
        else:
            value = int(values[cursor])
            cursor += 1
            live.append(value)
            operations.append(Insert(value))
    return operations


def replay(
    operations: Iterable[Operation],
    target: _SupportsInsertDelete,
) -> int:
    """Apply an operation stream to any insert/delete-capable target.

    Returns the number of operations applied.
    """
    applied = 0
    for operation in operations:
        if isinstance(operation, Insert):
            target.insert(operation.value)
        elif isinstance(operation, Delete):
            target.delete(operation.value)
        else:  # pragma: no cover - exhaustive match guard
            raise TypeError(f"unknown operation {operation!r}")
        applied += 1
    return applied
