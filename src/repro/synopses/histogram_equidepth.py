"""Equi-depth histograms built from a (backing) sample [GMP97b].

An equi-depth histogram partitions the value domain into buckets of
(approximately) equal row count.  [GMP97b] -- the companion paper this
one extends -- maintains such histograms from a *backing sample*; here
we provide the estimation side: build from any uniform sample (a
concise sample's expanded points work directly) and answer range and
equality selectivities.  A concise sample used as the backing sample
yields more sample points, hence better bucket boundaries, at equal
footprint -- exactly the improvement Section 2 of the paper points out.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SynopsisError

__all__ = ["EquiDepthHistogram"]


class EquiDepthHistogram:
    """An equi-depth histogram over a numeric attribute.

    Build with :meth:`from_sample`; the histogram scales its estimates
    to ``total_rows`` (the relation size the sample represents).
    Footprint is one word per boundary plus one for the shared depth.
    """

    def __init__(
        self,
        boundaries: np.ndarray,
        depths: np.ndarray,
        total_rows: int,
    ) -> None:
        if len(boundaries) != len(depths) + 1:
            raise SynopsisError("need one more boundary than buckets")
        if len(depths) < 1:
            raise SynopsisError("at least one bucket is required")
        self._boundaries = boundaries.astype(np.float64)
        self._depths = depths.astype(np.float64)
        self.total_rows = total_rows

    @classmethod
    def from_sample(
        cls,
        sample_points: np.ndarray,
        bucket_count: int,
        total_rows: int,
    ) -> "EquiDepthHistogram":
        """Build from a uniform sample of the attribute.

        Bucket boundaries are the sample quantiles; every bucket is
        assigned depth ``total_rows / bucket_count``.
        """
        if bucket_count < 1:
            raise SynopsisError("bucket_count must be positive")
        if len(sample_points) == 0:
            raise SynopsisError("cannot build a histogram from no points")
        if total_rows < 0:
            raise SynopsisError("total_rows must be non-negative")
        quantiles = np.linspace(0.0, 1.0, bucket_count + 1)
        boundaries = np.quantile(
            np.asarray(sample_points, dtype=np.float64), quantiles
        )
        depth = total_rows / bucket_count
        return cls(
            boundaries,
            np.full(bucket_count, depth),
            total_rows,
        )

    @property
    def bucket_count(self) -> int:
        """Number of buckets."""
        return len(self._depths)

    @property
    def footprint(self) -> int:
        """Words used: boundaries plus per-bucket depths."""
        return len(self._boundaries) + len(self._depths)

    @property
    def boundaries(self) -> np.ndarray:
        """Bucket boundaries (read-only copy)."""
        return self._boundaries.copy()

    def estimate_range(self, low: float, high: float) -> float:
        """Estimated rows with value in ``[low, high]``.

        Partial bucket overlap is resolved with the continuous-values
        assumption (linear interpolation within a bucket).
        """
        if high < low:
            return 0.0
        total = 0.0
        for index in range(self.bucket_count):
            left = self._boundaries[index]
            right = self._boundaries[index + 1]
            overlap_left = max(low, left)
            overlap_right = min(high, right)
            if overlap_right < overlap_left:
                continue
            width = right - left
            if width <= 0:
                # Degenerate bucket: a single heavy value.
                if low <= left <= high:
                    total += self._depths[index]
                continue
            fraction = (overlap_right - overlap_left) / width
            total += self._depths[index] * fraction
        return total

    def estimate_equality(self, value: float) -> float:
        """Estimated rows with the exact value (uniform-within-bucket)."""
        for index in range(self.bucket_count):
            left = self._boundaries[index]
            right = self._boundaries[index + 1]
            if left <= value <= right:
                width = right - left
                if width <= 0:
                    return float(self._depths[index])
                # Continuous assumption: spread depth across the width.
                return float(self._depths[index] / max(width, 1.0))
        return 0.0
