"""High-biased histograms [IC93].

A high-biased histogram of ``m + 1`` buckets stores the ``m`` most
frequent values with their counts plus one bucket summarising the rest.
Section 1.2 of the paper identifies hot lists of ``m`` pairs with
high-biased histograms of ``m + 1`` buckets -- this class is the
histogram-shaped view, buildable either exactly (from a frequency
table) or approximately (from any hot-list reporter).
"""

from __future__ import annotations

from repro.core.base import SynopsisError
from repro.hotlist.base import HotListAnswer
from repro.stats.frequency import FrequencyTable

__all__ = ["HighBiasedHistogram"]


class HighBiasedHistogram:
    """Top-``m`` singleton buckets plus one residual bucket.

    Parameters
    ----------
    top_counts:
        Map of the heaviest values to their (estimated) counts.
    residual_rows:
        Total (estimated) rows not covered by the top values.
    residual_distinct:
        Number of distinct values in the residual bucket (estimated);
        used for equality estimates under the uniform assumption.
    """

    def __init__(
        self,
        top_counts: dict[int, float],
        residual_rows: float,
        residual_distinct: float,
    ) -> None:
        if residual_rows < 0 or residual_distinct < 0:
            raise SynopsisError("residual statistics must be non-negative")
        self._top = dict(top_counts)
        self.residual_rows = residual_rows
        self.residual_distinct = residual_distinct

    @classmethod
    def from_frequency_table(
        cls, table: FrequencyTable, top_m: int
    ) -> "HighBiasedHistogram":
        """Exact construction from a full frequency table."""
        if top_m < 1:
            raise SynopsisError("top_m must be positive")
        top = dict(table.top_k(top_m))
        residual_rows = table.total - sum(top.values())
        residual_distinct = len(table) - len(top)
        return cls(
            {value: float(count) for value, count in top.items()},
            float(residual_rows),
            float(residual_distinct),
        )

    @classmethod
    def from_hotlist(
        cls,
        answer: HotListAnswer,
        total_rows: int,
        distinct_estimate: float,
    ) -> "HighBiasedHistogram":
        """Approximate construction from a hot-list answer.

        ``distinct_estimate`` typically comes from a distinct-count
        sketch (:class:`~repro.synopses.fm.FlajoletMartinSketch`).
        """
        top = answer.as_dict()
        residual_rows = max(0.0, total_rows - sum(top.values()))
        residual_distinct = max(0.0, distinct_estimate - len(top))
        return cls(top, residual_rows, residual_distinct)

    @property
    def top_values(self) -> list[int]:
        """The values held in singleton buckets."""
        return list(self._top)

    @property
    def bucket_count(self) -> int:
        """Number of buckets (singletons plus the residual bucket)."""
        return len(self._top) + 1

    @property
    def footprint(self) -> int:
        """Words: two per singleton plus two for the residual bucket."""
        return 2 * len(self._top) + 2

    def estimate_equality(self, value: int) -> float:
        """Estimated rows equal to ``value``.

        Residual values are assumed uniform, the standard high-biased
        estimation assumption.
        """
        if value in self._top:
            return self._top[value]
        if self.residual_distinct <= 0:
            return 0.0
        return self.residual_rows / self.residual_distinct

    def estimate_join_size(self, other: "HighBiasedHistogram") -> float:
        """Estimated equi-join size between two attributes.

        Sums the products of matching top-value counts and adds the
        residual-residual contribution under uniformity -- the use of
        high-biased histograms for join-size estimation cited from
        [Ioa93, IC93, IP95].
        """
        total = 0.0
        for value, count in self._top.items():
            total += count * other.estimate_equality(value)
        if self.residual_distinct > 0 and other.residual_distinct > 0:
            # Assume residual domains overlap on the smaller side.
            shared = min(self.residual_distinct, other.residual_distinct)
            total += (
                shared
                * (self.residual_rows / self.residual_distinct)
                * (other.residual_rows / other.residual_distinct)
            )
        return total
