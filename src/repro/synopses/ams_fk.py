"""The general AMS frequency-moment estimator [AMS96].

Alon, Matias and Szegedy's sampling-based estimator for ``F_k`` with
any ``k >= 1``: pick a uniformly random stream position ``p`` and count
the occurrences ``c`` of the element ``a_p`` from position ``p``
onwards; then ``X = n (c^k - (c-1)^k)`` is an unbiased estimate of
``F_k``.  Averaging ``trackers_per_group`` independent X's and taking
the median over ``group_count`` groups gives the usual
accuracy/confidence control.

Streaming implementation: each tracker holds ``(value, count)`` and,
on the ``t``-th insert, adopts the new element with probability
``1/t`` (a one-slot reservoir over positions); otherwise it increments
its count on a value match.  One counted flip per insert per tracker
is avoided with a shared skip is *not* possible here (each tracker is
independent and must see every element for the count), so this sketch
costs O(trackers) per insert -- the known price of the general AMS
estimator, in contrast to the O(1) tug-of-war F_2 special case.
"""

from __future__ import annotations

import statistics

from repro.core.base import StreamSynopsis, SynopsisError
from repro.randkit.coins import CostCounters
from repro.randkit.rng import ReproRandom

__all__ = ["AmsFkEstimator"]


class _Tracker:
    """One (value, tail-count) position sample."""

    __slots__ = ("value", "count")

    def __init__(self) -> None:
        self.value: int | None = None
        self.count = 0


class AmsFkEstimator(StreamSynopsis):
    """A median-of-means AMS estimator for ``F_k``, ``k >= 1``.

    Parameters
    ----------
    k:
        The moment order (``k = 2`` also works but the tug-of-war
        sketch in :class:`~repro.synopses.ams.AmsF2Sketch` is far
        cheaper per update).
    group_count:
        Groups whose means are medianed (confidence).
    trackers_per_group:
        Independent position samples per group (variance).
    seed, counters:
        As elsewhere.
    """

    def __init__(
        self,
        k: int,
        group_count: int = 5,
        trackers_per_group: int = 16,
        *,
        seed: int | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if k < 1:
            raise SynopsisError("k must be at least 1")
        if group_count < 1 or trackers_per_group < 1:
            raise SynopsisError("group and tracker counts must be positive")
        self.k = k
        self.group_count = group_count
        self.trackers_per_group = trackers_per_group
        self._rng = ReproRandom(seed)
        self._trackers = [
            [_Tracker() for _ in range(trackers_per_group)]
            for _ in range(group_count)
        ]
        self._seen = 0

    @property
    def footprint(self) -> int:
        """Two words (value + count) per tracker."""
        return 2 * self.group_count * self.trackers_per_group

    @property
    def total_inserted(self) -> int:
        """Stream elements observed."""
        return self._seen

    def insert(self, value: int) -> None:
        """Observe one stream element."""
        self.counters.inserts += 1
        self._seen += 1
        adoption_probability = 1.0 / self._seen
        for group in self._trackers:
            for tracker in group:
                # One uniform decides adoption; the count path is
                # deterministic.  (Charged as a flip: the general AMS
                # estimator genuinely pays per tracker per element.)
                self.counters.flips += 1
                if self._rng.bernoulli(adoption_probability):
                    tracker.value = value
                    tracker.count = 1
                elif tracker.value == value:
                    tracker.count += 1

    def estimate(self) -> float:
        """Median-of-means estimate of ``F_k`` of the stream so far."""
        if self._seen == 0:
            return 0.0
        n = self._seen
        k = self.k
        means = []
        for group in self._trackers:
            total = 0.0
            for tracker in group:
                c = tracker.count
                total += n * (c**k - (c - 1) ** k)
            means.append(total / len(group))
        return float(statistics.median(means))
