"""Seeded universal hash families for the sketch synopses.

Carter-Wegman multiply-mod-prime hashing over the Mersenne prime
``2^61 - 1``: pairwise independent, cheap, and reproducible from a
seed.  Four-wise independence (needed by the AMS sign hash) is obtained
from a degree-3 polynomial over the same prime.
"""

from __future__ import annotations

from repro.randkit.rng import ReproRandom

__all__ = ["PairwiseHash", "FourwiseHash", "bit_hash_position"]

_MERSENNE_PRIME = (1 << 61) - 1


class PairwiseHash:
    """A pairwise-independent hash ``h(x) = ((a x + b) mod p) mod m``."""

    def __init__(self, buckets: int, seed: int) -> None:
        if buckets < 1:
            raise ValueError("buckets must be positive")
        rng = ReproRandom(seed)
        self.buckets = buckets
        self._a = rng.randint(1, _MERSENNE_PRIME - 1)
        self._b = rng.randint(0, _MERSENNE_PRIME - 1)

    def __call__(self, value: int) -> int:
        return (
            (self._a * value + self._b) % _MERSENNE_PRIME
        ) % self.buckets

    def raw(self, value: int) -> int:
        """The full-range hash before bucket reduction."""
        return (self._a * value + self._b) % _MERSENNE_PRIME


class FourwiseHash:
    """A 4-wise independent hash via a random cubic polynomial."""

    def __init__(self, seed: int) -> None:
        rng = ReproRandom(seed)
        self._coefficients = [
            rng.randint(0, _MERSENNE_PRIME - 1) for _ in range(4)
        ]
        if self._coefficients[3] == 0:
            self._coefficients[3] = 1

    def __call__(self, value: int) -> int:
        result = 0
        for coefficient in reversed(self._coefficients):
            result = (result * value + coefficient) % _MERSENNE_PRIME
        return result

    def sign(self, value: int) -> int:
        """A 4-wise independent random sign in ``{-1, +1}``."""
        return 1 if self(value) & 1 else -1


def bit_hash_position(hashed: int, max_bits: int = 61) -> int:
    """Position of the lowest set bit (geometric with p=1/2 per level).

    This is the ``rho`` function of Flajolet-Martin: a uniformly hashed
    value lands at bit position ``j`` with probability ``2^-(j+1)``.
    Values hashing to zero land at the top position.
    """
    if hashed == 0:
        return max_bits - 1
    position = (hashed & -hashed).bit_length() - 1
    return min(position, max_bits - 1)
