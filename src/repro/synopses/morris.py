"""Morris approximate counting [Mor78], analysed by Flajolet [Fla85].

Counts ``n`` events in ``O(lg lg n)`` bits: keep an exponent register
``X`` and increment it on each event with probability ``base^-X``; the
estimate ``(base^X - 1) / (base - 1)`` is unbiased.  Smaller bases give
better accuracy at the cost of more register bits -- the standard
accuracy/footprint dial.
"""

from __future__ import annotations

import math

from repro.core.base import StreamSynopsis, SynopsisError
from repro.randkit.coins import CostCounters
from repro.randkit.rng import ReproRandom

__all__ = ["MorrisCounter"]


class MorrisCounter(StreamSynopsis):
    """An approximate event counter in loglog space.

    Parameters
    ----------
    base:
        The register base ``b > 1``; the classic algorithm uses 2.  The
        standard deviation of the estimate is about
        ``sqrt((b - 1) / 2) * n``.
    seed, counters:
        As elsewhere.

    Examples
    --------
    >>> counter = MorrisCounter(base=1.1, seed=3)
    >>> for _ in range(1000):
    ...     counter.increment()
    >>> 500 < counter.estimate() < 2000
    True
    """

    def __init__(
        self,
        base: float = 2.0,
        *,
        seed: int | None = None,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if base <= 1.0:
            raise SynopsisError("base must exceed 1")
        self.base = base
        self._rng = ReproRandom(seed)
        self._register = 0

    @property
    def register(self) -> int:
        """The current exponent register ``X``."""
        return self._register

    @property
    def footprint(self) -> int:
        """One word: the register (it only needs O(lg lg n) bits)."""
        return 1

    @property
    def register_bits(self) -> int:
        """Bits needed to store the current register value."""
        return max(1, self._register.bit_length())

    def increment(self) -> None:
        """Record one event."""
        self.counters.inserts += 1
        self.counters.flips += 1
        if self._rng.bernoulli(self.base**-self._register):
            self._register += 1

    def insert(self, value: int) -> None:
        """Stream interface: every inserted value is one event."""
        self.increment()

    def estimate(self) -> float:
        """Unbiased estimate of the number of events so far."""
        return (self.base**self._register - 1.0) / (self.base - 1.0)

    def relative_standard_deviation(self) -> float:
        """Asymptotic relative standard deviation of the estimate."""
        return math.sqrt((self.base - 1.0) / 2.0)
