"""Linear-time probabilistic distinct counting [WVZT90].

Hash each value into a bitmap of ``B`` bits; with ``V`` the fraction of
bits still zero after the stream, the maximum-likelihood distinct count
is ``-B ln V``.  More accurate than Flajolet-Martin when the bitmap is
sized within a small constant of the true distinct count (the paper's
recommended load factor regime).
"""

from __future__ import annotations

import math

from repro.core.base import StreamSynopsis, SynopsisError
from repro.randkit.coins import CostCounters
from repro.synopses.hashing import PairwiseHash

__all__ = ["LinearCounter"]

_BITS_PER_WORD = 64


class LinearCounter(StreamSynopsis):
    """A linear-counting distinct-count sketch.

    Parameters
    ----------
    bitmap_bits:
        ``B``, the bitmap size; choose a small multiple of the largest
        distinct count expected (the estimate saturates when every bit
        fills).
    seed, counters:
        As elsewhere.
    """

    def __init__(
        self,
        bitmap_bits: int,
        *,
        seed: int = 0,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if bitmap_bits < 8:
            raise SynopsisError("bitmap_bits must be at least 8")
        self.bitmap_bits = bitmap_bits
        self._hash = PairwiseHash(bitmap_bits, seed)
        self._bitmap = 0
        self._set_bits = 0

    @property
    def footprint(self) -> int:
        """Words used by the bitmap."""
        return (self.bitmap_bits + _BITS_PER_WORD - 1) // _BITS_PER_WORD

    @property
    def zero_fraction(self) -> float:
        """``V``: the fraction of bitmap bits still zero."""
        return 1.0 - self._set_bits / self.bitmap_bits

    @property
    def saturated(self) -> bool:
        """Whether every bit is set (the estimate is unusable)."""
        return self._set_bits >= self.bitmap_bits

    def insert(self, value: int) -> None:
        """Observe one inserted value."""
        self.counters.inserts += 1
        bit = 1 << self._hash(value)
        if not self._bitmap & bit:
            self._bitmap |= bit
            self._set_bits += 1

    def estimate(self) -> float:
        """Maximum-likelihood distinct count ``-B ln V``.

        Raises :class:`SynopsisError` when the bitmap is saturated --
        the caller should have sized ``bitmap_bits`` for the workload.
        """
        if self.saturated:
            raise SynopsisError(
                "bitmap saturated: distinct count exceeds design load"
            )
        return -self.bitmap_bits * math.log(self.zero_fraction)
