"""V-optimal histograms [PIHS96].

The paper's introduction points to V-optimal histograms as the synopsis
"shown ... [to] capture important features of the data in a concise
way" for range selectivity.  A V-optimal histogram partitions the
sorted value domain into ``B`` contiguous buckets minimising the total
within-bucket variance of the frequencies, computed here by the
standard dynamic program over prefix sums.

The DP is O(points^2 * buckets); inputs with more distinct values than
``max_points`` are pre-grouped into equi-width micro-bins first (the
usual practical compromise), which keeps construction fast while
preserving the variance-guided bucket boundaries that matter.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.base import SynopsisError

__all__ = ["VOptimalHistogram"]


class VOptimalHistogram:
    """A variance-optimal histogram over a numeric attribute."""

    def __init__(
        self,
        lower_edges: np.ndarray,
        upper_edges: np.ndarray,
        bucket_rows: np.ndarray,
        bucket_distinct: np.ndarray,
    ) -> None:
        if not (
            len(lower_edges)
            == len(upper_edges)
            == len(bucket_rows)
            == len(bucket_distinct)
        ):
            raise SynopsisError("bucket arrays must align")
        if len(bucket_rows) == 0:
            raise SynopsisError("at least one bucket is required")
        self._lower = lower_edges.astype(np.float64)
        self._upper = upper_edges.astype(np.float64)
        self._rows = bucket_rows.astype(np.float64)
        self._distinct = bucket_distinct.astype(np.float64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_sample(
        cls,
        sample_points: np.ndarray,
        bucket_count: int,
        total_rows: int,
        max_points: int = 256,
    ) -> "VOptimalHistogram":
        """Build from a uniform sample of the attribute."""
        if bucket_count < 1:
            raise SynopsisError("bucket_count must be positive")
        if len(sample_points) == 0:
            raise SynopsisError("cannot build a histogram from no points")
        scale = total_rows / len(sample_points)
        counts = Counter(np.asarray(sample_points).tolist())
        values = np.array(sorted(counts), dtype=np.float64)
        frequencies = np.array(
            [counts[v] * scale for v in values.tolist()], dtype=np.float64
        )
        distinct = np.ones_like(frequencies)

        if len(values) > max_points:
            values, frequencies, distinct = cls._pre_group(
                values, frequencies, max_points
            )
        boundaries = cls._optimal_boundaries(
            frequencies, min(bucket_count, len(values))
        )
        lower, upper, rows, distinct_counts = [], [], [], []
        for start, end in boundaries:
            lower.append(values[start])
            upper.append(values[end])
            rows.append(float(frequencies[start : end + 1].sum()))
            distinct_counts.append(float(distinct[start : end + 1].sum()))
        return cls(
            np.array(lower),
            np.array(upper),
            np.array(rows),
            np.array(distinct_counts),
        )

    @staticmethod
    def _pre_group(
        values: np.ndarray, frequencies: np.ndarray, max_points: int
    ):
        """Merge adjacent values into at most ``max_points`` micro-bins."""
        group_of = np.minimum(
            (np.arange(len(values)) * max_points) // len(values),
            max_points - 1,
        )
        grouped_values = np.array(
            [values[group_of == g].mean() for g in range(max_points)
             if np.any(group_of == g)]
        )
        grouped_frequencies = np.array(
            [frequencies[group_of == g].sum() for g in range(max_points)
             if np.any(group_of == g)]
        )
        grouped_distinct = np.array(
            [float(np.count_nonzero(group_of == g))
             for g in range(max_points) if np.any(group_of == g)]
        )
        return grouped_values, grouped_frequencies, grouped_distinct

    @staticmethod
    def _optimal_boundaries(
        frequencies: np.ndarray, bucket_count: int
    ) -> list[tuple[int, int]]:
        """The variance-minimising partition, via dynamic programming.

        ``cost(i, j)`` is the sum of squared deviations of
        ``frequencies[i..j]`` from their mean, computed from prefix
        sums; ``dp[b][j]`` is the best cost of covering the first
        ``j+1`` points with ``b+1`` buckets.
        """
        n = len(frequencies)
        prefix = np.concatenate([[0.0], np.cumsum(frequencies)])
        prefix_sq = np.concatenate(
            [[0.0], np.cumsum(frequencies**2)]
        )

        def segment_cost(starts: np.ndarray, end: int) -> np.ndarray:
            lengths = end - starts + 1
            sums = prefix[end + 1] - prefix[starts]
            squares = prefix_sq[end + 1] - prefix_sq[starts]
            return squares - sums * sums / lengths

        dp = np.full((bucket_count, n), np.inf)
        split = np.zeros((bucket_count, n), dtype=np.int64)
        all_starts = np.arange(n)
        dp[0] = [segment_cost(np.array([0]), j)[0] for j in range(n)]
        for b in range(1, bucket_count):
            for j in range(b, n):
                starts = all_starts[b : j + 1]
                candidates = dp[b - 1][starts - 1] + segment_cost(
                    starts, j
                )
                best = int(np.argmin(candidates))
                dp[b][j] = candidates[best]
                split[b][j] = starts[best]

        # Walk the splits back into (start, end) bucket ranges.
        boundaries: list[tuple[int, int]] = []
        end = n - 1
        for b in range(bucket_count - 1, 0, -1):
            start = int(split[b][end])
            boundaries.append((start, end))
            end = start - 1
        boundaries.append((0, end))
        boundaries.reverse()
        return boundaries

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        """Number of buckets."""
        return len(self._rows)

    @property
    def footprint(self) -> int:
        """Words: two edges, a row count and a distinct count per
        bucket."""
        return 4 * len(self._rows)

    @property
    def total_rows(self) -> float:
        """Total rows represented."""
        return float(self._rows.sum())

    def estimate_range(self, low: float, high: float) -> float:
        """Estimated rows with value in ``[low, high]`` (continuous
        assumption within buckets)."""
        if high < low:
            return 0.0
        total = 0.0
        for index in range(self.bucket_count):
            left, right = self._lower[index], self._upper[index]
            overlap_left = max(low, left)
            overlap_right = min(high, right)
            if overlap_right < overlap_left:
                continue
            width = right - left
            if width <= 0:
                total += self._rows[index]
            else:
                total += self._rows[index] * (
                    (overlap_right - overlap_left) / width
                )
        return total

    def estimate_equality(self, value: float) -> float:
        """Estimated rows equal to ``value`` (uniform-distinct within
        the bucket)."""
        for index in range(self.bucket_count):
            if self._lower[index] <= value <= self._upper[index]:
                distinct = max(self._distinct[index], 1.0)
                return float(self._rows[index] / distinct)
        return 0.0
