"""The AMS "tug-of-war" sketch for the second frequency moment [AMS96].

Alon, Matias and Szegedy's sublinear-space estimator of
``F_2 = sum_j n_j^2`` -- the same frequency moments that quantify the
concise-sample gain in Theorem 4.  Each atomic estimator keeps
``Z = sum_v sign(v) * n_v`` under 4-wise independent signs; ``Z^2`` is
an unbiased estimate of ``F_2``.  Averaging ``columns`` estimators
controls variance and taking the median of ``rows`` averages gives
exponential confidence (the standard median-of-means arrangement).

Deletions are supported: the sketch is a linear function of the
frequency vector.
"""

from __future__ import annotations

import statistics

from repro.core.base import StreamSynopsis, SynopsisError
from repro.randkit.coins import CostCounters
from repro.synopses.hashing import FourwiseHash

__all__ = ["AmsF2Sketch"]


class AmsF2Sketch(StreamSynopsis):
    """A median-of-means AMS sketch for ``F_2``.

    Parameters
    ----------
    rows:
        Number of independent means to take the median over
        (confidence ``1 - 2^-Omega(rows)``).
    columns:
        Estimators averaged per row (relative error
        ``O(1/sqrt(columns))``).
    seed, counters:
        As elsewhere.
    """

    def __init__(
        self,
        rows: int = 5,
        columns: int = 64,
        *,
        seed: int = 0,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if rows < 1 or columns < 1:
            raise SynopsisError("rows and columns must be positive")
        self.rows = rows
        self.columns = columns
        self._signs = [
            [FourwiseHash(seed + row * columns + column) for column in range(columns)]
            for row in range(rows)
        ]
        self._sums = [[0] * columns for _ in range(rows)]

    @property
    def footprint(self) -> int:
        """One word per atomic estimator."""
        return self.rows * self.columns

    def _update(self, value: int, delta: int) -> None:
        for row in range(self.rows):
            row_sums = self._sums[row]
            row_signs = self._signs[row]
            for column in range(self.columns):
                row_sums[column] += delta * row_signs[column].sign(value)

    def insert(self, value: int) -> None:
        """Observe one inserted value."""
        self.counters.inserts += 1
        self._update(value, 1)

    def delete(self, value: int) -> None:
        """Observe one deleted value (linear sketches allow this)."""
        self.counters.deletes += 1
        self._update(value, -1)

    def estimate(self) -> float:
        """Median-of-means estimate of ``F_2``."""
        means = [
            sum(z * z for z in row_sums) / self.columns
            for row_sums in self._sums
        ]
        return float(statistics.median(means))
