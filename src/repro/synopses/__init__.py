"""Companion synopsis data structures from the paper's related work.

The approximate answer engine of Figure 2 maintains "various summary
statistics" -- concise and counting samples are the paper's new ones,
and this package supplies the classical synopses the paper builds on or
cites for context, so the engine is a usable approximate-query system:

* :class:`~repro.synopses.morris.MorrisCounter` -- approximate event
  counting in loglog space [Mor78, Fla85].
* :class:`~repro.synopses.fm.FlajoletMartinSketch` -- probabilistic
  distinct-value counting [FM85].
* :class:`~repro.synopses.linear_counting.LinearCounter` -- linear-time
  probabilistic counting [WVZT90].
* :class:`~repro.synopses.ams.AmsF2Sketch` -- the tug-of-war second
  frequency moment sketch [AMS96].
* equi-depth, Compressed and high-biased histograms
  [GMP97b, PIHS96, IC93] for range-selectivity estimation.
"""

from repro.synopses.ams import AmsF2Sketch
from repro.synopses.ams_fk import AmsFkEstimator
from repro.synopses.fm import FlajoletMartinSketch
from repro.synopses.histogram_compressed import CompressedHistogram
from repro.synopses.histogram_equidepth import EquiDepthHistogram
from repro.synopses.histogram_highbiased import HighBiasedHistogram
from repro.synopses.histogram_vopt import VOptimalHistogram
from repro.synopses.linear_counting import LinearCounter
from repro.synopses.morris import MorrisCounter

__all__ = [
    "AmsF2Sketch",
    "AmsFkEstimator",
    "CompressedHistogram",
    "EquiDepthHistogram",
    "FlajoletMartinSketch",
    "HighBiasedHistogram",
    "LinearCounter",
    "MorrisCounter",
    "VOptimalHistogram",
]
