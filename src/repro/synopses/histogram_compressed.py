"""Compressed histograms [PIHS96, GMP97b].

A Compressed histogram stores the heaviest values in singleton buckets
(with their own counts) and partitions the remaining values into
equi-depth buckets.  This hybrid is the form [GMP97b] maintains from a
backing sample; concise samples feed it better than traditional ones
because their extra sample points sharpen both the heavy-value counts
and the equi-depth boundaries.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.base import SynopsisError
from repro.synopses.histogram_equidepth import EquiDepthHistogram

__all__ = ["CompressedHistogram"]


class CompressedHistogram:
    """Singleton buckets for heavy values plus equi-depth for the rest.

    Build with :meth:`from_sample`.  A value is "heavy" when its
    estimated count exceeds the equi-depth depth the remaining buckets
    would have -- the standard Compressed histogram criterion.
    """

    def __init__(
        self,
        singleton_counts: dict[int, float],
        equidepth: EquiDepthHistogram | None,
        total_rows: int,
    ) -> None:
        self._singletons = dict(singleton_counts)
        self._equidepth = equidepth
        self.total_rows = total_rows

    @classmethod
    def from_sample(
        cls,
        sample_points: np.ndarray,
        bucket_count: int,
        total_rows: int,
    ) -> "CompressedHistogram":
        """Build from a uniform sample of the attribute.

        At most ``bucket_count - 1`` singleton buckets are extracted;
        the remainder of the bucket budget holds the equi-depth part.
        """
        if bucket_count < 2:
            raise SynopsisError("bucket_count must be at least 2")
        points = np.asarray(sample_points)
        if len(points) == 0:
            raise SynopsisError("cannot build a histogram from no points")
        scale = total_rows / len(points)
        counts = Counter(points.tolist())

        # Iteratively peel values whose estimated count exceeds the
        # depth the equi-depth part would have without them.
        singletons: dict[int, float] = {}
        ordered = counts.most_common()
        remaining_sample = len(points)
        index = 0
        while (
            index < len(ordered) and len(singletons) < bucket_count - 1
        ):
            value, sample_count = ordered[index]
            remaining_buckets = bucket_count - len(singletons) - 1
            depth = remaining_sample * scale / max(remaining_buckets, 1)
            if sample_count * scale <= depth:
                break
            singletons[value] = sample_count * scale
            remaining_sample -= sample_count
            index += 1

        rest_mask = ~np.isin(points, list(singletons))
        rest_points = points[rest_mask]
        rest_rows = int(round(remaining_sample * scale))
        equidepth = None
        rest_buckets = bucket_count - len(singletons)
        if len(rest_points) and rest_buckets >= 1:
            equidepth = EquiDepthHistogram.from_sample(
                rest_points, rest_buckets, rest_rows
            )
        return cls(singletons, equidepth, total_rows)

    @property
    def singleton_values(self) -> list[int]:
        """The values held in singleton buckets."""
        return list(self._singletons)

    @property
    def footprint(self) -> int:
        """Words: two per singleton bucket plus the equi-depth part."""
        words = 2 * len(self._singletons)
        if self._equidepth is not None:
            words += self._equidepth.footprint
        return words

    def estimate_equality(self, value: int) -> float:
        """Estimated rows equal to ``value``."""
        if value in self._singletons:
            return self._singletons[value]
        if self._equidepth is None:
            return 0.0
        return self._equidepth.estimate_equality(value)

    def estimate_range(self, low: float, high: float) -> float:
        """Estimated rows with value in ``[low, high]``."""
        total = sum(
            count
            for value, count in self._singletons.items()
            if low <= value <= high
        )
        if self._equidepth is not None:
            total += self._equidepth.estimate_range(low, high)
        return total
