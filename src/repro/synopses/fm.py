"""Flajolet-Martin probabilistic distinct counting [FM83, FM85].

Approximates the number of distinct values in one pass and ``O(lg n)``
bits per bitmap.  Each value hashes to a bit position with geometric
probability; after the stream, the position ``R`` of the lowest *unset*
bit satisfies ``E[R] ~ lg(phi d)`` with ``phi ~ 0.77351``.  Stochastic
averaging (PCSA) splits values across ``group_count`` bitmaps and
averages the ``R`` values to tighten the estimate.
"""

from __future__ import annotations

from repro.core.base import StreamSynopsis, SynopsisError
from repro.randkit.coins import CostCounters
from repro.synopses.hashing import PairwiseHash, bit_hash_position

__all__ = ["FlajoletMartinSketch"]

# Flajolet-Martin's magic constant: E[2^R] = phi * d.
_PHI = 0.77351


class FlajoletMartinSketch(StreamSynopsis):
    """A PCSA distinct-count sketch.

    Parameters
    ----------
    group_count:
        Number of stochastic-averaging groups (bitmaps); the relative
        error decays like ``0.78 / sqrt(group_count)``.
    bits_per_group:
        Bitmap width; 32 suffices for relations up to billions of
        distinct values.
    seed, counters:
        As elsewhere.

    Deletions are not supported (bits cannot be unset); the engine
    pairs this sketch with insert-only relations.
    """

    def __init__(
        self,
        group_count: int = 64,
        bits_per_group: int = 32,
        *,
        seed: int = 0,
        counters: CostCounters | None = None,
    ) -> None:
        super().__init__(counters)
        if group_count < 1:
            raise SynopsisError("group_count must be positive")
        if bits_per_group < 8:
            raise SynopsisError("bits_per_group must be at least 8")
        self.group_count = group_count
        self.bits_per_group = bits_per_group
        self._group_hash = PairwiseHash(group_count, seed)
        self._position_hash = PairwiseHash(1, seed + 1)
        self._bitmaps = [0] * group_count

    @property
    def footprint(self) -> int:
        """One word per bitmap group."""
        return self.group_count

    def insert(self, value: int) -> None:
        """Observe one inserted value (duplicates are free by design)."""
        self.counters.inserts += 1
        group = self._group_hash(value)
        position = bit_hash_position(
            self._position_hash.raw(value), self.bits_per_group
        )
        self._bitmaps[group] |= 1 << position

    def _lowest_unset_bit(self, bitmap: int) -> int:
        position = 0
        while bitmap & 1:
            bitmap >>= 1
            position += 1
        return position

    def estimate(self) -> float:
        """Estimated number of distinct values observed."""
        total_r = sum(
            self._lowest_unset_bit(bitmap) for bitmap in self._bitmaps
        )
        mean_r = total_r / self.group_count
        return self.group_count / _PHI * 2.0**mean_r

    def merge(self, other: "FlajoletMartinSketch") -> None:
        """Union with another sketch built with the same parameters.

        Distinct counting is union-mergeable: OR the bitmaps.  Both
        sketches must share seed and shape or estimates are undefined.
        """
        if (
            other.group_count != self.group_count
            or other.bits_per_group != self.bits_per_group
        ):
            raise SynopsisError("cannot merge sketches of different shape")
        self._bitmaps = [
            mine | theirs
            for mine, theirs in zip(self._bitmaps, other._bitmaps, strict=True)
        ]
