"""Join-size estimation via hot lists vs plain samples (Section 1.2).

"Hot lists capture the most skewed (i.e., popular) values in a
relation, and hence have been shown to be quite useful for estimating
predicate selectivities and join sizes."  This bench sweeps skew and
compares the relative error of (a) hot-list-based (high-biased) join
estimates against (b) cross-matched small uniform samples, asserting
the hot-list advantage grows with skew.
"""

from __future__ import annotations

import numpy as np

from common import print_series, profile
from repro.estimators.joins import (
    join_size_from_hotlists,
    join_size_from_samples,
)
from repro.hotlist import CountingHotList
from repro.randkit import numpy_generator, spawn_seeds
from repro.stats.frequency import FrequencyTable
from repro.streams import zipf_stream

DOMAIN = 5_000
FOOTPRINT = 400
SKEWS = [0.5, 1.0, 1.5]


def _exact_join(left: np.ndarray, right: np.ndarray) -> float:
    right_table = FrequencyTable(right)
    return float(
        sum(
            count * right_table.count(value)
            for value, count in FrequencyTable(left).items()
        )
    )


def _measure(active):
    rows = []
    for skew in SKEWS:
        hotlist_errors, sample_errors = [], []
        for seed in spawn_seeds(int(skew * 1000) + 50, active.trials):
            left = zipf_stream(active.inserts, DOMAIN, skew, seed)
            right = zipf_stream(active.inserts, DOMAIN, skew, seed + 1)
            truth = _exact_join(left, right)

            left_reporter = CountingHotList(FOOTPRINT, seed=seed + 2)
            right_reporter = CountingHotList(FOOTPRINT, seed=seed + 3)
            left_reporter.insert_array(left)
            right_reporter.insert_array(right)
            estimate = join_size_from_hotlists(
                left_reporter.report(FOOTPRINT // 2),
                right_reporter.report(FOOTPRINT // 2),
                len(left),
                len(right),
                float(len(np.unique(left))),
                float(len(np.unique(right))),
            )
            hotlist_errors.append(abs(estimate - truth) / truth)

            rng = numpy_generator(seed + 4)
            left_points = rng.choice(left, FOOTPRINT, replace=False)
            right_points = rng.choice(right, FOOTPRINT, replace=False)
            sample_estimate = join_size_from_samples(
                left_points, right_points, len(left), len(right)
            )
            sample_errors.append(abs(sample_estimate - truth) / truth)
        rows.append(
            [
                skew,
                round(float(np.mean(hotlist_errors)), 4),
                round(float(np.mean(sample_errors)), 4),
            ]
        )
    return rows


def test_join_size_estimation(benchmark):
    active = profile()
    rows = benchmark.pedantic(_measure, args=(active,), rounds=1,
                              iterations=1)
    print_series(
        f"Equi-join size estimation, footprint {FOOTPRINT} per side "
        f"({active.name} profile) -- mean relative error",
        ["zipf", "hot-list estimate", "sample estimate"],
        rows,
        widths=[8, 20, 18],
    )
    # Hot lists dominate at high skew (their design regime).
    high_skew = rows[-1]
    assert high_skew[1] < high_skew[2]
    assert high_skew[1] < 0.25
    # And the hot-list error shrinks as skew grows (more of the join
    # mass is captured by the hot values).
    hotlist_errors = [row[1] for row in rows]
    assert hotlist_errors[-1] <= hotlist_errors[0] + 0.05
